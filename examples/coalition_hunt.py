#!/usr/bin/env python
"""Hunting fraud that duplicate detection cannot see.

Duplicate detection has a precise boundary (the paper's scope): it caps
each *identity* at one billed click per window.  An attacker who
rotates identities — a fresh (IP, cookie) per click — never repeats,
so every click bills.  This example stages exactly that attack and
shows the two complementary streaming detectors that catch it anyway:

* **Space-Saving skew monitoring** — the hammered ad is a glaring
  heavy hitter even though no identity repeats;
* **MinHash coalition detection** — when the attacker reuses a finite
  identity pool across several target ads, the pool members betray
  themselves by clicking the *same* ad set.

Run:  python examples/coalition_hunt.py
"""

from repro import WindowSpec, create_detector
from repro.analysis import AttackCostModel, attacker_roi
from repro.detection import CoalitionDetector, SkewMonitor
from repro.metrics import render_table
from repro.streams import (
    DEFAULT_SCHEME,
    RotatingIdentityCampaign,
    TrafficClass,
    interleave_batches,
)
from repro.adnet import AdNetwork, TrafficProfile


def build_network(seed: int) -> AdNetwork:
    """A clean network (no built-in attacks) with a handful of keywords."""
    network = AdNetwork(seed=seed)
    network.add_advertiser("BlueWidgets", budget=1e6,
                           bids={"widgets": 1.20, "gadgets": 0.40, "deals": 0.2})
    network.add_advertiser("GadgetKing", budget=1e6,
                           bids={"gadgets": 0.90, "widgets": 0.75, "shoes": 0.3})
    network.add_advertiser("CheapDeals", budget=1e6,
                           bids={"deals": 0.30, "shoes": 0.25, "widgets": 0.2})
    network.add_publisher("search-site", traffic_weight=2.0)
    network.add_publisher("blog-network", traffic_weight=1.0)
    network.run_auctions(["widgets", "gadgets", "deals", "shoes"])
    return network


def main() -> None:
    network = build_network(seed=31)
    duration = 7200.0
    background = network.run(
        duration=duration,
        profile=TrafficProfile(click_rate=2.0, num_visitors=800,
                               ad_popularity_exponent=0.6),
    )
    target_ads = sorted(network.ad_links)[:3]
    # Pool sized to beat the dedup window: identity+ad pairs (1500 x 3)
    # far outnumber the attack clicks a 4096-click window can hold, so
    # no pair repeats in-window.
    campaign = RotatingIdentityCampaign(
        ad_ids=target_ads, publisher_id=0, advertiser_id=0,
        pool_size=1500, rate=1.5, seed=32,
    )
    clicks = interleave_batches([background, campaign.generate(0.0, duration)])
    attack_clicks = sum(1 for c in clicks if c.traffic_class is TrafficClass.BOTNET)
    print(f"{len(clicks)} clicks; {attack_clicks} from a 1500-identity "
          f"rotation attack on ads {target_ads}\n")

    # 1. Duplicate detection: the attack sails through.
    dedup = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.001))
    monitor = SkewMonitor(capacity=128)
    coalition = CoalitionDetector(num_hashes=64, max_sources=512,
                                  min_clicks=5, seed=33)
    rejected_attack = rejected_total = 0
    for click in clicks:
        duplicate = dedup.process(DEFAULT_SCHEME.identify(click))
        rejected_total += duplicate
        if duplicate and click.traffic_class is TrafficClass.BOTNET:
            rejected_attack += 1
        monitor.observe(click)
        coalition.observe_click(click)
    print(f"duplicate detection rejected {rejected_attack}/{attack_clicks} "
          f"attack clicks ({rejected_total} total) - rotation evades it, "
          "as the adversarial analysis predicts.\n")

    # 2. Skew monitoring: the hammered ads stand out.
    rows = []
    for hitter in monitor.by_ad.top(5):
        rows.append([
            hitter.element,
            hitter.count,
            hitter.guaranteed_count,
            "TARGET" if hitter.element in target_ads else "",
        ])
    print(render_table(
        ["ad", "clicks (est)", "clicks (guaranteed)", ""],
        rows,
        title="Space-Saving: top clicked ads",
    ))

    # 3. Coalition detection: the identity pool clusters.
    groups = coalition.coalitions(threshold=0.85)
    attack_ips = {c.source_ip for c in clicks
                  if c.traffic_class is TrafficClass.BOTNET}
    if groups:
        largest = groups[0]
        purity = len(largest & attack_ips) / len(largest)
        print(f"\nMinHash coalitions at similarity >= 0.85: {len(groups)} group(s); "
              f"largest has {len(largest)} members, {100 * purity:.0f}% of them "
              "attack identities.")
    else:
        print("\nno coalitions found (unexpected)")

    # 4. What the attack costs under dedup (the identifier treadmill).
    model = AttackCostModel(cpc=1.0, identity_cost=0.05)
    print(
        "\nEconomics: with dedup enabled, leverage is capped at "
        f"{attacker_roi(model, 50, detection_enabled=True):.0f}x per identity "
        f"dollar (vs {attacker_roi(model, 50, detection_enabled=False):.0f}x "
        "undetected) - rotation is the attacker's forced, costlier move,\n"
        "and skew/coalition monitoring closes in on exactly that move."
    )


if __name__ == "__main__":
    main()
