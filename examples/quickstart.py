#!/usr/bin/env python
"""Quickstart: detect duplicate clicks in a stream with GBF and TBF.

Builds the two detectors from the paper over a 10,000-click decaying
window, feeds them a synthetic click stream containing a known fraction
of duplicates, and compares their verdicts against exact ground truth.

Run:  python examples/quickstart.py
"""

from repro import ExactDetector, GBFDetector, TBFDetector
from repro.metrics import ConfusionMatrix, render_table
from repro.streams import DuplicateSpec, duplicated_stream


def main() -> None:
    window_size = 10_000
    num_subwindows = 8

    # The paper's two algorithms.  Sizes follow the paper's recipe:
    # pick m so the optimal k lands near 10 for the expected load.
    gbf = GBFDetector(
        window_size=window_size,
        num_subwindows=num_subwindows,
        bits_per_filter=18_000,   # each lane holds <= N/Q = 1250 clicks
        num_hashes=10,
        seed=7,
    )
    tbf = TBFDetector(
        window_size=window_size,
        num_entries=145_000,      # holds N = 10,000 active clicks
        num_hashes=10,
        seed=7,
    )
    # Ground-truth labelers over the same window models.
    exact_jumping = ExactDetector.jumping(window_size, num_subwindows)
    exact_sliding = ExactDetector.sliding(window_size)

    # 120k clicks, 25% of which duplicate an identifier from the recent
    # past (lags up to 1.5 windows: some in-window, some expired).
    stream = duplicated_stream(
        120_000, DuplicateSpec(rate=0.25, max_lag=15_000), seed=3
    )

    gbf_matrix = ConfusionMatrix()
    tbf_matrix = ConfusionMatrix()
    for identifier in map(int, stream):
        gbf_matrix.update(gbf.process(identifier), exact_jumping.process(identifier))
        tbf_matrix.update(tbf.process(identifier), exact_sliding.process(identifier))

    rows = []
    for name, matrix, window in (
        ("GBF (jumping window)", gbf_matrix, f"{window_size} clicks / {num_subwindows} blocks"),
        ("TBF (sliding window)", tbf_matrix, f"{window_size} clicks"),
    ):
        rows.append(
            [
                name,
                window,
                matrix.true_positives,
                matrix.false_positives,
                matrix.false_negatives,
                f"{matrix.false_positive_rate:.5f}",
            ]
        )
    print(
        render_table(
            ["detector", "window", "caught dups", "false pos", "false neg", "fp rate"],
            rows,
            title="Duplicate-click detection on 120,000 synthetic clicks",
        )
    )
    print(
        "Note: the rare 'false negatives' are cascades of false positives\n"
        "(an FP suppresses an insertion), never missed duplicates of clicks\n"
        "the detector itself accepted - the zero-FN guarantee of the paper.\n"
    )
    print(f"GBF memory: {gbf.memory_bits / 8 / 1024:.1f} KiB "
          f"({gbf.logical_memory_bits} logical bits)")
    print(f"TBF memory: {tbf.memory_bits / 8 / 1024:.1f} KiB "
          f"({tbf.num_entries} entries x {tbf.entry_bits} bits)")
    exact_cost = exact_sliding.memory_bits / 8 / 1024
    print(f"Exact baseline working set: ~{exact_cost:.1f} KiB and growing with distinct clicks")


if __name__ == "__main__":
    main()
