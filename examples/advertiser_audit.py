#!/usr/bin/env python
"""The paper's motivating protocol: advertiser and publisher audit the
same click stream independently and reconcile.

"A possible solution is that both the online advertisers and publishers
keep on auditing the click stream and reach an agreement on the
determination of valid clicks." (§1.1)

Both parties run their own one-pass sketch — the advertiser a GBF over
a jumping window, the publisher a TBF over a sliding window — on
identical input.  Because both algorithms are zero-false-negative,
every disagreement is a false positive of one sketch, so the disputed
amount shrinks as either party spends more memory.  The script sweeps
the advertiser's memory budget to show exactly that.

Run:  python examples/advertiser_audit.py
"""

from repro import WindowSpec, create_detector, demo_network, run_audit
from repro.adnet import TrafficProfile
from repro.metrics import render_table


def main() -> None:
    network = demo_network(seed=5)
    clicks = network.run(
        duration=2 * 3600.0,
        profile=TrafficProfile(click_rate=1.5, num_visitors=250,
                               revisit_probability=0.05),
    )
    # Attach real prices so the dispute is in dollars.
    for click in clicks:
        click.cost = network.ad_links[click.ad_id].cpc
    print(f"Auditing {len(clicks)} clicks "
          f"(~${sum(c.cost for c in clicks):.0f} of gross billable volume)\n")

    window = 8192
    rows = []
    for advertiser_kib in (4, 16, 64, 256):
        advertiser = create_detector(DetectorSpec(algorithm="gbf", window=WindowSpec("jumping", window, 8), memory_bits=advertiser_kib * 8 * 1024, seed=1))
        publisher = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", window), memory_bits=256 * 8 * 1024, seed=2))
        report = run_audit(clicks, advertiser, publisher,
                           price_of=lambda click: click.cost)
        rows.append(
            [
                f"{advertiser_kib} KiB",
                "256 KiB",
                f"{100 * report.agreement_rate:.3f}%",
                report.disputed,
                f"${report.disputed_amount:.2f}",
                f"${report.agreed_amount:.2f}",
            ]
        )
    print(
        render_table(
            ["advertiser memory", "publisher memory", "agreement",
             "disputed clicks", "disputed $", "agreed valid $"],
            rows,
            title=(
                "Advertiser (GBF, jumping window) vs publisher (TBF, sliding "
                f"window), N = {window} clicks"
            ),
        )
    )
    print(
        "Residual disputes at high memory stem from the two parties'\n"
        "window semantics (jumping blocks vs exact sliding) - the paper's\n"
        "point that both sides must also agree on the decaying-window model."
    )


if __name__ == "__main__":
    main()
