#!/usr/bin/env python
"""Time-based decaying windows: "count identical clicks once per hour".

The count-based detectors define the window in *arrivals*; a billing
policy is usually written in *time* ("identical clicks within an hour
bill once").  This example drives the paper's time-based extensions —
TimeBasedGBFDetector and TimeBasedTBFDetector — with realistic arrival
processes (diurnal legitimate traffic, a bursty bot) and checks both
against the exact time-based labeler.

Run:  python examples/time_based_windows.py
"""

from repro.baselines import TimeBasedExactDetector
from repro.core import TimeBasedGBFDetector, TimeBasedTBFDetector
from repro.metrics import render_table
from repro.streams import BurstyArrivals, DiurnalArrivals, combine_fields
from repro.windows import TimeBasedJumpingWindow, TimeBasedSlidingWindow


def build_traffic():
    """A day of traffic: diurnal humans + one bursty bot, time-merged."""
    day = 86_400.0
    human_times = DiurnalArrivals(
        mean_rate=0.25, amplitude=0.8, period=day, seed=1
    ).take(20_000)
    human_times = human_times[human_times < day]
    bot_times = BurstyArrivals(
        base_rate=0.002, burst_rate=0.8, mean_quiet=7_200.0, mean_burst=600.0,
        seed=2,
    ).take(3_000)
    bot_times = bot_times[bot_times < day]

    events = []
    # Humans: 4000 visitors over 60 ads; bots: ONE identity, one ad.
    import numpy as np

    rng = np.random.default_rng(3)
    for timestamp in human_times:
        visitor = int(rng.integers(4000))
        ad = int(rng.integers(60))
        events.append((float(timestamp), combine_fields(visitor, ad), "human"))
    bot_identifier = combine_fields(0xBADB07, 7)
    for timestamp in bot_times:
        events.append((float(timestamp), bot_identifier, "bot"))
    events.sort(key=lambda event: event[0])
    return events


def main() -> None:
    window_hours = 1.0
    duration = window_hours * 3600.0
    events = build_traffic()
    print(f"{len(events)} clicks over 24h; policy: identical clicks within "
          f"{window_hours:.0f}h bill once\n")

    tbf = TimeBasedTBFDetector(duration, resolution=60, num_entries=1 << 18,
                               num_hashes=8, seed=5)
    gbf = TimeBasedGBFDetector(duration, num_subwindows=6, bits_per_filter=1 << 17,
                               num_hashes=8, units_per_subwindow=10, seed=5)
    exact_sliding = TimeBasedExactDetector(TimeBasedSlidingWindow(duration))
    exact_jumping = TimeBasedExactDetector(TimeBasedJumpingWindow(duration, 6))

    counts = {
        "TBF (sliding, 60 units)": [0, 0, tbf],
        "exact sliding": [0, 0, exact_sliding],
        "GBF (jumping, Q=6)": [0, 0, gbf],
        "exact jumping": [0, 0, exact_jumping],
    }
    bot_total = sum(1 for _, _, kind in events if kind == "bot")
    for timestamp, identifier, kind in events:
        for label, record in counts.items():
            duplicate = record[2].process_at(identifier, timestamp)
            if duplicate:
                record[0] += 1
                if kind == "bot":
                    record[1] += 1

    rows = []
    for label, (duplicates, bot_duplicates, detector) in counts.items():
        memory = getattr(detector, "memory_bits", 0)
        rows.append([
            label,
            duplicates,
            f"{bot_duplicates}/{bot_total}",
            f"{memory / 8 / 1024:.0f} KiB" if memory else "-",
        ])
    print(render_table(
        ["detector", "duplicates flagged", "bot clicks flagged", "memory"],
        rows,
    ))
    print(
        "\nThe sketches match their exact counterparts click-for-click.  The\n"
        "bot's bursts (many clicks per hour from one identity) are almost\n"
        "entirely rejected; 4000 humans over 60 ads rarely repeat in an hour.\n"
        "\nNote the memory column honestly: at this toy rate (~1k clicks/hour)\n"
        "the exact dict is small - its working set GROWS with traffic, while\n"
        "the sketches are fixed-size.  At a production rate (10M clicks/hour,\n"
        "tens of bytes per stored identifier) the same exact detector needs\n"
        "hundreds of MB; the sketches still need exactly what you see here."
    )


if __name__ == "__main__":
    main()
