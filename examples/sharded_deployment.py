#!/usr/bin/env python
"""Operating duplicate detection like a real system: shards + restarts.

Two deployment concerns the single-machine quickstart ignores:

1. **Scale-out** — identifier-partitioned sharding lets S workers each
   hold 1/S of the sketch with no hot-path coordination (all repeats of
   an identifier meet on one worker).
2. **Restarts** — a worker that loses its sketch forgets the last
   window; checkpoint/restore keeps the zero-false-negative guarantee
   across deploys.

The script runs a four-shard detector over botnet-laced traffic,
crashes and restores one shard mid-stream from its checkpoint, and
verifies the fleet's decisions still match a never-restarted fleet.

Run:  python examples/sharded_deployment.py
"""

from repro.core import load_detector, save_detector
from repro.detection import ShardedDetector
from repro.streams import DuplicateSpec, duplicated_stream


def main() -> None:
    window, shards, entries = 8192, 4, 1 << 18
    stream = [int(x) for x in duplicated_stream(
        60_000, DuplicateSpec(rate=0.3, max_lag=4000), seed=9
    )]

    # Fleet A: uninterrupted.  Fleet B: shard 2 "crashes" mid-stream and
    # is restored from its latest checkpoint.
    fleet_a = ShardedDetector._of_tbf(window, shards, entries, num_hashes=8, seed=1)
    fleet_b = ShardedDetector._of_tbf(window, shards, entries, num_hashes=8, seed=1)

    crash_at = 30_000
    checkpoint = None
    mismatches = 0
    duplicates = 0
    for position, identifier in enumerate(stream):
        if position == crash_at - 1:
            checkpoint = save_detector(fleet_b.shards[2])
        if position == crash_at:
            # Simulated crash + restore of shard 2 from its checkpoint.
            fleet_b.shards[2] = load_detector(checkpoint)
        verdict_a = fleet_a.process(identifier)
        verdict_b = fleet_b.process(identifier)
        duplicates += verdict_a
        if verdict_a != verdict_b:
            mismatches += 1

    print(f"stream: {len(stream)} clicks, {duplicates} duplicates flagged")
    print(f"shards: {fleet_a.num_shards}, "
          f"memory {fleet_a.memory_bits / 8 / 1024:.0f} KiB total, "
          f"load imbalance {fleet_a.load_imbalance():.3f}")
    print(f"checkpoint size: {len(checkpoint) / 1024:.1f} KiB (shard 2)")
    print(f"decision mismatches after crash+restore: {mismatches}")
    assert mismatches == 0, "restore must be bit-identical"
    print("crash+restore preserved every verdict - zero clicks forgotten.")


if __name__ == "__main__":
    main()
