#!/usr/bin/env python
"""Capacity planning: size a detector before deploying it.

Answers the operator questions with the paper's analysis (§3.2, §4.2):

* How much memory does a 1e-3 false-positive rate cost at my window
  size, for GBF vs TBF?
* Given a fixed memory budget, what FP rate will I get, and which k?
* For a jumping window, at what sub-window count should I switch from
  GBF to TBF (the §4 guidance, quantified in word operations)?

Run:  python examples/capacity_planning.py
"""

from repro import (
    plan_gbf_for_target,
    plan_gbf_from_memory,
    plan_tbf_for_target,
    plan_tbf_from_memory,
)
from repro.analysis import recommend_jumping_window_algorithm
from repro.core import gbf_cost, tbf_cost
from repro.metrics import render_table


def kib(bits: float) -> str:
    return f"{bits / 8 / 1024:.1f} KiB"


def main() -> None:
    window = 1 << 20  # one million clicks, the paper's N

    # ------------------------------------------------------------------
    print("1. Memory needed for a 0.1% false-positive rate at N = 2^20\n")
    rows = []
    for num_subwindows in (8, 32):
        plan = plan_gbf_for_target(window, num_subwindows, 0.001)
        rows.append(
            [
                f"GBF, Q={num_subwindows}",
                kib(plan.total_memory_bits),
                plan.num_hashes,
                f"{plan.predicted_fp:.2e}",
            ]
        )
    tbf_plan = plan_tbf_for_target(window, 0.001)
    rows.append(
        [
            "TBF (sliding)",
            kib(tbf_plan.total_memory_bits),
            tbf_plan.num_hashes,
            f"{tbf_plan.predicted_fp:.2e}",
        ]
    )
    # Exact detection must store the click identifiers themselves
    # (IP + cookie + ad id, tens of bytes) plus hash-table overhead;
    # 80 bytes per active click is a charitable estimate.
    rows.append(
        [
            "exact dict (reference)",
            kib(80 * 8 * window),
            "-",
            "0 (exact)",
        ]
    )
    print(render_table(["detector", "memory", "k", "predicted FP"], rows))

    # ------------------------------------------------------------------
    print("\n2. What a fixed 2 MiB budget buys at N = 2^20\n")
    budget = 2 * 8 * 1024 * 1024
    gbf_plan = plan_gbf_from_memory(window, 8, budget)
    tbf_budget_plan = plan_tbf_from_memory(window, budget)
    print(
        render_table(
            ["detector", "m", "k", "predicted FP"],
            [
                [
                    "GBF, Q=8",
                    f"{gbf_plan.bits_per_filter} bits/lane",
                    gbf_plan.num_hashes,
                    f"{gbf_plan.predicted_fp:.2e}",
                ],
                [
                    "TBF",
                    f"{tbf_budget_plan.num_entries} entries x "
                    f"{tbf_budget_plan.entry_bits}b",
                    tbf_budget_plan.num_hashes,
                    f"{tbf_budget_plan.predicted_fp:.2e}",
                ],
            ],
        )
    )

    # ------------------------------------------------------------------
    print("\n3. GBF or TBF for a jumping window? (word ops per element)\n")
    rows = []
    for num_subwindows in (4, 8, 16, 64, 256, 1024):
        if window % num_subwindows:
            continue
        bits_per_filter = budget // (num_subwindows + 1)
        gbf_ops = gbf_cost(window, num_subwindows, bits_per_filter, 10, 64).total
        entry_bits = max(2, (2 * num_subwindows + 2).bit_length())
        tbf_ops = tbf_cost(window, budget // entry_bits, 10,
                           cleanup_slack=window - 1).total
        verdict = recommend_jumping_window_algorithm(
            window, num_subwindows, budget, num_hashes=10
        )
        rows.append(
            [num_subwindows, round(gbf_ops, 1), round(tbf_ops, 1), verdict]
        )
    print(render_table(["Q", "GBF ops", "TBF ops", "recommended"], rows))
    print(
        "\nSmall Q: GBF's dense lane packing wins.  Large Q: lane words and\n"
        "cleaning dominate and the TBF takes over - the paper's §4 guidance."
    )


if __name__ == "__main__":
    main()
