#!/usr/bin/env python
"""Scenario 2 from the paper: a botnet attacks a pay-per-click network.

Simulates a small advertising network (keyword auctions, visitors,
billing) with a competitor-operated botnet hammering the most expensive
placements, then runs the full detection pipeline — TBF duplicate
detection, billing settlement, fraud scoring, and alerting — and
reports the economics with and without detection.

Run:  python examples/botnet_attack.py
"""

from repro import AdNetwork, DetectionPipeline, TrafficProfile, WindowSpec, create_detector
from repro.adnet import competitor_botnet
from repro.detection import AlertEngine, default_rules
from repro.metrics import render_table
from repro.streams import DEFAULT_SCHEME, TrafficClass


def build_network(seed: int = 11) -> AdNetwork:
    network = AdNetwork(seed=seed)
    network.add_advertiser("BlueWidgets", budget=30_000.0,
                           bids={"widgets": 1.50, "gadgets": 0.60, "sprockets": 0.45})
    network.add_advertiser("GadgetKing", budget=20_000.0,
                           bids={"gadgets": 1.10, "widgets": 0.80, "deals": 0.20,
                                 "cameras": 0.70})
    network.add_advertiser("CheapDeals", budget=10_000.0,
                           bids={"deals": 0.40, "gadgets": 0.30, "shoes": 0.25,
                                 "cameras": 0.35})
    network.add_advertiser("ShoeBarn", budget=10_000.0,
                           bids={"shoes": 0.55, "deals": 0.15, "sprockets": 0.20})
    network.add_publisher("search-portal", traffic_weight=2.0, revenue_share=0.68)
    network.add_publisher("blog-ring", traffic_weight=1.0, revenue_share=0.75)
    network.run_auctions(
        ["widgets", "gadgets", "deals", "sprockets", "cameras", "shoes"]
    )
    return network


def run_once(with_detection: bool, seed: int = 11):
    network = build_network(seed)
    # 150 bots re-clicking the two priciest placements every ~2 minutes.
    competitor_botnet(network, num_bots=150, mean_interval=120.0, seed=seed + 1)
    clicks = network.run(
        duration=4 * 3600.0,  # four hours of traffic
        profile=TrafficProfile(click_rate=1.2, num_visitors=400,
                               revisit_probability=0.04, revisit_mean_delay=1800.0),
    )
    if with_detection:
        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 16_384), target_fp=0.001, seed=seed))
    else:
        class AcceptEverything:
            def process(self, identifier: int) -> bool:
                return False

        detector = AcceptEverything()
    pipeline = DetectionPipeline(detector, billing=network.make_billing_engine())
    result = pipeline.run(clicks)
    return network, clicks, result


def main() -> None:
    undefended_network, clicks, undefended = run_once(with_detection=False)
    defended_network, _, defended = run_once(with_detection=True)

    total = len(clicks)
    bot_clicks = sum(1 for c in clicks if c.traffic_class is TrafficClass.BOTNET)
    print(f"Traffic: {total} clicks over 4h; {bot_clicks} from the botnet "
          f"({100 * bot_clicks / total:.1f}%)\n")

    rows = []
    for label, result in (("no detection", undefended), ("TBF pipeline", defended)):
        summary = result.billing_summary
        rows.append(
            [
                label,
                summary["charged_clicks"],
                summary["rejected_clicks"],
                f"${summary['charged_amount']:.2f}",
                f"${summary['fraud_charged']:.2f}",
                f"${summary['fraud_prevented']:.2f}",
            ]
        )
    print(
        render_table(
            ["pipeline", "charged", "rejected", "billed total",
             "fraud billed", "fraud prevented"],
            rows,
            title="Billing outcome with and without duplicate detection",
        )
    )

    victim = defended_network.advertisers.get(0)
    victim_undefended = undefended_network.advertisers.get(0)
    print(f"Top bidder's budget left:  undefended ${victim_undefended.remaining_budget:.2f}"
          f"  vs defended ${victim.remaining_budget:.2f}\n")

    # Fraud scoring + alerting on the defended run.
    detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 16_384), target_fp=0.001, seed=99))
    engine = AlertEngine(default_rules())
    for click in clicks:
        engine.observe(click, detector.process(DEFAULT_SCHEME.identify(click)))
    bot_ips = {c.source_ip for c in clicks if c.traffic_class is TrafficClass.BOTNET}
    flagged = [a for a in engine.alerts if a.scope == "source"]
    hits = sum(1 for alert in flagged if alert.key in bot_ips)
    print(f"Alerts: {len(flagged)} hot sources flagged; "
          f"{hits} are actual bots ({len(bot_ips)} bots total)")
    for alert in flagged[:5]:
        kind = "BOT" if alert.key in bot_ips else "human"
        print(f"  [{alert.rule_name}] source {alert.key:#010x} ({kind}): "
              f"{alert.clicks} clicks, {100 * alert.duplicate_rate:.0f}% duplicates")


if __name__ == "__main__":
    main()
