#!/usr/bin/env python
"""Beyond binary dedup: click quality and smart pricing (the paper's
"click quality" future-work direction).

A dishonest publisher inflates its revenue with a self-clicking script.
Duplicate detection rejects the repeats click by click; *smart pricing*
goes further and discounts every remaining click from that publisher by
its windowed valid-click ratio, so even the one billable click per
window earns a fraction of list price.  Budget pacing meanwhile keeps
the advertiser's budget from being drained in the first hour.

Run:  python examples/smart_pricing.py
"""

from repro import AdNetwork, TrafficProfile, WindowSpec, create_detector
from repro.adnet import BudgetPacer, PacingConfig, dishonest_publisher, paced_charge
from repro.detection import ClickQualityTracker, QualityConfig
from repro.errors import BudgetError
from repro.metrics import render_table
from repro.streams import DEFAULT_SCHEME


def main() -> None:
    network = AdNetwork(seed=17)
    keywords = [f"niche-{i}" for i in range(10)]
    network.add_advertiser(
        "Advertiser-A", budget=5_000.0,
        bids={k: 0.40 + 0.07 * i for i, k in enumerate(keywords) if i % 2 == 0},
    )
    network.add_advertiser(
        "Advertiser-B", budget=5_000.0,
        bids={k: 0.35 + 0.06 * i for i, k in enumerate(keywords) if i % 2 == 1},
    )
    network.add_advertiser(
        "Advertiser-C", budget=5_000.0,
        bids={k: 0.30 + 0.05 * i for i, k in enumerate(keywords) if i % 3},
    )
    network.add_publisher("honest-news", traffic_weight=2.0)
    shady = network.add_publisher("shady-aggregator", traffic_weight=1.0)
    network.run_auctions(keywords)
    # The shady publisher clicks its own placements every ~6 s.
    dishonest_publisher(network, shady.publisher_id, clicker_interval=6.0, seed=18)

    clicks = network.run(
        duration=6 * 3600.0,
        profile=TrafficProfile(click_rate=0.8, num_visitors=2500,
                               ad_popularity_exponent=0.5,
                               revisit_probability=0.03),
    )

    detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 8192), target_fp=0.001, seed=3))
    quality = ClickQualityTracker(QualityConfig(window=4096, grace_clicks=50))
    billing = network.make_billing_engine()
    pacer = BudgetPacer(PacingConfig(horizon=24 * 3600.0))

    discounts = 0.0
    for click in clicks:
        duplicate = detector.process(DEFAULT_SCHEME.identify(click))
        quality.observe(click, duplicate)
        if duplicate:
            billing.reject_duplicate(click)
            continue
        multiplier = quality.price_multiplier(click.publisher_id)
        try:
            charged = paced_charge(billing, pacer, click)
        except BudgetError:
            break
        if charged:
            # Smart pricing refunds the quality discount to the advertiser.
            discount = charged * (1.0 - multiplier)
            if discount > 0:
                billing.refund(click.advertiser_id, discount)
                publisher = network.publishers.get(click.publisher_id)
                publisher.earned -= discount * publisher.revenue_share
                discounts += discount

    print(f"processed {len(clicks)} clicks over 6h\n")
    rows = []
    for publisher, data in sorted(quality.report().items()):
        name = network.publishers.get(publisher).name
        rows.append([name, data["clicks"], f"{data['quality']:.3f}",
                     f"x{data['multiplier']:.3f}",
                     f"${network.publishers.get(publisher).earned:.2f}"])
    print(render_table(
        ["publisher", "clicks", "quality", "smart price", "earned"],
        rows,
        title="Per-publisher click quality and revenue",
    ))
    summary = billing.summary()
    print(f"\nduplicates rejected: {summary['rejected_clicks']} "
          f"(${summary['rejected_amount']:.2f} not billed)")
    print(f"smart-pricing refunds: ${discounts:.2f}")
    print(f"advertiser spend: ${summary['charged_amount'] - discounts:.2f} "
          f"(list-price value ${summary['charged_amount']:.2f})")


if __name__ == "__main__":
    main()
