"""Property-based tests (hypothesis) for the library's core invariants.

The invariants under test:

1. **Zero false negatives** (Theorems 1.1, 2.1): on ANY stream, a click
   identical to one the detector accepted as valid, still in-window, is
   reported as a duplicate — for GBF, TBF, and TBF-jumping.
2. **GBF = naive per-sub-window filters**: the lane interleaving is a
   memory layout, not a semantics change; decisions match exactly.
3. **Sketches only ever err on the FP side** against the exact labeler
   when the labeler is corrected for FP cascades.
4. **Batch hashing = scalar hashing** for every family.
5. **Dense lane packing = plain bit storage** in the packed matrix.
6. **Window models agree with their expiry positions.**
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveSubwindowBloomDetector
from repro.core import GBFDetector, TBFDetector, TBFJumpingDetector
from repro.core.lanes import LanePackedBitMatrix
from repro.hashing import (
    CarterWegmanFamily,
    DoubleHashingFamily,
    SplitMixFamily,
    TabulationFamily,
)
from repro.windows import JumpingWindow, LandmarkWindow, SlidingWindow

# Streams drawn from a small universe so duplicates are dense.
streams = st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=400)


def _check_zero_fn(detector, window, stream):
    last_valid = {}
    for identifier in stream:
        window.observe()
        predicted = detector.process(identifier)
        previous = last_valid.get(identifier)
        if previous is not None and window.is_active(previous):
            assert predicted, "zero-FN invariant violated"
        if not predicted:
            last_valid[identifier] = window.position


@settings(max_examples=60, deadline=None)
@given(stream=streams, seed=st.integers(0, 1000))
def test_tbf_zero_false_negatives(stream, seed):
    detector = TBFDetector(16, 128, 2, seed=seed)
    _check_zero_fn(detector, SlidingWindow(16), stream)


@settings(max_examples=60, deadline=None)
@given(stream=streams, seed=st.integers(0, 1000))
def test_gbf_zero_false_negatives(stream, seed):
    detector = GBFDetector(16, 4, 128, 2, seed=seed)
    _check_zero_fn(detector, JumpingWindow(16, 4), stream)


@settings(max_examples=60, deadline=None)
@given(stream=streams, seed=st.integers(0, 1000))
def test_tbf_jumping_zero_false_negatives(stream, seed):
    detector = TBFJumpingDetector(16, 4, 128, 2, seed=seed)
    _check_zero_fn(detector, JumpingWindow(16, 4), stream)


@settings(max_examples=60, deadline=None)
@given(
    stream=streams,
    seed=st.integers(0, 1000),
    subwindows=st.sampled_from([1, 2, 4, 8]),
    word_bits=st.sampled_from([8, 32, 64]),
)
def test_gbf_matches_naive_everywhere(stream, seed, subwindows, word_bits):
    bits = 64
    family = SplitMixFamily(2, bits, seed=seed)
    gbf = GBFDetector(16, subwindows, bits, family=family, word_bits=word_bits)
    naive = NaiveSubwindowBloomDetector(16, subwindows, bits, family=family)
    for identifier in stream:
        assert gbf.process(identifier) == naive.process(identifier)


@settings(max_examples=40, deadline=None)
@given(
    stream=streams,
    seed=st.integers(0, 1000),
    slack=st.sampled_from([0, 1, 5, 15, 40]),
)
def test_tbf_slack_never_changes_decisions_without_fp(stream, seed, slack):
    # With a filter big enough that FPs cannot occur on this universe,
    # the cleanup slack is purely an efficiency knob: decisions match
    # the default configuration exactly.
    big = 1 << 14
    reference = TBFDetector(16, big, 4, cleanup_slack=None, seed=seed)
    variant = TBFDetector(16, big, 4, cleanup_slack=slack, seed=seed)
    for identifier in stream:
        assert reference.process(identifier) == variant.process(identifier)


@settings(max_examples=30, deadline=None)
@given(
    identifiers=st.lists(
        st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=50
    ),
    seed=st.integers(0, 1000),
    num_hashes=st.integers(1, 8),
)
def test_batch_hashing_equals_scalar(identifiers, seed, num_hashes):
    for family_cls in (SplitMixFamily, CarterWegmanFamily, TabulationFamily, DoubleHashingFamily):
        family = family_cls(num_hashes, 997, seed=seed)
        batch = family.indices_batch(np.array(identifiers, dtype=np.uint64))
        for row, identifier in enumerate(identifiers):
            assert list(map(int, batch[row])) == family.indices(identifier)


@settings(max_examples=60, deadline=None)
@given(
    num_lanes=st.integers(1, 80),
    word_bits=st.sampled_from([8, 16, 32, 64]),
    operations=st.lists(
        st.tuples(st.integers(0, 59), st.integers(0, 79)), min_size=1, max_size=100
    ),
)
def test_lane_matrix_matches_dict_model(num_lanes, word_bits, operations):
    matrix = LanePackedBitMatrix(60, num_lanes, word_bits)
    reference = set()
    for slot, lane in operations:
        lane %= num_lanes
        matrix.set_lane([slot], lane)
        reference.add((slot, lane))
    for slot, lane in reference:
        assert matrix.get_bit(slot, lane)
    # Probe: AND of two slots' fields == intersection of their lane sets.
    slot_a, lane_a = operations[0][0], operations[0][1] % num_lanes
    slot_b = operations[-1][0]
    lanes_a = {lane for slot, lane in reference if slot == slot_a}
    lanes_b = {lane for slot, lane in reference if slot == slot_b}
    combined = matrix.probe_and([slot_a, slot_b])
    for lane in range(num_lanes):
        if word_bits >= num_lanes:
            bit = combined[0] >> lane & 1
        else:
            bit = combined[lane // word_bits] >> (lane % word_bits) & 1
        assert bool(bit) == (lane in lanes_a and lane in lanes_b)


@settings(max_examples=60, deadline=None)
@given(
    num_lanes=st.integers(1, 80),
    word_bits=st.sampled_from([8, 16, 32, 64]),
    lane=st.integers(0, 79),
    clear_start=st.integers(0, 59),
    clear_len=st.integers(0, 70),
)
def test_lane_matrix_clear_range_exact(num_lanes, word_bits, lane, clear_start, clear_len):
    lane %= num_lanes
    matrix = LanePackedBitMatrix(60, num_lanes, word_bits)
    # Set the target lane and a sentinel lane everywhere.
    other = (lane + 1) % num_lanes
    for slot in range(60):
        matrix.set_lane([slot], lane)
        if num_lanes > 1:
            matrix.set_lane([slot], other)
    matrix.clear_lane_range(lane, clear_start, clear_len)
    cleared = set(range(clear_start, min(clear_start + clear_len, 60)))
    for slot in range(60):
        assert matrix.get_bit(slot, lane) == (slot not in cleared)
        if num_lanes > 1:
            assert matrix.get_bit(slot, other), "cleaning must not touch other lanes"


@settings(max_examples=100, deadline=None)
@given(
    position=st.integers(0, 10_000),
    current=st.integers(0, 10_000),
    size=st.integers(1, 64),
    subwindows=st.integers(1, 8),
)
def test_window_active_iff_before_expiry(position, current, size, subwindows):
    size = size * subwindows  # keep divisibility
    for window in (SlidingWindow(size), JumpingWindow(size, subwindows), LandmarkWindow(size)):
        window.position = current
        if 0 <= position <= current:
            assert window.is_active(position) == (
                current < window.expiry_position(position)
            )
        else:
            assert not window.is_active(position)


@settings(max_examples=50, deadline=None)
@given(stream=streams, seed=st.integers(0, 1000))
def test_duplicate_reports_never_mutate_tbf(stream, seed):
    # Processing a duplicate must not refresh window anchoring: verify
    # via the count of entries holding each timestamp staying unchanged
    # on duplicate reports.
    detector = TBFDetector(16, 1 << 12, 3, seed=seed)
    for identifier in stream:
        before = detector.active_entries()
        duplicate = detector.process(identifier)
        if duplicate:
            # Cleaning may erase expired entries, but nothing new may
            # be written: active entries cannot increase.
            assert detector.active_entries() <= before
