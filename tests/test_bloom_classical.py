"""Unit tests for the classical Bloom filter."""

import pytest

from repro.bloom import BloomFilter, false_positive_rate
from repro.errors import ConfigurationError
from repro.hashing import SplitMixFamily


def test_no_false_negatives():
    bloom = BloomFilter(4096, num_hashes=4, seed=1)
    inserted = list(range(0, 2000, 7))
    for identifier in inserted:
        bloom.add(identifier)
    assert all(bloom.contains(identifier) for identifier in inserted)


def test_empty_filter_contains_nothing():
    bloom = BloomFilter(1024, num_hashes=3)
    assert not any(bloom.contains(identifier) for identifier in range(100))


def test_measured_fp_rate_tracks_theory():
    num_bits, load, k = 8192, 1000, 4
    bloom = BloomFilter(num_bits, num_hashes=k, seed=3)
    for identifier in range(load):
        bloom.add(identifier)
    probes = 20_000
    false_positives = sum(
        bloom.contains(identifier) for identifier in range(10**6, 10**6 + probes)
    )
    predicted = false_positive_rate(num_bits, load, k)
    measured = false_positives / probes
    assert measured == pytest.approx(predicted, rel=0.35)


def test_add_if_absent_semantics():
    bloom = BloomFilter(1 << 16, num_hashes=5, seed=2)
    assert bloom.add_if_absent(42) is False  # first sight: inserted
    assert bloom.add_if_absent(42) is True   # second sight: duplicate
    assert bloom.count_inserted == 1


def test_clear_resets_state():
    bloom = BloomFilter(512, num_hashes=2)
    bloom.add(1)
    assert bloom.bits_set() > 0
    bloom.clear()
    assert bloom.bits_set() == 0
    assert bloom.count_inserted == 0
    assert not bloom.contains(1)


def test_precomputed_index_paths_match_online():
    family = SplitMixFamily(4, 2048, seed=9)
    online = BloomFilter(2048, family=family)
    replay = BloomFilter(2048, family=family)
    for identifier in range(300):
        online.add(identifier)
        replay.add_indices(family.indices(identifier))
    for identifier in range(600):
        assert online.contains(identifier) == replay.contains_indices(
            family.indices(identifier)
        )


def test_in_operator():
    bloom = BloomFilter(1 << 14, num_hashes=4)
    bloom.add(7)
    assert 7 in bloom


def test_family_range_must_match():
    family = SplitMixFamily(4, 100, seed=0)
    with pytest.raises(ConfigurationError):
        BloomFilter(200, family=family)


def test_shared_family_gives_identical_bit_patterns():
    family = SplitMixFamily(3, 4096, seed=5)
    a = BloomFilter(4096, family=family)
    b = BloomFilter(4096, family=family)
    a.add(123)
    b.add(123)
    assert (a._bits.raw() == b._bits.raw()).all()


def test_bits_set_counts():
    bloom = BloomFilter(1 << 15, num_hashes=6, seed=0)
    bloom.add(1)
    assert 1 <= bloom.bits_set() <= 6


class TestPartitionedBloomFilter:
    def test_no_false_negatives(self):
        from repro.bloom import PartitionedBloomFilter

        bloom = PartitionedBloomFilter(8192, num_hashes=4, seed=1)
        for identifier in range(0, 1000, 3):
            bloom.add(identifier)
        assert all(bloom.contains(i) for i in range(0, 1000, 3))

    def test_each_insert_sets_exactly_k_distinct_bits(self):
        from repro.bloom import PartitionedBloomFilter

        bloom = PartitionedBloomFilter(1 << 16, num_hashes=8, seed=2)
        bloom.add(42)
        assert bloom.bits_set() == 8  # segments cannot collide

    def test_add_if_absent(self):
        from repro.bloom import PartitionedBloomFilter

        bloom = PartitionedBloomFilter(1 << 14, num_hashes=4, seed=3)
        assert bloom.add_if_absent(7) is False
        assert bloom.add_if_absent(7) is True

    def test_fp_rate_close_to_formula_and_above_classical(self):
        import pytest as _pytest

        from repro.bloom import (
            BloomFilter,
            PartitionedBloomFilter,
            false_positive_rate,
        )

        num_bits, load, k = 8192, 1200, 4
        partitioned = PartitionedBloomFilter(num_bits, k, seed=5)
        for identifier in range(load):
            partitioned.add(identifier)
        probes = 20_000
        measured = sum(
            partitioned.contains(i) for i in range(10**6, 10**6 + probes)
        ) / probes
        predicted = PartitionedBloomFilter.false_positive_rate(num_bits, load, k)
        assert measured == _pytest.approx(predicted, rel=0.3)
        # The partitioned layout is (slightly) worse than the classical.
        assert predicted >= false_positive_rate(num_bits, load, k)

    def test_validation(self):
        import pytest as _pytest

        from repro.bloom import PartitionedBloomFilter
        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            PartitionedBloomFilter(3, num_hashes=4)
        with _pytest.raises(ConfigurationError):
            PartitionedBloomFilter(100, num_hashes=0)
