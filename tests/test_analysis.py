"""Unit tests for the theory and sizing modules."""

import pytest

from repro.analysis import (
    expected_false_positives,
    fp_confidence_interval,
    gbf_fp_from_memory,
    gbf_optimal_hashes,
    gbf_subfilter_fp,
    gbf_window_fp,
    landmark_bloom_fp,
    metwally_main_fp,
    plan_gbf_for_target,
    plan_gbf_from_memory,
    plan_tbf_for_target,
    plan_tbf_from_memory,
    recommend_jumping_window_algorithm,
    tbf_fp,
    tbf_fp_from_memory,
    tbf_optimal_hashes,
)
from repro.errors import ConfigurationError


class TestTheory:
    def test_gbf_window_fp_union_bound_shape(self):
        per_lane = gbf_subfilter_fp(1 << 14, 8, 1 << 15, 6)
        window = gbf_window_fp(1 << 14, 8, 1 << 15, 6)
        assert per_lane < window <= 8 * per_lane

    def test_paper_headline_fig2a(self):
        # §5: per-lane rate at the paper's exact constants ~ 0.001.
        per_lane = gbf_subfilter_fp(1 << 20, 8, 1_876_246, 10)
        assert per_lane == pytest.approx(0.001, abs=3e-4)

    def test_paper_headline_fig2b(self):
        rate = tbf_fp(1 << 20, 15_112_980, 10)
        assert rate == pytest.approx(0.001, abs=3e-4)

    def test_figure1_gap_at_full_size(self):
        # §3.3: at N = 2^20, m = 2^20 the previous algorithm is several
        # times worse than GBF (paper: 0.62 vs 0.073).
        for k in (2, 3, 4):
            previous = metwally_main_fp(1 << 20, 1 << 20, k)
            gbf = gbf_window_fp(1 << 20, 31, 1 << 20, k)
            assert previous > 4 * gbf

    def test_gbf_equals_previous_at_k1(self):
        # Degenerate identity: with one hash the union of Q lane checks
        # is statistically a single filter with N insertions.
        previous = metwally_main_fp(1 << 16, 1 << 16, 1)
        gbf = gbf_window_fp(1 << 16, 16, 1 << 16, 1)
        assert gbf == pytest.approx(previous, rel=1e-6)

    def test_memory_based_forms(self):
        window = 1 << 12
        direct = gbf_window_fp(window, 8, (1 << 16) // 9, 5)
        from_memory = gbf_fp_from_memory(window, 8, 1 << 16, 5)
        assert from_memory == pytest.approx(direct)
        assert tbf_fp_from_memory(window, 1 << 20, 5) > 0

    def test_landmark_fp_is_full_load(self):
        assert landmark_bloom_fp(1000, 1 << 14, 4) == metwally_main_fp(1000, 1 << 14, 4)

    def test_optimal_hash_helpers(self):
        assert gbf_optimal_hashes(1 << 20, 8, 1_876_246) == 10
        assert tbf_optimal_hashes(1 << 20, 15_112_980) == 10

    def test_expected_false_positives(self):
        assert expected_false_positives(0.001, 10_000) == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            expected_false_positives(1.5, 10)

    def test_confidence_interval_contains_rate(self):
        low, high = fp_confidence_interval(10, 10_000)
        assert low < 0.001 < high
        assert fp_confidence_interval(0, 0) == (0.0, 0.0)


class TestSizing:
    def test_gbf_plan_from_memory_respects_budget(self):
        plan = plan_gbf_from_memory(1 << 14, 8, 1 << 20)
        assert plan.total_memory_bits <= 1 << 20
        assert plan.num_hashes >= 1
        assert 0 < plan.predicted_fp < 1

    def test_gbf_plan_for_target_meets_it(self):
        plan = plan_gbf_for_target(1 << 14, 8, 0.001)
        assert plan.predicted_fp <= 0.001
        assert gbf_window_fp(1 << 14, 8, plan.bits_per_filter, plan.num_hashes) <= 0.001

    def test_tbf_plan_from_memory_respects_budget(self):
        plan = plan_tbf_from_memory(1 << 14, 1 << 22)
        assert plan.total_memory_bits <= 1 << 22

    def test_tbf_plan_for_target_meets_it(self):
        plan = plan_tbf_for_target(1 << 14, 0.001)
        assert plan.predicted_fp <= 0.001
        assert tbf_fp(1 << 14, plan.num_entries, plan.num_hashes) <= 0.001

    def test_budget_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_gbf_from_memory(1 << 14, 8, 4)
        with pytest.raises(ConfigurationError):
            plan_tbf_from_memory(1 << 14, 4)

    def test_target_validation(self):
        with pytest.raises(ConfigurationError):
            plan_gbf_for_target(1 << 14, 8, 1.5)
        with pytest.raises(ConfigurationError):
            plan_tbf_for_target(1 << 14, 0.0)

    def test_recommendation_flips_with_q(self):
        # §4.1: small Q -> GBF; very large Q -> TBF.
        window, memory = 1 << 14, 1 << 20
        small = recommend_jumping_window_algorithm(window, 4, memory, word_bits=32)
        large = recommend_jumping_window_algorithm(window, 1 << 12, memory, word_bits=32)
        assert small == "gbf"
        assert large == "tbf-jumping"
