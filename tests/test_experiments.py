"""Tests for the experiment harness (figures run here at toy scale;
the benchmarks run them at the reporting scale)."""

import math

import pytest

from repro.core import TBFDetector
from repro.errors import ConfigurationError
from repro.experiments import (
    FPExperimentConfig,
    measure_false_positives,
    run_cbf_width_ablation,
    run_distinct_stream_fp,
    run_figure1,
    run_figure2a,
    run_figure2b,
    run_q_crossover_ablation,
    run_tbf_slack_ablation,
    scale_factor,
)
from repro.experiments.config import (
    PAPER_WINDOW_SIZE,
    scaled_fig2a_bits,
    scaled_fig2b_entries,
)
from repro.streams import distinct_stream

TOY_SCALE = 1024  # N = 1024: every figure runs in well under a second


class TestConfig:
    def test_scaled_protocol_ratios(self):
        config = FPExperimentConfig.scaled(64)
        assert config.window_size == PAPER_WINDOW_SIZE // 64
        assert config.stream_length == 20 * config.window_size
        assert config.stream_length - config.measure_from == 10 * config.window_size

    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "128")
        assert scale_factor() == 128
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ConfigurationError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ConfigurationError):
            scale_factor()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_factor(default=32) == 32

    def test_scaled_sizes_preserve_ratio(self):
        for scale in (64, 256, 1024):
            window = PAPER_WINDOW_SIZE // scale
            assert scaled_fig2a_bits(scale) / window == pytest.approx(
                1_876_246 / PAPER_WINDOW_SIZE, rel=0.01
            )
            assert scaled_fig2b_entries(scale) / window == pytest.approx(
                15_112_980 / PAPER_WINDOW_SIZE, rel=0.01
            )

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            FPExperimentConfig.scaled(0)


class TestRunner:
    def test_distinct_stream_protocol(self):
        config = FPExperimentConfig.scaled(TOY_SCALE, seed=3)
        detector = TBFDetector(
            config.window_size, scaled_fig2b_entries(TOY_SCALE), 10, seed=3
        )
        measurement = run_distinct_stream_fp(detector, config)
        assert measurement.queries == 10 * config.window_size
        assert 0 <= measurement.rate < 0.05

    def test_batch_and_scalar_paths_agree(self):
        # The process_indices replay must produce identical FP counts to
        # plain process() calls.
        config = FPExperimentConfig(window_size=256, stream_length=2048,
                                    measure_from=1024, seed=5)
        stream = distinct_stream(config.stream_length, config.seed)

        batched = TBFDetector(256, 1024, 4, seed=7)
        batched_result = measure_false_positives(batched, stream, config.measure_from)

        class ScalarOnly:
            def __init__(self):
                self.inner = TBFDetector(256, 1024, 4, seed=7)

            def process(self, identifier):
                return self.inner.process(identifier)

        scalar_result = measure_false_positives(
            ScalarOnly(), stream, config.measure_from
        )
        assert batched_result.false_positives == scalar_result.false_positives


class TestFigures:
    def test_figure2a_tracks_query_theory(self):
        result = run_figure2a(scale=TOY_SCALE, k_values=[4, 8], seed=1)
        assert result.k_values == [4, 8]
        for measured, theory in zip(result.measured, result.theory_query):
            assert measured == pytest.approx(theory, rel=0.5, abs=0.002)
        # Per-lane curve sits below the query-level curve.
        for lane, query in zip(result.theory_per_lane, result.theory_query):
            assert lane < query
        assert "Figure 2(a)" in result.render()

    def test_figure2b_tracks_theory(self):
        result = run_figure2b(scale=TOY_SCALE, k_values=[4, 8], seed=1)
        for measured, theory in zip(result.measured, result.theory):
            assert measured == pytest.approx(theory, rel=0.5, abs=0.002)
        assert "Figure 2(b)" in result.render()

    def test_figure1_shape(self):
        result = run_figure1(scale=TOY_SCALE, log_n_values=[16, 20], num_hashes=2, seed=1)
        # Paper's claim: previous algorithm degrades much faster with N.
        assert result.theory_previous[-1] > result.theory_gbf[-1] * 4
        assert result.measured_previous[-1] > result.measured_gbf[-1] * 2
        # Both grow with N.
        assert result.theory_previous[0] < result.theory_previous[-1]
        assert "Figure 1" in result.render()

    def test_figure1_theory_only_mode(self):
        result = run_figure1(log_n_values=[15, 20], measure=False)
        assert all(math.isnan(value) for value in result.measured_gbf)
        assert len(result.theory_previous) == 2


class TestAblations:
    def test_tbf_slack_tradeoff(self):
        result = run_tbf_slack_ablation(
            scale=TOY_SCALE, slack_fractions=(1 / 16, 1.0, 4.0), num_hashes=6
        )
        rows = result.rows
        assert len(rows) == 3
        # More slack -> wider entries, fewer scans.
        assert rows[0].entry_bits <= rows[1].entry_bits <= rows[2].entry_bits
        assert rows[0].scan_per_element >= rows[1].scan_per_element >= rows[2].scan_per_element
        # FP rate is unaffected by C (within noise).
        for row in rows:
            assert row.measured_fp == pytest.approx(rows[0].measured_fp, abs=0.01)
        assert "Ablation A1" in result.render()

    def test_q_crossover(self):
        result = run_q_crossover_ablation(
            window_size=1 << 10,
            total_memory_bits=1 << 16,
            q_values=(4, 16, 64, 256),
            num_hashes=4,
            word_bits=32,
        )
        assert len(result.rows) == 4
        gbf_ops = [row.gbf_measured for row in result.rows]
        tbf_ops = [row.tbf_measured for row in result.rows]
        # GBF cost grows with Q; TBF cost stays roughly flat.
        assert gbf_ops[-1] > gbf_ops[0]
        assert tbf_ops[-1] < gbf_ops[-1]
        assert result.crossover_q is not None
        # Predictions within 2x of measurements everywhere.
        for row in result.rows:
            assert row.gbf_measured == pytest.approx(row.gbf_predicted, rel=1.0)
        assert "Ablation A2" in result.render()

    def test_cbf_width(self):
        result = run_cbf_width_ablation(
            window_size=1 << 10,
            num_subwindows=4,
            num_counters=1 << 13,
            counter_widths=(2, 16),
            num_hashes=3,
        )
        narrow, wide = result.rows
        # Wide counters never cap; 2-bit counters do even at honest load.
        assert wide.saturation_events == 0
        assert narrow.saturation_events > 0
        # Saturation adds error on top of the FP-cascade baseline both
        # widths share (an FP suppresses an insert, so a later true
        # duplicate can be missed — a labeling artifact, not saturation).
        assert narrow.false_negative_rate >= wide.false_negative_rate
        assert narrow.memory_bits < wide.memory_bits
        assert "Ablation A3" in result.render()


class TestScalingValidation:
    def test_ratio_near_one_across_scales(self):
        from repro.experiments import run_scaling_validation

        result = run_scaling_validation(scales=(2048, 1024), num_hashes=6, seed=3)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.5 <= row.ratio <= 1.6
        # Window sizes actually differ: this is a multi-scale check.
        assert result.rows[0].window_size * 2 == result.rows[1].window_size
        assert "Scale invariance" in result.render()


class TestLandmarkBoundaryAblation:
    def test_miss_rate_matches_lag_over_n(self):
        from repro.experiments import run_landmark_boundary_ablation

        result = run_landmark_boundary_ablation(
            window_size=1 << 10, lags=(0.25, 0.75), pairs_per_lag=200, seed=5
        )
        quarter, three_quarters = result.rows
        assert quarter.landmark_miss_rate == pytest.approx(0.25, abs=0.1)
        assert three_quarters.landmark_miss_rate == pytest.approx(0.75, abs=0.1)
        assert quarter.tbf_miss_rate == 0.0
        assert three_quarters.tbf_miss_rate == 0.0
        assert "Ablation A5" in result.render()


class TestLabeledRunner:
    def test_confusion_against_exact(self):
        from repro.baselines import ExactDetector
        from repro.experiments.runner import run_labeled_stream
        from repro.streams import DuplicateSpec, duplicated_stream

        stream = duplicated_stream(3000, DuplicateSpec(rate=0.3, max_lag=100), seed=4)
        sketch = TBFDetector(256, 1 << 14, 6, seed=1)
        exact = ExactDetector.sliding(256)
        result = run_labeled_stream(sketch, exact, stream)
        matrix = result.matrix
        assert matrix.total == 3000
        assert matrix.true_positives > 0
        assert matrix.recall > 0.99   # zero-FN (modulo FP cascades)
        assert matrix.false_positive_rate < 0.01
