"""Unit tests for measurement: confusion, op counts, throughput, reporting."""

import pytest

from repro.core import TBFDetector
from repro.metrics.throughput import ThroughputResult
from repro.metrics import (
    ConfusionMatrix,
    measure_ops,
    relative_error,
    render_series,
    render_table,
    time_detector,
    to_csv,
)


class TestConfusionMatrix:
    def test_update_routing(self):
        matrix = ConfusionMatrix()
        matrix.update(True, True)
        matrix.update(True, False)
        matrix.update(False, True)
        matrix.update(False, False)
        assert (matrix.true_positives, matrix.false_positives,
                matrix.false_negatives, matrix.true_negatives) == (1, 1, 1, 1)
        assert matrix.total == 4

    def test_rates(self):
        matrix = ConfusionMatrix(
            true_positives=8, false_positives=2, true_negatives=88, false_negatives=2
        )
        assert matrix.false_positive_rate == pytest.approx(2 / 90)
        assert matrix.false_negative_rate == pytest.approx(2 / 10)
        assert matrix.precision == pytest.approx(0.8)
        assert matrix.recall == pytest.approx(0.8)
        assert matrix.f1 == pytest.approx(0.8)
        assert matrix.accuracy == pytest.approx(0.96)

    def test_degenerate_rates(self):
        matrix = ConfusionMatrix()
        assert matrix.false_positive_rate == 0.0
        assert matrix.false_negative_rate == 0.0
        assert matrix.precision == 1.0
        assert matrix.recall == 1.0
        assert matrix.f1 == 1.0
        assert matrix.accuracy == 1.0

    def test_merged(self):
        merged = ConfusionMatrix(true_positives=1).merged_with(
            ConfusionMatrix(false_negatives=2)
        )
        assert merged.true_positives == 1
        assert merged.false_negatives == 2


class TestOpMeasurement:
    def test_measure_ops_resets_then_counts(self):
        detector = TBFDetector(64, 1024, 3, seed=1)
        for identifier in range(50):
            detector.process(identifier)
        measurement = measure_ops(detector, range(1000, 1100))
        assert measurement.elements == 100
        assert measurement.words_per_element > 0
        assert measurement.rates.hash_evaluations == pytest.approx(3.0)

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")


class TestThroughput:
    def test_time_detector(self):
        detector = TBFDetector(64, 1024, 3, seed=1)
        result = time_detector(detector, list(range(2000)))
        assert result.elements == 2000
        assert result.seconds > 0
        assert result.elements_per_second > 1000  # very conservative
        assert result.microseconds_per_element > 0

    def test_zero_seconds_is_infinite_rate(self):
        # Timer resolution can legitimately produce 0.0 on tiny runs;
        # the rate must not raise ZeroDivisionError.
        result = ThroughputResult(elements=10, seconds=0.0)
        assert result.elements_per_second == float("inf")
        assert result.microseconds_per_element == 0.0

    def test_zero_elements(self):
        result = ThroughputResult(elements=0, seconds=1.0)
        assert result.microseconds_per_element == 0.0
        assert result.elements_per_second == 0.0

    def test_zero_both(self):
        result = ThroughputResult(elements=0, seconds=0.0)
        assert result.elements_per_second == float("inf")
        assert result.microseconds_per_element == 0.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1], ["b", 123456]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2  # aligned widths

    def test_render_table_float_formats(self):
        text = render_table(["x"], [[0.00001234], [0.5]])
        assert "1.234e-05" in text
        assert "0.5" in text

    def test_render_series_shapes(self):
        text = render_series(
            "k", [1, 2], [("measured", [0.1, 0.2]), ("theory", [0.15, 0.25])]
        )
        assert "measured" in text and "theory" in text
        assert text.count("\n") == 4  # header, separator, two rows

    def test_to_csv(self):
        csv_text = to_csv(["a", "b"], [[1, 2.5], ["x", 0]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
