"""Tests for exactly-once delivery under failure (:mod:`repro.chaos`).

Covers the dedup window (replay, in-flight mirroring, drain/restore
persistence), the typed client retry machinery and circuit breaker, the
payload checksum, the engine watchdog against injected kills and
stalls, the fault proxy, and the full chaos soak reconciliation.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.detection import DetectorSpec, WindowSpec, create_detector
from repro.detection.pipeline import DetectionPipeline
from repro.chaos import ChaosProxy, FaultPlan, ProxyThread, SoakConfig, run_soak
from repro.errors import (
    ConfigurationError,
    ConnectionLost,
    DeadlineExceeded,
    ProtocolError,
    RetriesExhausted,
)
from repro.resilience import ChaosDetector, EngineFaultHooks
from repro.serve import RetryPolicy, ServeClient, ServeConfig, ServerThread
from repro.serve.client import run_load
from repro.serve.protocol import (
    FRAME_HELLO_ACK,
    FRAME_RETRY,
    FRAME_VERDICTS,
    HEADER,
    MAGIC,
    decode_header,
    decode_hello_payload,
    encode_batch,
    encode_frame,
    encode_hello,
)
from repro.telemetry import TelemetrySession

TBF_SPEC = DetectorSpec(
    algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.01
)


def _stream(count=4_000, seed=5, universe=500):
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=count, dtype=np.uint64)


def _offline(identifiers):
    pipeline = DetectionPipeline(create_detector(TBF_SPEC), score_sources=False)
    return pipeline.run_identified_batch(identifiers, None)


def _counters(session):
    return {
        entry["name"]: entry["value"]
        for entry in session.registry.snapshot()["counters"]
    }


def _recv_exactly(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        assert chunk, "peer closed early"
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _read_response(sock):
    header = _recv_exactly(sock, HEADER.size)
    frame_type, request_id, length = decode_header(header, expect_response=True)
    return frame_type, request_id, _recv_exactly(sock, length)


def _hello(sock, client_id):
    sock.sendall(MAGIC + encode_hello(0, client_id))
    frame_type, _id, payload = _read_response(sock)
    assert frame_type == FRAME_HELLO_ACK
    return decode_hello_payload(payload)


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestFaultPlan:
    def test_decisions_are_seeded_and_deterministic(self):
        plan = FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.2,
                         corrupt_rate=0.2)
        fates = [plan.decide(0, frame) for frame in range(300)]
        again = [plan.decide(0, frame) for frame in range(300)]
        assert fates == again
        assert {"drop", "duplicate", "corrupt", "pass"} == set(fates)
        # A different connection draws a different (but equally fixed)
        # schedule.
        assert fates != [plan.decide(1, frame) for frame in range(300)]

    def test_certain_fault(self):
        plan = FaultPlan(drop_rate=1.0)
        assert all(plan.decide(0, f) == "drop" for f in range(20))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=0.7, reset_rate=0.6)
        with pytest.raises(ConfigurationError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(bytes_per_second=0)


class TestExactlyOnceDedup:
    def test_duplicate_batch_replays_cached_response(self):
        identifiers = _stream(count=1_000)
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                assert _hello(sock, client_id=77) == 0
                frame = encode_batch(1, identifiers)
                sock.sendall(frame)
                first = _read_response(sock)
                assert first[0] == FRAME_VERDICTS
                # The network "retries" the identical frame: the server
                # must replay the exact cached bytes, not re-classify.
                sock.sendall(frame)
                assert _read_response(sock) == first
            finally:
                sock.close()
        assert thread.server.processed_clicks == 1_000  # applied once

    def test_inflight_duplicate_mirrors_the_first_response(self):
        identifiers = _stream(count=500)
        # Hold the group in the coalescer so the duplicate arrives while
        # the first copy is still pending.
        config = ServeConfig(max_batch=1 << 30, max_delay=0.3)
        with ServerThread(create_detector(TBF_SPEC), config) as thread:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                _hello(sock, client_id=9)
                frame = encode_batch(1, identifiers)
                sock.sendall(frame + frame)
                first = _read_response(sock)
                second = _read_response(sock)
                assert first[0] == FRAME_VERDICTS
                assert second == first
            finally:
                sock.close()
        assert thread.server.processed_clicks == 500

    def test_dedup_window_survives_drain_and_restore(self, tmp_path):
        identifiers = _stream(count=800)
        config = ServeConfig(checkpoint_dir=tmp_path / "ckpt")
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                assert _hello(sock, client_id=42) == 0
                sock.sendall(encode_batch(1, identifiers))
                first = _read_response(sock)
            finally:
                sock.close()
        finally:
            thread.stop()

        # A fresh process restores the dedup window with the sketch: the
        # retried batch replays across the restart, and is not re-applied.
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                assert _hello(sock, client_id=42) == 1  # remembered
                sock.sendall(encode_batch(1, identifiers))
                assert _read_response(sock) == first
            finally:
                sock.close()
        finally:
            thread.stop()
        assert thread.server.processed_clicks == 800


class TestPayloadChecksum:
    def test_corrupted_payload_refused_with_retry_then_succeeds(self):
        identifiers = _stream(count=300)
        session = TelemetrySession()
        with ServerThread(
            create_detector(TBF_SPEC), telemetry=session
        ) as thread:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                _hello(sock, client_id=5)
                frame = bytearray(encode_batch(1, identifiers))
                frame[HEADER.size + 40] ^= 0xFF  # one bit of line noise
                sock.sendall(bytes(frame))
                frame_type, request_id, _payload = _read_response(sock)
                assert frame_type == FRAME_RETRY
                assert request_id == 1
                # The same batch, undamaged, is accepted — the RETRY did
                # not poison the dedup window.
                sock.sendall(encode_batch(1, identifiers))
                assert _read_response(sock)[0] == FRAME_VERDICTS
            finally:
                sock.close()
        assert thread.server.processed_clicks == 300
        assert _counters(session)["repro_serve_corrupt_frames_total"] == 1


class TestTypedClientErrors:
    def test_connection_lost_on_dead_server(self):
        with pytest.raises(ConnectionLost):
            ServeClient("127.0.0.1", _free_port(), timeout=0.5)

    def test_deadline_exceeded_on_unresponsive_server(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(listener.accept()[0]), daemon=True
        )
        thread.start()
        try:
            with pytest.raises(DeadlineExceeded):
                ServeClient(
                    "127.0.0.1", listener.getsockname()[1], timeout=0.2
                )
        finally:
            listener.close()
            thread.join(timeout=5)
            for conn in accepted:
                conn.close()

    def test_retries_exhausted_then_breaker_fast_fails(self):
        identifiers = _stream(count=200)
        policy = RetryPolicy(
            max_retries=2, base_backoff=0.01, max_backoff=0.02,
            breaker_reset=30.0, seed=1,
        )
        # A black hole: completes the HELLO handshake once, swallows
        # the batch, then the whole endpoint disappears — every
        # reconnect attempt is refused, so the retry budget exhausts.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        conns = []

        def black_hole():
            conn, _ = listener.accept()
            conns.append(conn)
            _recv_exactly(conn, len(MAGIC) + HEADER.size + 8)
            conn.sendall(
                encode_frame(FRAME_HELLO_ACK, 0, struct.pack("<Q", 0))
            )

        server = threading.Thread(target=black_hole, daemon=True)
        server.start()
        client = None
        try:
            client = ServeClient(
                "127.0.0.1", listener.getsockname()[1],
                timeout=0.2, retry=policy,
            )
            request_id = client.submit(identifiers)
            server.join(timeout=5)
            listener.close()
            for conn in conns:
                conn.close()
            with pytest.raises(RetriesExhausted) as info:
                client.collect(request_id)
            # The typed error names the deliveries still on the hook.
            assert request_id in info.value.pending
            # The breaker is now open: the next call fails in
            # microseconds instead of burning another retry cycle.
            started = time.perf_counter()
            with pytest.raises(ConnectionLost, match="circuit breaker"):
                client.collect(request_id)
            assert time.perf_counter() - started < 0.1
        finally:
            if client is not None:
                client.close()
                client.close()  # idempotent, even half-closed
            listener.close()

    def test_hard_error_counted_not_retried_by_run_load(self):
        good = _stream(count=400)
        batches = [
            (good[:200], None),
            # Regressing timestamps: the server refuses this batch with
            # a hard ERROR every time — run_load must drop and count it.
            (np.array([1, 2], dtype=np.uint64), np.array([5.0, 1.0])),
            (good[200:], None),
        ]
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            stats = run_load("127.0.0.1", thread.port, batches, window=2)
        assert stats["errors"] == 1
        assert stats["error_clicks"] == 2
        assert stats["clicks"] == 400


class TestEngineWatchdog:
    def test_engine_death_is_restarted_without_client_errors(self):
        identifiers = _stream(count=600)
        session = TelemetrySession()
        hooks = EngineFaultHooks(fail_groups=(0,))
        config = ServeConfig(watchdog_interval=0.02)
        with ServerThread(
            create_detector(TBF_SPEC), config,
            telemetry=session, fault_hooks=hooks,
        ) as thread:
            with ServeClient("127.0.0.1", thread.port, timeout=10.0) as client:
                verdicts = client.send(identifiers)
        assert (verdicts == _offline(identifiers)).all()
        assert thread.server.processed_clicks == 600
        assert _counters(session)["repro_serve_watchdog_restarts_total"] >= 1

    def test_wedged_engine_is_cancelled_and_restarted(self):
        identifiers = _stream(count=600)
        session = TelemetrySession()
        hooks = EngineFaultHooks(stall_groups={0: 30.0})
        config = ServeConfig(
            watchdog_interval=0.05, watchdog_stall_timeout=0.2
        )
        with ServerThread(
            create_detector(TBF_SPEC), config,
            telemetry=session, fault_hooks=hooks,
        ) as thread:
            with ServeClient("127.0.0.1", thread.port, timeout=10.0) as client:
                verdicts = client.send(identifiers)
        assert (verdicts == _offline(identifiers)).all()
        assert thread.server.processed_clicks == 600
        assert _counters(session)["repro_serve_watchdog_restarts_total"] >= 1

    def test_drain_survives_a_wedged_engine(self):
        identifiers = _stream(count=400)
        hooks = EngineFaultHooks(stall_groups={0: 30.0})
        config = ServeConfig(
            watchdog_interval=0.05, watchdog_stall_timeout=0.2,
            max_batch=1 << 30, max_delay=5.0,
        )
        thread = ServerThread(
            create_detector(TBF_SPEC), config, fault_hooks=hooks
        ).start()
        client = ServeClient("127.0.0.1", thread.port, timeout=30.0)
        try:
            request_id = client.submit(identifiers)
            # SIGTERM arrives while the engine is stalled on the group:
            # drain must cancel it, requeue, and still answer everything.
            thread.stop(timeout=20.0)
            assert (client.collect(request_id) == _offline(identifiers)).all()
        finally:
            client.close()
        assert thread.server.processed_clicks == 400

    def test_detector_exception_errors_the_group_engine_survives(self):
        identifiers = _stream(count=300)
        detector = ChaosDetector(create_detector(TBF_SPEC), fail_calls=(0,))
        with ServerThread(detector) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                with pytest.raises(ProtocolError, match="detector rejected"):
                    client.send(identifiers)
                # Same connection, same engine: the next attempt lands.
                assert client.send(identifiers).shape == identifiers.shape
        assert thread.server.processed_clicks == 300

    def test_checkpoint_write_failure_is_retried(self, tmp_path):
        identifiers = _stream(count=500)
        session = TelemetrySession()
        hooks = EngineFaultHooks(fail_checkpoints=(0,))
        config = ServeConfig(checkpoint_dir=tmp_path / "ckpt")
        thread = ServerThread(
            create_detector(TBF_SPEC), config,
            telemetry=session, fault_hooks=hooks,
        ).start()
        try:
            with ServeClient("127.0.0.1", thread.port) as client:
                client.send(identifiers)
        finally:
            thread.stop()
        counters = _counters(session)
        assert counters["repro_serve_checkpoint_failures_total"] == 1
        assert counters["repro_serve_checkpoints_total"] == 1
        # The retried write is a valid checkpoint: a restart resumes it.
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            assert thread.server.processed_clicks == 500
        finally:
            thread.stop()


class TestChaosProxy:
    def test_pass_through_is_transparent(self):
        identifiers = _stream(count=2_000)
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            with ProxyThread(thread.port, plan=FaultPlan()) as proxy:
                with ServeClient("127.0.0.1", proxy.port) as client:
                    served = np.concatenate([
                        client.send(chunk)
                        for chunk in np.array_split(identifiers, 5)
                    ])
        assert (served == _offline(identifiers)).all()

    def test_hostile_network_still_exactly_once(self):
        identifiers = _stream(count=3_000)
        chunks = np.array_split(identifiers, 24)
        batches = [(chunk, None) for chunk in chunks]
        plan = FaultPlan(
            seed=11, drop_rate=0.06, duplicate_rate=0.08, corrupt_rate=0.06,
            truncate_rate=0.03, reset_rate=0.03, delay_rate=0.04,
            delay_seconds=0.002,
        )
        journal = {}
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            with ProxyThread(thread.port, plan=plan) as proxy:
                stats = run_load(
                    "127.0.0.1", proxy.port, batches, window=1,
                    retry=RetryPolicy(
                        max_retries=10, base_backoff=0.02,
                        max_backoff=0.2, seed=3,
                    ),
                    timeout=0.3,
                    on_verdicts=lambda i, v: journal.__setitem__(i, v.copy()),
                )
                assert sum(proxy.proxy.faults.values()) > 0
        assert stats["errors"] == 0
        assert stats["clicks"] == identifiers.shape[0]      # zero lost
        assert thread.server.processed_clicks == identifiers.shape[0]  # zero doubled
        served = np.concatenate([journal[i] for i in range(len(batches))])
        assert (served == _offline(identifiers)).all()

    def test_retarget_carries_a_client_across_a_server_restart(self, tmp_path):
        identifiers = _stream(count=2_000)
        chunks = np.array_split(identifiers, 8)
        config = ServeConfig(checkpoint_dir=tmp_path / "ckpt")
        policy = RetryPolicy(
            max_retries=10, base_backoff=0.02, max_backoff=0.2, seed=2
        )
        first = ServerThread(create_detector(TBF_SPEC), config).start()
        proxy = ProxyThread(first.port).start()
        served = []
        try:
            client = ServeClient(
                "127.0.0.1", proxy.port, timeout=1.0, retry=policy
            )
            try:
                for chunk in chunks[:4]:
                    served.append(client.send(chunk))
                # The server "process" is replaced; only the proxy learns
                # the new address — the client just sees a flaky network.
                first.stop()
                replacement = ServerThread(
                    create_detector(TBF_SPEC), config
                ).start()
                proxy.retarget(replacement.port)
                try:
                    for chunk in chunks[4:]:
                        served.append(client.send(chunk))
                finally:
                    client.close()
                    replacement.stop()
            except BaseException:
                client.close()
                raise
        finally:
            proxy.stop()
        assert replacement.server.processed_clicks == identifiers.shape[0]
        assert (np.concatenate(served) == _offline(identifiers)).all()


class TestSoak:
    def test_soak_reconciles_exactly_once(self, tmp_path):
        report = run_soak(
            SoakConfig(clicks=12_000, batch=256, drain_after=0.3, seed=7),
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert report.ok, report.summary()
        assert report.total_clicks == 12_000
        assert report.lost_clicks == 0
        assert report.double_applied_clicks == 0
        assert report.bit_identical
        # The schedule actually hurt something — a soak that injected
        # nothing proves nothing.
        assert sum(report.proxy_faults.values()) > 0
        assert report.watchdog_restarts >= 1
        assert report.checkpoint_failures >= 1

    def test_soak_is_reproducible(self, tmp_path):
        config = SoakConfig(
            clicks=4_000, batch=256, drain_after=None,
            engine_fail_group=None, engine_stall_group=None,
            fail_first_checkpoint=False, seed=13,
        )
        first = run_soak(config, checkpoint_dir=tmp_path / "a")
        second = run_soak(config, checkpoint_dir=tmp_path / "b")
        assert first.ok and second.ok
        assert first.proxy_faults == second.proxy_faults
