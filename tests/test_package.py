"""Package-level integrity: exports resolve, protocols are satisfied."""

import importlib

import pytest

import repro
from repro.types import DuplicateDetector, TimestampedDuplicateDetector

SUBPACKAGES = [
    "repro.hashing",
    "repro.bitset",
    "repro.bloom",
    "repro.windows",
    "repro.core",
    "repro.baselines",
    "repro.streams",
    "repro.adnet",
    "repro.detection",
    "repro.analysis",
    "repro.metrics",
    "repro.experiments",
]


def test_version_is_exposed():
    assert repro.__version__


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_count_based_detectors_satisfy_protocol():
    from repro.baselines import (
        ExactDetector,
        LandmarkBloomDetector,
        MetwallyCBFDetector,
        NaiveSubwindowBloomDetector,
        StableBloomDetector,
    )
    from repro.core import GBFDetector, TBFDetector, TBFJumpingDetector

    detectors = [
        GBFDetector(16, 4, 256, 2),
        TBFDetector(16, 256, 2),
        TBFJumpingDetector(16, 4, 256, 2),
        ExactDetector.sliding(16),
        LandmarkBloomDetector(16, 256, 2),
        NaiveSubwindowBloomDetector(16, 4, 256, 2),
        MetwallyCBFDetector(16, 4, 256, 2),
        StableBloomDetector(256, 2),
    ]
    for detector in detectors:
        assert isinstance(detector, DuplicateDetector), type(detector).__name__
        # The protocol in action: process then query.
        assert detector.process(1) is False
        assert isinstance(detector.query(1), bool)
        assert detector.memory_bits > 0


def test_time_based_detectors_satisfy_protocol():
    from repro.baselines import TimeBasedExactDetector
    from repro.core import TimeBasedGBFDetector, TimeBasedTBFDetector
    from repro.windows import TimeBasedSlidingWindow

    detectors = [
        TimeBasedGBFDetector(8.0, 4, 256, 2),
        TimeBasedTBFDetector(8.0, 8, 256, 2),
        TimeBasedExactDetector(TimeBasedSlidingWindow(8.0)),
    ]
    for detector in detectors:
        assert isinstance(detector, TimestampedDuplicateDetector), type(detector).__name__
        assert detector.process_at(1, 0.5) is False
        assert detector.memory_bits >= 0


def test_error_hierarchy():
    from repro.errors import (
        BudgetError,
        CapacityError,
        ConfigurationError,
        ReproError,
        StreamError,
    )

    for error_cls in (ConfigurationError, CapacityError, StreamError, BudgetError):
        assert issubclass(error_cls, ReproError)
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(CapacityError, RuntimeError)

    from repro.core import CheckpointError

    assert issubclass(CheckpointError, ReproError)
