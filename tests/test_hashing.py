"""Unit tests for the hash-family substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import (
    CarterWegmanFamily,
    DoubleHashingFamily,
    MultiplyShiftFamily,
    SplitMixFamily,
    TabulationFamily,
    derive_constants,
    make_family,
    precompute_indices,
    chunked,
)

ALL_FAMILIES = [
    CarterWegmanFamily,
    SplitMixFamily,
    TabulationFamily,
    DoubleHashingFamily,
]


@pytest.mark.parametrize("family_cls", ALL_FAMILIES)
def test_indices_in_range(family_cls):
    family = family_cls(5, 97, seed=3)
    for identifier in [0, 1, 2, 10**9, (1 << 64) - 1]:
        indices = family.indices(identifier)
        assert len(indices) == 5
        assert all(0 <= index < 97 for index in indices)


@pytest.mark.parametrize("family_cls", ALL_FAMILIES)
def test_deterministic_given_seed(family_cls):
    a = family_cls(4, 1024, seed=42)
    b = family_cls(4, 1024, seed=42)
    for identifier in range(100):
        assert a.indices(identifier) == b.indices(identifier)


@pytest.mark.parametrize("family_cls", ALL_FAMILIES)
def test_different_seeds_differ(family_cls):
    a = family_cls(4, 1 << 20, seed=1)
    b = family_cls(4, 1 << 20, seed=2)
    differing = sum(a.indices(i) != b.indices(i) for i in range(50))
    assert differing > 45


@pytest.mark.parametrize("family_cls", ALL_FAMILIES)
def test_batch_matches_scalar(family_cls):
    family = family_cls(6, 12345, seed=9)
    identifiers = np.array([0, 1, 7, 1 << 40, (1 << 64) - 3], dtype=np.uint64)
    batch = family.indices_batch(identifiers)
    assert batch.shape == (5, 6)
    for row, identifier in enumerate(identifiers):
        assert list(map(int, batch[row])) == family.indices(int(identifier))


def test_multiply_shift_matches_scalar_batch():
    family = MultiplyShiftFamily(4, 1 << 16, seed=5)
    identifiers = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
    batch = family.indices_batch(identifiers)
    for row in (0, 500, 999):
        assert list(map(int, batch[row])) == family.indices(int(identifiers[row]))


def test_multiply_shift_requires_power_of_two():
    with pytest.raises(ConfigurationError):
        MultiplyShiftFamily(4, 1000, seed=0)


def test_multiply_shift_range_one():
    family = MultiplyShiftFamily(3, 1, seed=0)
    assert family.indices(123) == [0, 0, 0]


@pytest.mark.parametrize("family_cls", [SplitMixFamily, TabulationFamily])
def test_distribution_roughly_uniform(family_cls):
    buckets = 64
    family = family_cls(1, buckets, seed=7)
    counts = np.zeros(buckets)
    samples = 64_000
    for index in map(int, family.indices_batch(np.arange(samples, dtype=np.uint64)).ravel()):
        counts[index] += 1
    expected = samples / buckets
    chi_square = float(((counts - expected) ** 2 / expected).sum())
    # 63 dof; mean 63, std ~11. Anything under 150 is comfortably uniform.
    assert chi_square < 150


def test_double_hashing_distinct_probes():
    family = DoubleHashingFamily(8, 101, seed=3)
    indices = family.indices(42)
    # Probes follow an arithmetic progression with nonzero step in a
    # prime-size table, hence all distinct.
    assert len(set(indices)) == 8


def test_double_hashing_even_range_odd_step():
    family = DoubleHashingFamily(4, 100, seed=3)
    for identifier in range(200):
        indices = family.indices(identifier)
        step = (indices[1] - indices[0]) % 100
        assert step % 2 == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        SplitMixFamily(0, 10)
    with pytest.raises(ConfigurationError):
        SplitMixFamily(3, 0)


def test_derive_constants_nonzero_and_stable():
    constants = derive_constants(99, 16)
    assert len(constants) == 16
    assert all(c != 0 for c in constants)
    assert constants == derive_constants(99, 16)


def test_make_family_by_name():
    assert isinstance(make_family(3, 64, kind="splitmix"), SplitMixFamily)
    assert isinstance(make_family(3, 64, kind="carter-wegman"), CarterWegmanFamily)
    assert isinstance(make_family(3, 64, kind="tabulation"), TabulationFamily)
    assert isinstance(make_family(3, 64, kind="multiply-shift"), MultiplyShiftFamily)
    assert isinstance(make_family(3, 64, kind="double"), DoubleHashingFamily)
    with pytest.raises(ValueError):
        make_family(3, 64, kind="nope")


def test_precompute_indices_matches_family():
    family = SplitMixFamily(5, 999, seed=1)
    identifiers = [3, 1 << 50, 17]
    table = precompute_indices(family, identifiers)
    for row, identifier in enumerate(identifiers):
        assert list(map(int, table[row])) == family.indices(identifier)


def test_chunked_covers_everything():
    array = np.arange(10)
    chunks = list(chunked(array, 3))
    assert [len(c) for c in chunks] == [3, 3, 3, 1]
    assert np.concatenate(chunks).tolist() == list(range(10))
    with pytest.raises(ValueError):
        list(chunked(array, 0))


def test_chunked_accepts_lazy_iterables():
    # Sequences (known length) and one-shot generators both chunk
    # without materializing the whole stream; arrays keep slicing.
    for source in (list(range(10)), iter(range(10)), (x for x in range(10))):
        chunks = list(chunked(source, 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert all(c.dtype == np.uint64 for c in chunks)
        assert np.concatenate(chunks).tolist() == list(range(10))
    assert list(chunked([], 3)) == []
    assert list(chunked(iter([]), 3)) == []


def test_precompute_indices_from_generator_and_chunks():
    family = SplitMixFamily(4, 513, seed=2)
    identifiers = list(range(50, 120))
    reference = precompute_indices(family, np.array(identifiers, dtype=np.uint64))
    assert np.array_equal(
        precompute_indices(family, (x for x in identifiers)), reference
    )
    assert np.array_equal(
        precompute_indices(family, iter(identifiers), chunk_size=7), reference
    )
    empty = precompute_indices(family, iter([]), chunk_size=7)
    assert empty.shape == (0, 4)


def test_carter_wegman_handles_huge_identifiers():
    family = CarterWegmanFamily(2, 1000, seed=0)
    indices = family.indices((1 << 200) + 12345)
    assert all(0 <= index < 1000 for index in indices)
