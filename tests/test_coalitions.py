"""Tests for MinHash signatures and coalition detection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import CoalitionDetector
from repro.detection.coalitions import MinHashSignature
from repro.errors import ConfigurationError
from repro.hashing import derive_constants


def make_signature(items, num_hashes=128, seed=1):
    signature = MinHashSignature(derive_constants(seed, num_hashes))
    for item in items:
        signature.observe(item)
    return signature


class TestMinHash:
    def test_identical_sets_similarity_one(self):
        a = make_signature(range(50))
        b = make_signature(range(50))
        assert a.similarity(b) == 1.0

    def test_disjoint_sets_similarity_near_zero(self):
        a = make_signature(range(0, 100))
        b = make_signature(range(1000, 1100))
        assert a.similarity(b) < 0.1

    def test_estimates_jaccard(self):
        # |A ∩ B| / |A ∪ B| = 50 / 150.
        a = make_signature(range(0, 100), num_hashes=256)
        b = make_signature(range(50, 150), num_hashes=256)
        assert a.similarity(b) == pytest.approx(50 / 150, abs=0.08)

    def test_empty_signatures_not_similar(self):
        a = make_signature([])
        b = make_signature([])
        assert a.similarity(b) == 0.0

    def test_order_invariant(self):
        items = list(range(200))
        shuffled = items.copy()
        random.Random(3).shuffle(shuffled)
        assert make_signature(items).similarity(make_signature(shuffled)) == 1.0


@settings(max_examples=40, deadline=None)
@given(
    shared=st.sets(st.integers(0, 1000), min_size=1, max_size=40),
    only_a=st.sets(st.integers(2000, 3000), max_size=40),
    only_b=st.sets(st.integers(4000, 5000), max_size=40),
)
def test_property_minhash_tracks_jaccard(shared, only_a, only_b):
    set_a = shared | only_a
    set_b = shared | only_b
    true_jaccard = len(set_a & set_b) / len(set_a | set_b)
    a = make_signature(set_a, num_hashes=256, seed=7)
    b = make_signature(set_b, num_hashes=256, seed=7)
    # 256 permutations: std <= 0.5/16 ~ 0.031; allow 5 sigma.
    assert a.similarity(b) == pytest.approx(true_jaccard, abs=0.16)


class TestCoalitionDetector:
    def _feed_coalition(self, detector, sources, ads, clicks_each, rng):
        for source in sources:
            for _ in range(clicks_each):
                detector.observe(source, rng.choice(ads))

    def test_finds_planted_coalition(self):
        rng = random.Random(5)
        detector = CoalitionDetector(num_hashes=128, max_sources=256, min_clicks=10, seed=1)
        # Coalition: 4 sources sharing the same 3 target ads.
        coalition_sources = [900, 901, 902, 903]
        self._feed_coalition(detector, coalition_sources, [70, 71, 72], 40, rng)
        # Background: 60 honest sources over 500 ads.
        for source in range(60):
            for _ in range(30):
                detector.observe(source, rng.randrange(500))
        pairs = detector.similar_pairs(threshold=0.8)
        flagged = {pair.source_a for pair in pairs} | {pair.source_b for pair in pairs}
        assert set(coalition_sources) <= flagged
        honest_flagged = flagged - set(coalition_sources)
        assert len(honest_flagged) <= 3

    def test_coalitions_groups_components(self):
        rng = random.Random(7)
        detector = CoalitionDetector(num_hashes=128, max_sources=128, min_clicks=5, seed=2)
        self._feed_coalition(detector, [1, 2, 3], [10, 11], 25, rng)
        self._feed_coalition(detector, [8, 9], [500, 501, 502], 25, rng)
        groups = detector.coalitions(threshold=0.9)
        assert {1, 2, 3} in groups
        assert {8, 9} in groups

    def test_immature_sources_excluded(self):
        detector = CoalitionDetector(num_hashes=64, min_clicks=20, seed=3)
        detector.observe(1, 5)
        detector.observe(2, 5)
        assert detector.similar_pairs(threshold=0.1) == []

    def test_pruning_keeps_busy_sources(self):
        detector = CoalitionDetector(num_hashes=32, max_sources=16, min_clicks=1, seed=4)
        # Two chatty sources...
        for _ in range(100):
            detector.observe(7, 1)
            detector.observe(8, 1)
        # ...then a flood of one-click sources forcing pruning.
        for source in range(1000, 1200):
            detector.observe(source, 2)
        pairs = detector.similar_pairs(threshold=0.9)
        assert any({pair.source_a, pair.source_b} == {7, 8} for pair in pairs)

    def test_memory_bounded(self):
        detector = CoalitionDetector(num_hashes=32, max_sources=64, seed=5)
        for source in range(5000):
            detector.observe(source, source % 17)
        assert len(detector._signatures) <= 64
        assert detector.memory_bits <= 64 * 32 * 64 + detector._volume.memory_bits

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoalitionDetector(num_hashes=0)
        with pytest.raises(ConfigurationError):
            CoalitionDetector(max_sources=1)
        with pytest.raises(ConfigurationError):
            CoalitionDetector(min_clicks=0)
        with pytest.raises(ConfigurationError):
            CoalitionDetector().similar_pairs(threshold=0.0)

    def test_observe_click_helper(self):
        from repro.streams import Click

        detector = CoalitionDetector(num_hashes=16, min_clicks=1, seed=6)
        detector.observe_click(
            Click(0.0, source_ip=5, cookie=0, ad_id=9, publisher_id=0, advertiser_id=0)
        )
        assert 5 in detector._signatures
