"""Tests for the command-line interface (driven in-process via main())."""

import pytest

from repro.cli import main


def test_generate_then_detect(tmp_path, capsys):
    stream = tmp_path / "clicks.jsonl"
    assert main([
        "generate", str(stream),
        "--duration", "600", "--click-rate", "1.0", "--visitors", "50",
        "--botnet-bots", "10", "--bot-interval", "60", "--seed", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "fraudulent" in out
    assert stream.exists()

    assert main([
        "detect", str(stream),
        "--algorithm", "tbf", "--window", "4096", "--target-fp", "0.001",
        "--quality",
    ]) == 0
    out = capsys.readouterr().out
    assert "duplicates" in out
    assert "click quality" in out


def test_generate_csv_format(tmp_path, capsys):
    stream = tmp_path / "clicks.csv"
    assert main([
        "generate", str(stream), "--duration", "120", "--seed", "1",
    ]) == 0
    header = stream.read_text().splitlines()[0]
    assert header.startswith("timestamp,")


@pytest.mark.parametrize("algorithm", ["gbf", "tbf-jumping", "metwally-cbf", "exact"])
def test_detect_other_algorithms(tmp_path, capsys, algorithm):
    stream = tmp_path / "clicks.jsonl"
    main(["generate", str(stream), "--duration", "200", "--seed", "2"])
    capsys.readouterr()
    assert main([
        "detect", str(stream), "--algorithm", algorithm,
        "--window", "1024", "--memory-kib", "64",
    ]) == 0
    assert "duplicates" in capsys.readouterr().out


def test_detect_memory_budget_mode(tmp_path, capsys):
    stream = tmp_path / "clicks.jsonl"
    main(["generate", str(stream), "--duration", "200", "--seed", "5"])
    capsys.readouterr()
    assert main([
        "detect", str(stream), "--algorithm", "tbf",
        "--window", "2048", "--memory-kib", "128",
    ]) == 0


def test_plan_command(capsys):
    assert main([
        "plan", "--window", "1048576", "--target-fp", "0.001",
    ]) == 0
    out = capsys.readouterr().out
    assert "GBF" in out and "TBF" in out and "predicted FP" in out


def test_figures_command(capsys):
    assert main(["figures", "--which", "2b", "--scale", "2048"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2(b)" in out


def test_figures_theory_speed(capsys):
    # Figure 1 at a big scale stays fast enough for CI.
    assert main(["figures", "--which", "1", "--scale", "4096"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
