"""Cluster tier: ring placement, slices, scatter/gather, failover.

The load-bearing claim (docs/serving.md §"Cluster topology") is
bit-identity: the verdict stream a client collects through the router,
and every shard's checkpoint bytes on whichever node owns it, must be
indistinguishable from one single-process ``ShardedDetector`` fed the
same stream — including across a node SIGKILL + checkpoint restore and
a live N=2 → N=3 rebalance.
"""

import json
import socket
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    HashRing,
    LocalCluster,
    merge_verdict_payloads,
    read_manifest,
    rebalance_checkpoints,
    slice_shard_blobs,
    split_batch_records,
    split_sharded,
)
from repro.core.checkpoint import unpack_frame
from repro.detection.sharded import ShardedDetector, route_batch
from repro.errors import ConfigurationError, ProtocolError
from repro.resilience.supervisor import CheckpointStore
from repro.serve import ServeClient
from repro.serve.protocol import (
    FLAG_CHECKSUM,
    FLAG_TRACE,
    FRAME_BATCH,
    FRAME_HELLO_ACK,
    FRAME_OVERLOADED,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RETRY,
    FRAME_VERDICTS,
    HEADER,
    MAGIC,
    RECORD_DTYPE,
    TRACE_CONTEXT,
    checksum16,
    decode_header,
    decode_hello_payload,
    encode_batch,
    encode_frame,
    encode_hello,
)
from repro.serve.server import _CHECKPOINT_KIND

WINDOW = 1 << 10
SHARDS = 8
ENTRIES = 1 << 13
HASHES = 4


def _reference(seed: int = 1) -> ShardedDetector:
    return ShardedDetector._of_tbf(WINDOW, SHARDS, ENTRIES, HASHES, seed=seed)


def _stream(count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Universe sized to the window so duplicates are dense.
    return rng.integers(0, WINDOW, size=count, dtype=np.uint64)


def _recv_exactly(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        assert chunk, "peer closed early"
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _read_frame(sock):
    frame_type, request_id, length = decode_header(
        _recv_exactly(sock, HEADER.size), expect_response=True
    )
    return frame_type, request_id, _recv_exactly(sock, length)


def _newest_shard_blobs(directory):
    """Per-shard blobs from the newest serve checkpoint in ``directory``."""
    for _path, blob in CheckpointStore(Path(directory), keep=4).blobs():
        if blob is None:
            continue
        header, payload = unpack_frame(blob)
        if header.get("kind") != _CHECKPOINT_KIND:
            continue
        _total, _kind, blobs = slice_shard_blobs(bytes(payload))
        return blobs
    raise AssertionError(f"no readable checkpoint under {directory}")


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------

class TestHashRing:
    def test_deterministic_and_covering(self):
        names = ["node-0", "node-1", "node-2"]
        first = HashRing(names).assign(64)
        second = HashRing(names).assign(64)
        assert np.array_equal(first, second)
        assert first.shape == (64,)
        assert set(np.unique(first)) <= {0, 1, 2}
        # Every node owns something at this shard:node ratio.
        assert len(np.unique(first)) == 3

    def test_adding_a_node_only_moves_shards_to_it(self):
        """Consistent hashing's whole point: growth steals, never shuffles.

        A shard whose owner changes when ``node-3`` joins must have
        moved *to* ``node-3``; no shard migrates between two old nodes.
        """
        old = HashRing(["node-0", "node-1", "node-2"]).assign(256)
        new = HashRing(["node-0", "node-1", "node-2", "node-3"]).assign(256)
        moved = np.flatnonzero(old != new)
        assert moved.size > 0                      # the new node gets work
        assert set(new[moved].tolist()) == {3}     # and only it gains any
        assert moved.size < 256                    # most shards stay put

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            HashRing([])
        with pytest.raises(ConfigurationError):
            HashRing(["a", "a"])


# ----------------------------------------------------------------------
# Slices
# ----------------------------------------------------------------------

class TestClusterSlice:
    def test_slices_bit_identical_to_reference(self):
        identifiers = _stream(6_000, seed=3)
        reference = _reference()
        expected = reference.process_batch(identifiers)

        assignment = HashRing(["node-0", "node-1"]).assign(SHARDS)
        slices = split_sharded(_reference(), assignment, 2)
        node_of = assignment[route_batch(identifiers, SHARDS)]
        actual = np.empty(identifiers.shape[0], dtype=bool)
        for node, piece in enumerate(slices):
            positions = np.flatnonzero(node_of == node)
            actual[positions] = piece.process_batch(identifiers[positions])
        assert np.array_equal(actual, expected)
        for node, piece in enumerate(slices):
            for shard in piece.owned:
                assert piece.checkpoint_shard(shard) == (
                    reference.checkpoint_shard(shard)
                )

    def test_misrouted_identifier_refused(self):
        assignment = HashRing(["node-0", "node-1"]).assign(SHARDS)
        slices = split_sharded(_reference(), assignment, 2)
        # Find an identifier owned by node 1 and feed it to node 0.
        node_of = assignment[route_batch(np.arange(64, dtype=np.uint64), SHARDS)]
        stray = int(np.flatnonzero(node_of == 1)[0])
        with pytest.raises(ConfigurationError, match="owning only"):
            slices[0].process_batch(np.array([stray], dtype=np.uint64))

    def test_checkpoint_roundtrip_preserves_shard_bytes(self):
        assignment = HashRing(["node-0", "node-1"]).assign(SHARDS)
        slices = split_sharded(_reference(), assignment, 2)
        slices[0].process_batch(
            np.array(
                [s for s in range(200) if assignment[
                    route_batch(np.array([s], dtype=np.uint64), SHARDS)[0]
                ] == 0],
                dtype=np.uint64,
            )
        )
        blob = slices[0].checkpoint_state()
        total, kind, shard_blobs = slice_shard_blobs(blob)
        assert total == SHARDS
        assert kind == "cluster-slice"
        assert set(shard_blobs) == set(slices[0].owned)
        for shard, raw in shard_blobs.items():
            assert raw == slices[0].checkpoint_shard(shard)


# ----------------------------------------------------------------------
# Scatter/gather, property-tested
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(st.integers(0, 2**64 - 1), min_size=0, max_size=200),
    nodes=st.integers(1, 8),
    shards=st.integers(1, 16),
)
def test_scatter_gather_roundtrip(ids, nodes, shards):
    """Splitting a BATCH payload into per-node sub-frames and gathering
    the responses reproduces the verdict bytes of an unsplit pass, for
    arbitrary partition counts."""
    records = np.zeros(len(ids), dtype=RECORD_DTYPE)
    records["identifier"] = np.array(ids, dtype=np.uint64)
    payload = records.tobytes()
    assignment = HashRing([f"node-{i}" for i in range(nodes)]).assign(shards)

    parts = split_batch_records(payload, shards, assignment)
    # The positions partition the batch exactly.
    positions = (
        np.concatenate([p for _node, p, _sub in parts])
        if parts else np.empty(0, dtype=np.int64)
    )
    assert np.array_equal(np.sort(positions), np.arange(len(ids)))
    # Every sub-frame's records actually route to its node.
    for node, _pos, sub in parts:
        sub_ids = np.frombuffer(sub, dtype=RECORD_DTYPE)["identifier"]
        assert np.all(assignment[route_batch(sub_ids, shards)] == node)

    def verdicts_for(raw: bytes) -> bytes:
        arr = np.frombuffer(raw, dtype=RECORD_DTYPE)["identifier"]
        return (arr & np.uint64(0xFF)).astype(np.uint8).tobytes()

    merged = merge_verdict_payloads(
        len(ids), [(pos, verdicts_for(sub)) for _node, pos, sub in parts]
    )
    assert merged == verdicts_for(payload)


def test_merge_rejects_miscounted_parts():
    records = np.zeros(4, dtype=RECORD_DTYPE).tobytes()
    parts = split_batch_records(records, 4, np.zeros(4, dtype=np.int64))
    (_node, positions, _sub), = parts
    with pytest.raises(ProtocolError, match="verdicts"):
        merge_verdict_payloads(4, [(positions, b"\x00" * 3)])
    with pytest.raises(ProtocolError, match="gathered"):
        merge_verdict_payloads(5, [(positions, b"\x00" * 4)])


# ----------------------------------------------------------------------
# Live router: protocol surface
# ----------------------------------------------------------------------

class TestRouterProtocol:
    def _cluster(self, state, nodes=2, config=None):
        return LocalCluster(_reference, nodes, state, config=config)

    def test_flag_combinations_round_trip(self):
        """FLAG_TRACE x FLAG_CHECKSUM x HELLO through the router: every
        combination yields the same verdict bytes as the reference."""
        reference = _reference()
        with tempfile.TemporaryDirectory() as state:
            with self._cluster(state) as cluster:
                sock = socket.create_connection(
                    ("127.0.0.1", cluster.port), timeout=10
                )
                try:
                    sock.sendall(MAGIC)
                    sock.sendall(encode_hello(0, client_id=77))
                    frame_type, request_id, payload = _read_frame(sock)
                    assert frame_type == FRAME_HELLO_ACK
                    assert decode_hello_payload(payload) == 0  # fresh floor
                    for seq, (checksum, trace) in enumerate(
                        [(False, False), (True, False),
                         (False, True), (True, True)],
                        start=1,
                    ):
                        identifiers = _stream(500, seed=40 + seq)
                        expected = reference.process_batch(identifiers)
                        records = np.zeros(500, dtype=RECORD_DTYPE)
                        records["identifier"] = identifiers
                        body = records.tobytes()
                        flags = 0
                        if trace:
                            body = TRACE_CONTEXT.pack(seq, seq + 1) + body
                            flags |= FLAG_TRACE
                        reserved = 0
                        if checksum:
                            flags |= FLAG_CHECKSUM
                            reserved = checksum16(body)
                        sock.sendall(
                            encode_frame(
                                FRAME_BATCH, seq, body,
                                flags=flags, reserved=reserved,
                            )
                        )
                        frame_type, request_id, payload = _read_frame(sock)
                        assert frame_type == FRAME_VERDICTS, (checksum, trace)
                        assert request_id == seq
                        assert np.array_equal(
                            np.frombuffer(payload, dtype=np.uint8).astype(bool),
                            expected,
                        ), (checksum, trace)
                finally:
                    sock.close()

    def test_ping_empty_batch_and_corrupt_checksum(self):
        with tempfile.TemporaryDirectory() as state:
            with self._cluster(state) as cluster:
                sock = socket.create_connection(
                    ("127.0.0.1", cluster.port), timeout=10
                )
                try:
                    sock.sendall(MAGIC)
                    sock.sendall(encode_frame(FRAME_PING, 5, b""))
                    frame_type, request_id, _payload = _read_frame(sock)
                    assert (frame_type, request_id) == (FRAME_PONG, 5)

                    sock.sendall(
                        encode_batch(6, np.empty(0, dtype=np.uint64))
                    )
                    frame_type, request_id, payload = _read_frame(sock)
                    assert (frame_type, request_id) == (FRAME_VERDICTS, 6)
                    assert payload == b""

                    # Valid records, deliberately wrong checksum: the
                    # router must refuse with RETRY before slicing.
                    records = np.zeros(4, dtype=RECORD_DTYPE).tobytes()
                    sock.sendall(
                        encode_frame(
                            FRAME_BATCH, 7, records,
                            flags=FLAG_CHECKSUM,
                            reserved=checksum16(records) ^ 0xFFFF,
                        )
                    )
                    frame_type, request_id, payload = _read_frame(sock)
                    assert (frame_type, request_id) == (FRAME_RETRY, 7)
                    assert b"damaged" in payload
                finally:
                    sock.close()

    def test_jsonl_connection_told_to_use_binary(self):
        with tempfile.TemporaryDirectory() as state:
            with self._cluster(state) as cluster:
                sock = socket.create_connection(
                    ("127.0.0.1", cluster.port), timeout=10
                )
                try:
                    handle = sock.makefile("rb")
                    sock.sendall(b'{"id": 1, "clicks": [1, 2]}\n')
                    response = json.loads(handle.readline())
                    assert "binary RPK1" in response["error"]
                finally:
                    sock.close()

    def test_router_admission_refuses_overload(self):
        config = ClusterConfig(total_shards=SHARDS, max_inflight_bytes=1)
        with tempfile.TemporaryDirectory() as state:
            with self._cluster(state, config=config) as cluster:
                sock = socket.create_connection(
                    ("127.0.0.1", cluster.port), timeout=10
                )
                try:
                    sock.sendall(MAGIC)
                    sock.sendall(encode_batch(9, _stream(16, seed=2)))
                    frame_type, request_id, payload = _read_frame(sock)
                    assert (frame_type, request_id) == (FRAME_OVERLOADED, 9)
                    assert b"inflight" in payload
                finally:
                    sock.close()


# ----------------------------------------------------------------------
# The tentpole property: failover + rebalance keep bit-identity
# ----------------------------------------------------------------------

@settings(max_examples=2, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_cluster_failover_and_rebalance_bit_identical(seed):
    """Stream → checkpoint barrier → node SIGKILL + restore → more
    stream → live N=2 → N=3 rebalance → more stream → drain.

    Throughout, the collected verdicts must equal a single-process
    ``ShardedDetector``'s on the same stream, and after the drain every
    global shard's checkpoint bytes on whichever node owns it must
    equal ``reference.checkpoint_shard(shard)``.
    """
    identifiers = _stream(12_000, seed=seed)
    reference = _reference()
    batch = 1_000

    with tempfile.TemporaryDirectory() as state:
        cluster = LocalCluster(_reference, 2, state).start()
        try:
            with ServeClient(
                "127.0.0.1", cluster.port, client_id=101
            ) as client:
                def feed(start, stop):
                    for offset in range(start, stop, batch):
                        chunk = identifiers[offset : offset + batch]
                        client.submit(chunk)
                        got = client.collect()
                        expected = reference.process_batch(chunk)
                        assert np.array_equal(got, expected), offset

                feed(0, 3_000)
                cluster.checkpoint()
                feed(3_000, 6_000)          # journaled past the barrier
                cluster.kill_node(1)        # SIGKILL-equivalent
                cluster.restore_node(1)     # journal replay rolls forward
                feed(6_000, 9_000)
                cluster.rebalance(3)        # live resize by byte surgery
                feed(9_000, 12_000)
            manifest = cluster.drain()
        finally:
            cluster.__exit__(None, None, None)

        assert manifest["totals"]["clicks"] == 12_000
        assert len(manifest["nodes"]) == 3
        shard_blobs = {}
        for record in manifest["nodes"]:
            shard_blobs.update(_newest_shard_blobs(record["checkpoint_dir"]))
        assert set(shard_blobs) == set(range(SHARDS))
        for shard in range(SHARDS):
            assert shard_blobs[shard] == reference.checkpoint_shard(shard), shard


def test_offline_rebalance_reshapes_a_drained_cluster():
    """Drain at N=2, ``rebalance_checkpoints`` to N=3 offline, boot the
    resized fleet on the same state dir — state and parity survive."""
    identifiers = _stream(6_000, seed=9)
    reference = _reference()

    with tempfile.TemporaryDirectory() as state:
        with LocalCluster(_reference, 2, state) as cluster:
            with ServeClient("127.0.0.1", cluster.port) as client:
                client.submit(identifiers[:3_000])
                assert np.array_equal(
                    client.collect(),
                    reference.process_batch(identifiers[:3_000]),
                )

        manifest = rebalance_checkpoints(state, 3)
        assert len(manifest["nodes"]) == 3
        assert read_manifest(state)["rebalanced_from"] == 2

        with LocalCluster(_reference, 3, state) as cluster:
            with ServeClient("127.0.0.1", cluster.port) as client:
                client.submit(identifiers[3_000:])
                assert np.array_equal(
                    client.collect(),
                    reference.process_batch(identifiers[3_000:]),
                )
