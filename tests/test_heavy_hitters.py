"""Tests for the Space-Saving summary and the skew monitor, including
the detection-boundary story: identifier rotation beats dedup but not
skew monitoring."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import SkewMonitor, SpaceSaving
from repro.errors import ConfigurationError
from repro.streams import RotatingIdentityCampaign, ZipfSampler


class TestSpaceSaving:
    def test_small_streams_exact(self):
        summary = SpaceSaving(capacity=10)
        for element in [1, 2, 1, 3, 1, 2]:
            summary.observe(element)
        assert summary.count(1) == 3
        assert summary.count(2) == 2
        assert summary.count(3) == 1
        assert summary.count(99) == 0
        assert summary.min_count == 0  # not yet full: all counts exact

    def test_overestimate_bounded_by_min(self):
        summary = SpaceSaving(capacity=8)
        rng = random.Random(3)
        truth = Counter()
        for _ in range(5000):
            element = rng.randrange(100)
            truth[element] += 1
            summary.observe(element)
        for hitter in summary.top(8):
            assert hitter.count >= truth[hitter.element]
            assert hitter.count - truth[hitter.element] <= hitter.error
            assert hitter.guaranteed_count <= truth[hitter.element]

    def test_true_heavy_hitters_never_dismissed(self):
        # Guarantee: frequency > n/capacity => monitored.
        capacity = 20
        summary = SpaceSaving(capacity=capacity)
        rng = random.Random(7)
        stream = []
        for _ in range(8000):
            # Elements 0 and 1 are genuinely heavy (~20% each).
            roll = rng.random()
            if roll < 0.2:
                element = 0
            elif roll < 0.4:
                element = 1
            else:
                element = rng.randrange(100, 5000)
            stream.append(element)
            summary.observe(element)
        monitored = {hitter.element for hitter in summary.top(capacity)}
        assert 0 in monitored and 1 in monitored
        hitters = {h.element for h in summary.heavy_hitters(0.1)}
        assert {0, 1} <= hitters

    def test_zipf_top_ranks_recovered(self):
        sampler = ZipfSampler(1000, exponent=1.3, seed=5)
        summary = SpaceSaving(capacity=64)
        for element in sampler.sample(50_000):
            summary.observe(int(element))
        top_reported = [hitter.element for hitter in summary.top(5)]
        assert set(top_reported) <= set(range(10))
        assert 0 in top_reported  # rank 0 dominates a 1.3-skewed stream

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(0)
        summary = SpaceSaving(4)
        with pytest.raises(ConfigurationError):
            summary.heavy_hitters(0.0)

    def test_memory_bounded_by_capacity(self):
        summary = SpaceSaving(capacity=32)
        for element in range(100_000):
            summary.observe(element)  # all distinct: constant churn
        assert len(summary._counters) == 32
        assert summary.memory_bits == 32 * 128


@settings(max_examples=60, deadline=None)
@given(
    stream=st.lists(st.integers(0, 30), min_size=1, max_size=500),
    capacity=st.integers(1, 40),
)
def test_property_overestimate_and_no_dismissal(stream, capacity):
    summary = SpaceSaving(capacity)
    truth = Counter()
    for element in stream:
        truth[element] += 1
        summary.observe(element)
    floor = len(stream) / capacity
    monitored = {hitter.element for hitter in summary.top(capacity)}
    for element, frequency in truth.items():
        if frequency > floor:
            assert element in monitored
    for hitter in summary.top(capacity):
        assert truth[hitter.element] <= hitter.count
        assert hitter.count - hitter.error <= truth[hitter.element]


class TestDetectionBoundary:
    def test_rotation_beats_dedup_but_not_skew(self):
        # The honest statement of the paper's scope: dedup bounds
        # per-identity billing; rotation evades it; skew monitoring
        # catches the target ad anyway.
        from repro.core import TBFDetector
        from repro.streams.click import IdentifierScheme

        campaign = RotatingIdentityCampaign(
            ad_ids=[7], publisher_id=0, advertiser_id=0,
            pool_size=500, rate=5.0, seed=2,
        )
        attack_clicks = campaign.generate(0.0, 1000.0)
        assert len(attack_clicks) > 3000

        detector = TBFDetector(256, 1 << 15, 6, seed=1)
        monitor = SkewMonitor(capacity=64)
        rejected = 0
        for click in attack_clicks:
            identifier = IdentifierScheme.IP_COOKIE_AD.identify(click)
            if detector.process(identifier):
                rejected += 1
            monitor.observe(click)
        # Pool (500) >> window (256): identities never repeat in-window,
        # dedup rejects (almost) nothing...
        assert rejected < len(attack_clicks) * 0.02
        # ...but the hammered ad is a glaring heavy hitter.
        suspicious = {hitter.element for hitter in monitor.suspicious_ads(0.5)}
        assert 7 in suspicious

    def test_skew_monitor_tracks_three_dimensions(self):
        from repro.streams import Click

        monitor = SkewMonitor(capacity=16)
        for step in range(200):
            monitor.observe(Click(
                timestamp=float(step), source_ip=step % 3, cookie=0,
                ad_id=5, publisher_id=1, advertiser_id=0,
            ))
        assert monitor.by_ad.count(5) == 200
        assert monitor.by_publisher.count(1) == 200
        assert monitor.suspicious_sources(0.2)
        assert monitor.memory_bits > 0
