"""Unit tests for the decaying-window models (§1.2 semantics)."""

import pytest

from repro.errors import ConfigurationError, StreamError
from repro.windows import (
    JumpingWindow,
    LandmarkWindow,
    SlidingWindow,
    TimeBasedJumpingWindow,
    TimeBasedLandmarkWindow,
    TimeBasedSlidingWindow,
)


class TestSlidingWindow:
    def test_contains_exactly_last_n(self):
        window = SlidingWindow(4)
        for _ in range(10):
            window.observe()
        # position is 9; active positions are 6..9
        assert not window.is_active(5)
        assert window.is_active(6)
        assert window.is_active(9)

    def test_expiry_position(self):
        window = SlidingWindow(4)
        assert window.expiry_position(10) == 14

    def test_active_span_grows_then_caps(self):
        window = SlidingWindow(3)
        assert window.active_span() == 0
        window.observe()
        assert window.active_span() == 1
        for _ in range(5):
            window.observe()
        assert window.active_span() == 3

    def test_future_and_negative_positions_inactive(self):
        window = SlidingWindow(4)
        window.observe()
        assert not window.is_active(-1)
        assert not window.is_active(5)

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0)


class TestJumpingWindow:
    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            JumpingWindow(10, 3)

    def test_blocks_expire_together(self):
        window = JumpingWindow(8, 4)  # sub-windows of 2
        for _ in range(9):
            window.observe()  # position 8 -> sub-window 4
        # Sub-window 0 (positions 0-1) expired when sub-window 4 began.
        assert not window.is_active(0)
        assert not window.is_active(1)
        assert window.is_active(2)
        assert window.is_active(8)

    def test_expiry_position_block_aligned(self):
        window = JumpingWindow(8, 4)
        assert window.expiry_position(0) == 8
        assert window.expiry_position(1) == 8
        assert window.expiry_position(2) == 10

    def test_boundary_detection(self):
        window = JumpingWindow(8, 4)
        boundaries = []
        for _ in range(9):
            window.observe()
            boundaries.append(window.at_subwindow_boundary())
        assert boundaries == [True, False, True, False, True, False, True, False, True]

    def test_active_span_varies_between_limits(self):
        window = JumpingWindow(12, 3)  # blocks of 4
        spans = []
        for _ in range(24):
            window.observe()
            spans.append(window.active_span())
        assert max(spans) == 12
        assert min(spans[12:]) == 9  # (Q-1)*block + 1

    def test_q_equal_one_is_landmark_like(self):
        window = JumpingWindow(4, 1)
        for _ in range(5):
            window.observe()
        assert not window.is_active(3)
        assert window.is_active(4)


class TestLandmarkWindow:
    def test_epoch_expiry(self):
        window = LandmarkWindow(5)
        for _ in range(7):
            window.observe()
        assert not window.is_active(4)   # previous epoch
        assert window.is_active(5)
        assert window.is_active(6)

    def test_epoch_boundary_flag(self):
        window = LandmarkWindow(3)
        flags = []
        for _ in range(7):
            window.observe()
            flags.append(window.at_epoch_boundary())
        assert flags == [True, False, False, True, False, False, True]


class TestTimeBasedWindows:
    def test_sliding_half_open_expiry(self):
        window = TimeBasedSlidingWindow(10.0)
        window.observe_at(100.0)
        assert window.is_active(95.0)
        assert window.is_active(90.0 + 1e-9)
        assert not window.is_active(90.0)  # exactly duration old: expired

    def test_timestamps_must_be_monotone(self):
        window = TimeBasedSlidingWindow(10.0)
        window.observe_at(5.0)
        with pytest.raises(StreamError):
            window.observe_at(4.0)

    def test_jumping_blocks(self):
        window = TimeBasedJumpingWindow(10.0, 5)  # 2-unit blocks
        window.observe_at(11.0)  # block 5; active blocks 1..5
        assert not window.is_active(1.9)   # block 0
        assert window.is_active(2.1)       # block 1
        assert window.is_active(11.0)

    def test_landmark_epochs(self):
        window = TimeBasedLandmarkWindow(10.0)
        window.observe_at(25.0)  # epoch 2 = [20, 30)
        assert not window.is_active(19.0)
        assert window.is_active(21.0)

    def test_future_timestamps_inactive(self):
        window = TimeBasedSlidingWindow(10.0)
        window.observe_at(100.0)
        assert not window.is_active(101.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            TimeBasedSlidingWindow(0.0)
