"""Tests for the network click-ingest service (:mod:`repro.serve`).

Covers the coalescer contract, binary and JSONL round-trips with
offline verdict parity, admission-control backpressure, malformed-frame
dead-lettering, and drain-with-checkpoint restarts that lose no clicks.
"""

import socket
import time

import numpy as np
import pytest

from repro.detection import DetectorSpec, WindowSpec, create_detector
from repro.detection.pipeline import DetectionPipeline
from repro.errors import ConfigurationError, OverloadedError, ProtocolError
from repro.resilience import DeadLetterSink
from repro.serve import Coalescer, ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import (
    FRAME_BATCH,
    FRAME_ERROR,
    FRAME_VERDICTS,
    HEADER,
    MAGIC,
    decode_batch_payload,
    decode_header,
    encode_batch,
    encode_frame,
)
from repro.streams import IdentifierScheme
from repro.telemetry import TelemetrySession

TBF_SPEC = DetectorSpec(
    algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.01
)
TBF_TIME_SPEC = DetectorSpec(
    algorithm="tbf-time", window=WindowSpec("sliding", 4096),
    target_fp=0.01, duration=120.0, resolution=16,
)


def _stream(count=20_000, seed=5, universe=2_000):
    rng = np.random.default_rng(seed)
    identifiers = rng.integers(0, universe, size=count, dtype=np.uint64)
    timestamps = np.cumsum(rng.exponential(0.01, size=count))
    return identifiers, timestamps


def _offline(spec, identifiers, timestamps=None):
    pipeline = DetectionPipeline(create_detector(spec), score_sources=False)
    return pipeline.run_identified_batch(identifiers, timestamps)


class TestCoalescer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Coalescer(max_batch=0)
        with pytest.raises(ConfigurationError):
            Coalescer(max_delay=-1.0)

    def test_size_bound_emits_full_group(self):
        c = Coalescer(max_batch=100, max_delay=10.0, clock=lambda: 0.0)
        assert c.add("a", 40) is None
        assert c.add("b", 40) is None
        assert c.add("c", 40) == ["a", "b", "c"]
        assert c.pending_items == 0 and c.pending_clicks == 0

    def test_single_oversized_request_never_split(self):
        c = Coalescer(max_batch=100, max_delay=10.0, clock=lambda: 0.0)
        assert c.add("big", 1000) == ["big"]

    def test_deadline_flushes_short_group(self):
        now = [0.0]
        c = Coalescer(max_batch=1000, max_delay=0.5, clock=lambda: now[0])
        assert c.add("a", 1) is None
        assert c.poll() is None           # deadline not reached
        now[0] = 0.49
        assert c.poll() is None
        now[0] = 0.5
        assert c.poll() == ["a"]
        assert c.deadline is None         # empty again: no timeout needed

    def test_flush_matches_read_batches_contract(self):
        # Leftovers come out exactly as accumulated — never empty,
        # never padded — and an empty coalescer flushes nothing.
        c = Coalescer(max_batch=100, max_delay=10.0, clock=lambda: 0.0)
        assert c.flush() is None
        c.add("a", 7)
        c.add("b", 0)                     # zero-click items still owe a reply
        assert c.flush() == ["a", "b"]
        assert c.flush() is None


class TestZeroCopyDecode:
    def test_decode_returns_views_over_the_payload(self):
        identifiers = np.arange(100, dtype=np.uint64) * 7
        timestamps = np.cumsum(np.full(100, 0.25))
        frame = encode_batch(3, identifiers, timestamps)
        payload = frame[HEADER.size :]
        got_ids, got_ts = decode_batch_payload(payload)
        assert np.array_equal(got_ids, identifiers)
        assert np.array_equal(got_ts, timestamps)
        # Zero-copy: both arrays are strided views over the wire bytes,
        # not fresh buffers — no per-record or per-array allocation.
        assert got_ids.base is not None and got_ts.base is not None
        assert got_ids.strides == (16,) and got_ts.strides == (16,)
        assert not got_ids.flags.writeable
        assert not got_ts.flags.writeable

    def test_views_survive_the_detector_round_trip(self):
        # The read-only strided views must drive the full batch path
        # (hashing, probe, insert) bit-identically to contiguous copies.
        identifiers, timestamps = _stream(2_000)
        frame = encode_batch(1, identifiers, timestamps)
        got_ids, got_ts = decode_batch_payload(frame[HEADER.size :])
        expected = _offline(TBF_TIME_SPEC, identifiers.copy(), timestamps.copy())
        got = _offline(TBF_TIME_SPEC, got_ids, got_ts)
        assert np.array_equal(expected, got)

    def test_empty_and_misaligned_payloads(self):
        got_ids, got_ts = decode_batch_payload(b"")
        assert got_ids.shape == (0,) and got_ts.shape == (0,)
        with pytest.raises(ProtocolError):
            decode_batch_payload(b"\x00" * 15)


class TestBinaryProtocolServing:
    def test_verdicts_match_offline_pipeline(self):
        identifiers, _ = _stream()
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                served = np.concatenate([
                    client.send(chunk)
                    for chunk in np.array_split(identifiers, 7)
                ])
        expected = _offline(TBF_SPEC, identifiers)
        assert (served == expected).all()

    def test_time_based_verdicts_match_offline_pipeline(self):
        identifiers, timestamps = _stream()
        with ServerThread(create_detector(TBF_TIME_SPEC)) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                served = np.concatenate([
                    client.send(ids, ts)
                    for ids, ts in zip(
                        np.array_split(identifiers, 7),
                        np.array_split(timestamps, 7),
                    )
                ])
        expected = _offline(TBF_TIME_SPEC, identifiers, timestamps)
        assert (served == expected).all()

    def test_pipelined_submits_return_in_request_order(self):
        identifiers, _ = _stream(count=8_000)
        chunks = np.array_split(identifiers, 16)
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                ids = [client.submit(chunk) for chunk in chunks]
                served = np.concatenate([client.collect(i) for i in ids])
        expected = _offline(TBF_SPEC, identifiers)
        assert (served == expected).all()

    def test_ping_and_empty_batch(self):
        with ServerThread(create_detector(TBF_SPEC)) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                assert client.ping()
                verdicts = client.send(np.empty(0, dtype=np.uint64))
                assert verdicts.shape == (0,)

    def test_processed_clicks_counts_served_stream(self):
        identifiers, _ = _stream(count=5_000)
        thread = ServerThread(create_detector(TBF_SPEC)).start()
        try:
            with ServeClient("127.0.0.1", thread.port) as client:
                client.send(identifiers)
        finally:
            thread.stop()
        assert thread.server.processed_clicks == 5_000


class TestJsonlServing:
    def test_jsonl_round_trip_matches_offline(self, tmp_path):
        from repro.adnet import TrafficProfile, demo_network

        network = demo_network(seed=4)
        clicks = network.run(
            duration=400.0, profile=TrafficProfile(click_rate=2.0, num_visitors=30)
        )
        scheme = IdentifierScheme.IP_COOKIE_AD
        with ServerThread(
            create_detector(TBF_SPEC), ServeConfig(scheme=scheme)
        ) as thread:
            import json

            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                from repro.streams.io import click_to_record

                half = len(clicks) // 2
                served = []
                for n, chunk in enumerate([clicks[:half], clicks[half:]]):
                    request = {
                        "id": n + 1,
                        "clicks": [click_to_record(c) for c in chunk],
                    }
                    sock.sendall((json.dumps(request) + "\n").encode())
                handle = sock.makefile("rb")
                for n in (1, 2):
                    response = json.loads(handle.readline())
                    assert response["id"] == n
                    served.extend(response["verdicts"])
            finally:
                sock.close()
        identifiers = scheme.identify_batch(clicks)
        expected = _offline(TBF_SPEC, identifiers)
        assert (np.array(served, dtype=bool) == expected).all()

    def test_jsonl_garbage_gets_error_and_connection_survives(self):
        sink = DeadLetterSink()
        with ServerThread(
            create_detector(TBF_SPEC), dead_letters=sink
        ) as thread:
            import json

            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                handle = sock.makefile("rb")
                sock.sendall(b'{"id": 1, "clicks": "not-a-list"}\n')
                assert "error" in json.loads(handle.readline())
                sock.sendall(b'{"id": 2, "ping": true}\n')
                assert json.loads(handle.readline())["pong"] is True
            finally:
                sock.close()
        assert sink.total == 1


class TestBackpressure:
    def test_overload_is_explicit_and_recoverable(self):
        identifiers, _ = _stream(count=3_000)
        batch = identifiers[:1_000]          # 16 kB on the wire
        config = ServeConfig(
            # Hold everything in the coalescer long enough for a second
            # submit to arrive while the first still owns its bytes.
            max_batch=1 << 30,
            max_delay=0.3,
            max_inflight_bytes=20_000,       # fits one batch, not two
        )
        with ServerThread(create_detector(TBF_SPEC), config) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                first = client.submit(batch)
                second = client.submit(identifiers[1_000:2_000])
                assert client.collect(first).shape == (1_000,)
                with pytest.raises(OverloadedError):
                    client.collect(second)
                # The refused batch was not processed: resubmitting is
                # the client's job, and now succeeds.
                verdicts = client.send(identifiers[1_000:2_000])
                assert verdicts.shape == (1_000,)
        assert thread.server.processed_clicks == 2_000

    def test_overloaded_counter_increments(self):
        session = TelemetrySession()
        config = ServeConfig(
            max_batch=1 << 30, max_delay=0.3, max_inflight_bytes=20_000
        )
        with ServerThread(
            create_detector(TBF_SPEC), config, telemetry=session
        ) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                first = client.submit(np.arange(1_000, dtype=np.uint64))
                second = client.submit(np.arange(1_000, dtype=np.uint64))
                client.collect(first)
                with pytest.raises(OverloadedError):
                    client.collect(second)
        counters = {
            entry["name"]: entry["value"]
            for entry in session.registry.snapshot()["counters"]
        }
        assert counters["repro_serve_overloaded_total"] == 1
        assert counters["repro_serve_clicks_total"] == 1_000


class TestMalformedFrames:
    def test_bad_payload_dead_lettered_connection_survives(self):
        sink = DeadLetterSink()
        identifiers, _ = _stream(count=1_000)
        with ServerThread(
            create_detector(TBF_SPEC), dead_letters=sink
        ) as thread:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                sock.sendall(MAGIC)
                # 17 payload bytes: not a multiple of the 16-byte record.
                sock.sendall(encode_frame(FRAME_BATCH, 1, b"\x00" * 17))
                header = _recv_exactly(sock, HEADER.size)
                frame_type, request_id, length = decode_header(
                    header, expect_response=True
                )
                reason = _recv_exactly(sock, length)
                assert frame_type == FRAME_ERROR
                assert request_id == 1
                assert b"record" in reason
                # Same connection still classifies good frames.
                sock.sendall(encode_batch(2, identifiers))
                frame_type, request_id, length = decode_header(
                    _recv_exactly(sock, HEADER.size), expect_response=True
                )
                payload = _recv_exactly(sock, length)
                assert frame_type == FRAME_VERDICTS
                assert request_id == 2
                assert length == identifiers.shape[0]
            finally:
                sock.close()
        assert sink.total == 1
        assert thread.server.processed_clicks == 1_000

    def test_unknown_frame_type_dead_lettered(self):
        sink = DeadLetterSink()
        with ServerThread(
            create_detector(TBF_SPEC), dead_letters=sink
        ) as thread:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                sock.sendall(MAGIC)
                sock.sendall(encode_frame(0x7F, 9, b"??"))
                frame_type, request_id, length = decode_header(
                    _recv_exactly(sock, HEADER.size), expect_response=True
                )
                _recv_exactly(sock, length)
                assert frame_type == FRAME_ERROR
                assert request_id == 9
            finally:
                sock.close()
        assert sink.counts.get("unknown frame type 0x7F") == 1

    def test_regressing_timestamps_rejected(self):
        with ServerThread(create_detector(TBF_TIME_SPEC)) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                with pytest.raises(ProtocolError, match="regress"):
                    client.send(
                        np.array([1, 2], dtype=np.uint64),
                        np.array([5.0, 1.0]),
                    )

    def test_oversized_jsonl_line_errors_and_closes(self):
        import json

        sink = DeadLetterSink()
        config = ServeConfig(max_frame_bytes=1024)
        with ServerThread(
            create_detector(TBF_SPEC), config, dead_letters=sink
        ) as thread:
            sock = socket.create_connection(("127.0.0.1", thread.port), timeout=10)
            try:
                handle = sock.makefile("rb")
                sock.sendall(b'{"id": 1, "clicks": [' + b" " * 5_000 + b"]}\n")
                response = json.loads(handle.readline())
                assert "error" in response
                assert handle.readline() == b""    # deliberate close
            finally:
                sock.close()
            # The server itself survives: a fresh connection classifies.
            with ServeClient("127.0.0.1", thread.port) as client:
                assert client.send(np.arange(10, dtype=np.uint64)).shape == (10,)
        assert sink.total == 1


class TestTimedMultiClient:
    """Cross-connection clock skew against a time-based detector."""

    def test_skewed_clients_are_merged_not_fatal(self):
        identifiers, timestamps = _stream(count=8_000)
        half = identifiers.shape[0] // 2
        # Client B's clock lags client A's by a few milliseconds —
        # ordinary NTP-grade skew, far inside the default tolerance.
        config = ServeConfig(max_batch=1 << 30, max_delay=0.05)
        with ServerThread(create_detector(TBF_TIME_SPEC), config) as thread:
            with ServeClient("127.0.0.1", thread.port) as a, \
                 ServeClient("127.0.0.1", thread.port) as b:
                served = 0
                for start in range(0, half, 500):
                    stop = start + 500
                    ra = a.submit(
                        identifiers[start:stop], timestamps[start:stop]
                    )
                    rb = b.submit(
                        identifiers[half + start : half + stop],
                        timestamps[start:stop] - 0.004,
                    )
                    served += int(a.collect(ra).shape[0])
                    served += int(b.collect(rb).shape[0])
        # Every click of both connections was classified — the engine
        # never died on the interleaved clocks.
        assert served == identifiers.shape[0]
        assert thread.server.processed_clicks == identifiers.shape[0]

    def test_single_connection_stays_bit_identical(self):
        # The merge/clamp machinery is the identity for one monotone
        # stream, pipelined submits included.
        identifiers, timestamps = _stream(count=12_000)
        with ServerThread(create_detector(TBF_TIME_SPEC)) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                ids = [
                    client.submit(chunk_i, chunk_t)
                    for chunk_i, chunk_t in zip(
                        np.array_split(identifiers, 24),
                        np.array_split(timestamps, 24),
                    )
                ]
                served = np.concatenate([client.collect(i) for i in ids])
        expected = _offline(TBF_TIME_SPEC, identifiers, timestamps)
        assert (served == expected).all()

    def test_stale_batch_refused_engine_survives(self):
        sink = DeadLetterSink()
        config = ServeConfig(skew_tolerance=0.5)
        with ServerThread(
            create_detector(TBF_TIME_SPEC), config, dead_letters=sink
        ) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                ids = np.arange(100, dtype=np.uint64)
                assert client.send(ids, np.full(100, 1000.0)).shape == (100,)
                # An hour behind the watermark: refused before touching
                # detector state, connection and engine both survive.
                with pytest.raises(ProtocolError, match="skew_tolerance"):
                    client.send(ids, np.full(100, 2.0))
                assert client.send(ids, np.full(100, 1001.0)).shape == (100,)
        # Only the two good batches advanced the detector.
        assert thread.server.processed_clicks == 200
        assert sink.total == 1


class TestDrainAndCheckpoint:
    def test_drain_checkpoint_restart_loses_nothing(self, tmp_path):
        identifiers, _ = _stream(count=30_000)
        half = identifiers.shape[0] // 2
        config = ServeConfig(checkpoint_dir=tmp_path / "ckpt")

        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            with ServeClient("127.0.0.1", thread.port) as client:
                first = np.concatenate([
                    client.send(chunk)
                    for chunk in np.array_split(identifiers[:half], 5)
                ])
        finally:
            thread.stop()
        assert thread.server.processed_clicks == half

        # A fresh process (fresh detector object) resumes the sketch.
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            assert thread.server.processed_clicks == half
            with ServeClient("127.0.0.1", thread.port) as client:
                second = np.concatenate([
                    client.send(chunk)
                    for chunk in np.array_split(identifiers[half:], 5)
                ])
        finally:
            thread.stop()
        assert thread.server.processed_clicks == identifiers.shape[0]

        served = np.concatenate([first, second])
        expected = _offline(TBF_SPEC, identifiers)
        # Zero lost, zero duplicated: the split-served stream classifies
        # exactly like one uninterrupted offline run.
        assert (served == expected).all()

    def test_drain_completes_when_client_vanishes_mid_pipeline(self):
        identifiers, _ = _stream(count=6_000)
        # Park everything in the coalescer so the responses are still
        # owed when the client disappears.
        config = ServeConfig(max_batch=1 << 30, max_delay=30.0)
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            sock = socket.create_connection(("127.0.0.1", thread.port))
            sock.sendall(MAGIC)
            for seq, chunk in enumerate(np.array_split(identifiers, 6)):
                sock.sendall(encode_batch(seq + 1, chunk))
            time.sleep(0.3)  # let the reader admit every batch
            sock.close()     # client gone; verdicts have nowhere to go
        finally:
            # Drain must flush, classify, and discard the undeliverable
            # responses — not hang on them or strand inflight budget.
            thread.stop(timeout=15.0)
        assert thread.server.processed_clicks == 6_000
        assert thread.server._inflight_bytes == 0

    def test_corrupt_latest_checkpoint_falls_back(self, tmp_path):
        identifiers, _ = _stream(count=4_000)
        config = ServeConfig(checkpoint_dir=tmp_path / "ckpt")
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            with ServeClient("127.0.0.1", thread.port) as client:
                client.send(identifiers)
        finally:
            thread.stop()
        store_dir = tmp_path / "ckpt"
        good = sorted(store_dir.glob("ckpt-*.rpk"))[-1]
        corrupt = store_dir / "ckpt-99999999.rpk"
        corrupt.write_bytes(good.read_bytes()[:-7])   # torn write
        thread = ServerThread(create_detector(TBF_SPEC), config).start()
        try:
            assert thread.server.processed_clicks == 4_000
        finally:
            thread.stop()


def _recv_exactly(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        assert chunk, "peer closed early"
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)
