"""Fuzz the fused numpy kernels against their scalar references.

Every kernel in :mod:`repro.core.kernels` replaces a Python loop on a
detector hot path under a bit-identity contract: mutated arrays must be
byte-for-byte what the loop would have produced, and returned tallies
must match the loop's operation accounting.  These tests state the
reference loop next to each kernel and drive both with hypothesis.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.lanes import LanePackedBitMatrix

SETTINGS = settings(max_examples=50, deadline=None)


# ----------------------------------------------------------------------
# Row reductions and shape helpers
# ----------------------------------------------------------------------

matrices = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.integers(min_value=1, max_value=8).flatmap(
        lambda k: st.lists(
            st.lists(st.booleans(), min_size=k, max_size=k),
            min_size=n,
            max_size=n,
        )
    )
)


@SETTINGS
@given(rows=matrices)
def test_row_reductions_match_numpy(rows):
    matrix = np.array(rows, dtype=bool)
    assert np.array_equal(kernels.row_all(matrix), matrix.all(axis=1))
    assert np.array_equal(kernels.row_any(matrix), matrix.any(axis=1))
    ints = matrix.astype(np.uint64) + 6
    assert np.array_equal(
        kernels.row_and(ints), np.bitwise_and.reduce(ints, axis=1)
    )


@SETTINGS
@given(
    n=st.integers(min_value=0, max_value=50),
    reps=st.integers(min_value=1, max_value=9),
)
def test_repeat_arange_matches_numpy(n, reps):
    pattern = kernels.repeat_arange(n, reps)
    assert np.array_equal(pattern, np.repeat(np.arange(n, dtype=np.int64), reps))
    assert not pattern.flags.writeable
    # Cached: the same shape must come back as the same object.
    assert kernels.repeat_arange(n, reps) is pattern


@SETTINGS
@given(
    period=st.integers(min_value=2, max_value=1000),
    now=st.integers(min_value=0, max_value=999),
    values=st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=60),
)
def test_wrapped_ages_matches_modulo(period, now, values):
    now = now % period
    array = np.array([v % period for v in values], dtype=np.int64)
    expected = (np.int64(now) - array) % period
    assert np.array_equal(kernels.wrapped_ages(now, array, period), expected)


# ----------------------------------------------------------------------
# Lane OR scatter
# ----------------------------------------------------------------------


def _reference_or(num_slots, num_lanes, slots, lane, word_bits=64):
    """Set the lane bit slot by slot via the scalar matrix API."""
    matrix = LanePackedBitMatrix(num_slots, num_lanes, word_bits=word_bits)
    for slot in slots:
        matrix.set_lane([int(slot)], lane)
    return matrix._words


@SETTINGS
@given(
    num_slots=st.integers(min_value=1, max_value=200),
    num_lanes=st.integers(min_value=1, max_value=9),
    lane=st.integers(min_value=0, max_value=8),
    slots=st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=80),
    use_tables=st.booleans(),
)
def test_or_lane_slots_matches_scalar(num_slots, num_lanes, lane, slots, use_tables):
    lane = lane % num_lanes
    slot_idx = np.array([s % num_slots for s in slots], dtype=np.int64)
    matrix = LanePackedBitMatrix(num_slots, num_lanes)
    tables = matrix._probe_tables() if use_tables else (None, None)
    kernels.or_lane_slots(
        matrix._words,
        slot_idx,
        matrix.slots_per_word,
        num_lanes,
        lane,
        slot_word=tables[0],
        slot_shift=tables[1],
    )
    expected = _reference_or(num_slots, num_lanes, slot_idx, lane)
    assert np.array_equal(matrix._words, expected)


def test_or_lane_slots_dense_and_sparse_strategies_agree():
    # A batch large enough to take the dense-accumulator branch and its
    # word-identical sparse replay (batch sliced below the threshold).
    rng = np.random.default_rng(3)
    num_slots, num_lanes, lane = 64, 4, 2
    slot_idx = rng.integers(0, num_slots, 4096, dtype=np.int64)
    dense = LanePackedBitMatrix(num_slots, num_lanes)
    kernels.or_lane_slots(dense._words, slot_idx, dense.slots_per_word, num_lanes, lane)
    sparse = LanePackedBitMatrix(num_slots, num_lanes)
    for start in range(0, slot_idx.size, 3):  # tiny slices -> class loop
        kernels.or_lane_slots(
            sparse._words,
            slot_idx[start : start + 3],
            sparse.slots_per_word,
            num_lanes,
            lane,
        )
    assert np.array_equal(dense._words, sparse._words)


# ----------------------------------------------------------------------
# TBF cursor cleaning
# ----------------------------------------------------------------------


@SETTINGS
@given(
    m=st.integers(min_value=1, max_value=80),
    cursor=st.integers(min_value=0, max_value=79),
    budget=st.integers(min_value=0, max_value=80),
    period=st.integers(min_value=4, max_value=64),
    span=st.integers(min_value=1, max_value=64),
    now=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_clean_cursor_sweep_matches_scalar(m, cursor, budget, period, span, now, seed):
    cursor = cursor % m
    budget = min(budget, m)
    span = min(span, period - 1)
    now = now % period
    empty = period  # sentinel outside [0, period)
    rng = np.random.default_rng(seed)
    entries = rng.integers(0, period + 1, m).astype(np.int64)  # includes empties

    expected = entries.copy()
    exp_cursor = cursor
    exp_writes = 0
    for _ in range(budget):
        value = int(expected[exp_cursor])
        if value != empty and (now - value) % period >= span:
            expected[exp_cursor] = empty
            exp_writes += 1
        exp_cursor = (exp_cursor + 1) % m

    got = entries.copy()
    new_cursor, writes = kernels.clean_cursor_sweep(
        got, cursor, budget, now, period, span, empty
    )
    assert np.array_equal(got, expected)
    assert new_cursor == exp_cursor
    assert writes == exp_writes


# ----------------------------------------------------------------------
# Fused lane-clearing sweeps
# ----------------------------------------------------------------------


def _random_matrix(num_slots, num_lanes, seed, word_bits=64):
    rng = np.random.default_rng(seed)
    matrix = LanePackedBitMatrix(num_slots, num_lanes, word_bits=word_bits)
    matrix._words[:] = rng.integers(
        0, 2**63, matrix._words.shape[0], dtype=np.uint64
    )
    # Mask off bits beyond the last real slot so scalar and fused paths
    # start from an identical, representable state.
    for slot in range(num_slots, matrix.num_words * matrix.slots_per_word):
        word, shift = matrix._field_position(slot)
        matrix._words[word] &= ~np.uint64(matrix.field_mask << shift)
    return matrix


@SETTINGS
@given(
    num_slots=st.integers(min_value=1, max_value=150),
    num_lanes=st.sampled_from([1, 2, 3, 4, 6, 8]),
    lane=st.integers(min_value=0, max_value=7),
    start=st.integers(min_value=0, max_value=149),
    per_element=st.integers(min_value=1, max_value=40),
    count=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_clear_lane_segments_matches_scalar_calls(
    num_slots, num_lanes, lane, start, per_element, count, seed
):
    lane = lane % num_lanes
    start = start % num_slots
    fused = _random_matrix(num_slots, num_lanes, seed)
    scalar = _random_matrix(num_slots, num_lanes, seed)
    fused.clear_lane_segments(lane, start, per_element, count)
    for i in range(count):
        scalar.clear_lane_range(lane, start + i * per_element, per_element)
    assert np.array_equal(fused._words, scalar._words)
    assert fused.counter == scalar.counter


@SETTINGS
@given(
    num_slots=st.integers(min_value=1, max_value=150),
    num_lanes=st.sampled_from([1, 2, 3, 4, 6, 8]),
    lane=st.integers(min_value=0, max_value=7),
    start=st.integers(min_value=0, max_value=149),
    lengths=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_clear_lane_run_lengths_matches_scalar_calls(
    num_slots, num_lanes, lane, start, lengths, seed
):
    lane = lane % num_lanes
    start = start % num_slots
    fused = _random_matrix(num_slots, num_lanes, seed)
    scalar = _random_matrix(num_slots, num_lanes, seed)
    fused.clear_lane_run_lengths(lane, start, np.array(lengths, dtype=np.int64))
    cursor = start
    for length in lengths:
        if length > 0 and cursor < num_slots:
            scalar.clear_lane_range(lane, cursor, length)
        cursor = min(cursor + max(length, 0), num_slots)
    assert np.array_equal(fused._words, scalar._words)
    assert fused.counter == scalar.counter
