"""Integration tests: the full system end to end.

These exercise the deployment story the paper motivates — an ad network
under attack, both parties auditing, billing settled through a sketch
detector — across module boundaries (streams -> adnet -> detection ->
core -> metrics)."""

import pytest

from repro import (
    AdNetwork,
    DetectionPipeline,
    TrafficProfile,
    WindowSpec,
    DetectorSpec,
    create_detector,
    run_audit,
)
from repro.adnet import competitor_botnet
from repro.baselines import ExactDetector
from repro.detection import AlertEngine, default_rules
from repro.streams import (
    DEFAULT_SCHEME,
    TrafficClass,
    load_clicks,
    write_clicks_jsonl,
)


@pytest.fixture(scope="module")
def attack_run():
    """One shared simulation: a mid-size network under botnet attack.

    Large enough ad inventory that organic browsing rarely repeats a
    (visitor, ad) pair, so duplicate statistics separate bots from
    humans cleanly.
    """
    network = AdNetwork(seed=21)
    keywords = [f"kw{i}" for i in range(30)]
    rng_bids = [(f"adv{i}", {k: 0.2 + ((i * 7 + j) % 10) * 0.1
                             for j, k in enumerate(keywords) if (i + j) % 3})
                for i in range(12)]
    for name, bids in rng_bids:
        network.add_advertiser(name, budget=10_000.0, bids=bids)
    for p in range(3):
        network.add_publisher(f"pub{p}", traffic_weight=1.0 + p)
    network.run_auctions(keywords)
    competitor_botnet(network, num_bots=40, mean_interval=90.0, seed=22)
    clicks = network.run(
        duration=2400.0,
        profile=TrafficProfile(click_rate=2.0, num_visitors=300,
                               ad_popularity_exponent=0.8,
                               revisit_probability=0.05,
                               revisit_mean_delay=400.0),
    )
    return network, clicks


def test_sketch_pipeline_matches_exact_pipeline(attack_run):
    network, clicks = attack_run
    sketch = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.001))
    exact = ExactDetector.sliding(4096)
    sketch_verdicts = []
    exact_verdicts = []
    for click in clicks:
        identifier = DEFAULT_SCHEME.identify(click)
        sketch_verdicts.append(sketch.process(identifier))
        exact_verdicts.append(exact.process(identifier))
    mismatches = sum(
        1 for s, e in zip(sketch_verdicts, exact_verdicts) if s != e
    )
    # At target_fp=0.001 over a few thousand clicks, the sketch should
    # disagree with exact ground truth on at most a handful of clicks.
    assert mismatches <= max(5, len(clicks) // 500)


def test_billing_economics_of_detection(attack_run):
    network, clicks = attack_run
    billing = network.make_billing_engine()
    detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.001))
    pipeline = DetectionPipeline(detector, billing=billing)
    result = pipeline.run(clicks)
    summary = result.billing_summary
    assert result.processed == len(clicks)
    # The botnets hammer the same ads: duplicate rejection must prevent
    # a substantial fraction of the fraudulent spend.
    fraud_total = summary["fraud_prevented"] + summary["fraud_charged"]
    assert fraud_total > 0
    assert summary["fraud_prevented"] > 0.5 * fraud_total
    # Publisher earnings and advertiser spend stay consistent.
    spent = sum(a.spent for a in network.advertisers.all())
    earned = sum(p.earned for p in network.publishers.all())
    assert spent == pytest.approx(summary["charged_amount"], rel=1e-6)
    assert earned + billing.network_revenue == pytest.approx(spent, rel=1e-6)


def test_advertiser_publisher_audit_agreement(attack_run):
    _, clicks = attack_run
    # Advertiser runs GBF over a jumping window, publisher runs TBF over
    # a sliding window of the same span: window semantics differ at block
    # edges, but both are zero-FN and low-FP, so agreement stays high.
    advertiser = create_detector(DetectorSpec(algorithm="gbf", window=WindowSpec("jumping", 4096, 8), target_fp=0.001))
    publisher = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.001))
    report = run_audit(clicks, advertiser, publisher)
    assert report.total_clicks == len(clicks)
    assert report.agreement_rate > 0.95
    assert report.disputed < report.total_clicks * 0.05


def test_alerts_identify_attack_sources(attack_run):
    _, clicks = attack_run
    detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.001))
    engine = AlertEngine(default_rules())
    for click in clicks:
        duplicate = detector.process(DEFAULT_SCHEME.identify(click))
        engine.observe(click, duplicate)
    flagged = {alert.key for alert in engine.alerts if alert.scope == "source"}
    bot_ips = {c.source_ip for c in clicks if c.traffic_class is TrafficClass.BOTNET}
    legit_ips = {c.source_ip for c in clicks if c.traffic_class is TrafficClass.LEGITIMATE}
    # Essentially every bot is flagged (they hammer the same ads)...
    assert len(flagged & bot_ips) >= 0.8 * len(bot_ips)
    # ...and the alert discriminates: the flag rate among bots exceeds
    # the flag rate among legitimate visitors.  (This toy network has so
    # few ads that even organic browsing repeats pairs, so some
    # legitimate flags are correct behaviour, not false alarms.)
    legit_only = legit_ips - bot_ips
    legit_rate = len(flagged & legit_only) / max(1, len(legit_only))
    bot_rate = len(flagged & bot_ips) / len(bot_ips)
    assert bot_rate > legit_rate


def test_stream_roundtrip_preserves_detection(tmp_path, attack_run):
    _, clicks = attack_run
    path = tmp_path / "stream.jsonl"
    write_clicks_jsonl(path, clicks)
    reloaded = load_clicks(path)
    assert len(reloaded) == len(clicks)
    a = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 1024), memory_bits=1 << 18, seed=9))
    b = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 1024), memory_bits=1 << 18, seed=9))
    for original, loaded in zip(clicks, reloaded):
        assert a.process(DEFAULT_SCHEME.identify(original)) == b.process(
            DEFAULT_SCHEME.identify(loaded)
        )


def test_budget_protection_under_attack():
    # Without dedup the botnet drains the advertiser budget; with dedup
    # the same traffic leaves most of it intact.
    def run_with(detector):
        network = AdNetwork(seed=33)
        network.add_advertiser("victim", budget=200.0, bids={"w": 2.0})
        network.add_publisher("p")
        network.run_auctions(["w"])
        competitor_botnet(network, num_bots=30, mean_interval=60.0, seed=34)
        clicks = network.run(
            duration=3600.0,
            profile=TrafficProfile(click_rate=0.2, num_visitors=30),
        )
        billing = network.make_billing_engine()
        pipeline = DetectionPipeline(detector, billing=billing)
        pipeline.run(clicks)
        return network.advertisers.get(0).remaining_budget

    class NoDetection:
        def process(self, identifier):
            return False

    unprotected = run_with(NoDetection())
    protected = run_with(
        create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 8192), target_fp=0.001))
    )
    assert protected > unprotected


def test_coalition_detector_finds_botnet(attack_run):
    # The 40 bots all click the same two target ads; organic visitors
    # wander over ~90 placements.  The MinHash coalition detector groups
    # the bots without any duplicate-detection signal at all.
    from repro.detection import CoalitionDetector

    _, clicks = attack_run
    detector = CoalitionDetector(num_hashes=64, max_sources=512, min_clicks=8, seed=1)
    for click in clicks:
        detector.observe_click(click)
    bot_ips = {c.source_ip for c in clicks if c.traffic_class is TrafficClass.BOTNET}
    groups = detector.coalitions(threshold=0.9)
    assert groups, "the botnet must form at least one coalition"
    largest = groups[0]
    assert largest <= bot_ips, "the top coalition must be pure botnet"
    assert len(largest) >= 0.7 * len(bot_ips)


def test_skew_monitor_flags_botnet_targets(attack_run):
    from repro.detection import SkewMonitor

    _, clicks = attack_run
    monitor = SkewMonitor(capacity=128)
    for click in clicks:
        monitor.observe(click)
    bot_ads = {c.ad_id for c in clicks if c.traffic_class is TrafficClass.BOTNET}
    flagged = {hitter.element for hitter in monitor.suspicious_ads(phi=0.05)}
    assert bot_ads & flagged, "hammered ads must surface as heavy hitters"
