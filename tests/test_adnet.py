"""Unit tests for the advertising-network substrate."""

import pytest

from repro.adnet import (
    AdNetwork,
    Advertiser,
    Publisher,
    TrafficProfile,
    allocate_ad_links,
    competitor_botnet,
    crawler_noise,
    demo_network,
    dishonest_publisher,
    keyword_prices,
    run_audit,
    run_keyword_auction,
)
from repro.adnet.entities import Registry
from repro.baselines import ExactDetector
from repro.errors import BudgetError, ConfigurationError
from repro.streams import TrafficClass


def _advertisers():
    return [
        Advertiser(0, "a", 100.0, {"widgets": 1.00}),
        Advertiser(1, "b", 100.0, {"widgets": 0.60}),
        Advertiser(2, "c", 100.0, {"widgets": 0.30}),
        Advertiser(3, "d", 100.0, {}),
    ]


class TestAuction:
    def test_second_price_rule(self):
        result = run_keyword_auction("widgets", _advertisers(), num_slots=2)
        assert result.ranked[0] == (0, 0.61)  # pays runner-up + increment
        assert result.ranked[1] == (1, 0.31)

    def test_last_participant_pays_reserve(self):
        result = run_keyword_auction("widgets", _advertisers()[:1], reserve_price=0.05)
        assert result.ranked[0] == (0, 0.05)

    def test_non_bidders_excluded(self):
        result = run_keyword_auction("widgets", _advertisers(), num_slots=10)
        assert len(result.ranked) == 3  # advertiser 3 never bid

    def test_reserve_filters_low_bids(self):
        result = run_keyword_auction("widgets", _advertisers(), reserve_price=0.5)
        assert [advertiser for advertiser, _ in result.ranked] == [0]

    def test_price_never_exceeds_bid(self):
        for slots in (1, 2, 3):
            result = run_keyword_auction("widgets", _advertisers(), num_slots=slots)
            advertisers = {a.advertiser_id: a for a in _advertisers()}
            for advertiser_id, price in result.ranked:
                assert price <= advertisers[advertiser_id].bids["widgets"]

    def test_allocate_links_across_publishers(self):
        publishers = [Publisher(0, "p0"), Publisher(1, "p1")]
        links = allocate_ad_links(["widgets"], _advertisers(), publishers)
        assert len(links) == 2  # one winner x two publishers
        assert {link.publisher_id for link in links} == {0, 1}
        assert len({link.ad_id for link in links}) == len(links)

    def test_keyword_prices_reporting(self):
        publishers = [Publisher(0, "p0")]
        links = allocate_ad_links(["widgets"], _advertisers(), publishers)
        prices = keyword_prices(links)
        assert prices["widgets"] == pytest.approx(0.61)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_keyword_auction("widgets", _advertisers(), num_slots=0)


class TestRegistry:
    def test_allocate_and_get(self):
        registry = Registry()
        first = registry.allocate_id()
        registry.add(first, "x")
        assert registry.get(first) == "x"
        assert registry.allocate_id() == first + 1

    def test_duplicate_and_missing(self):
        registry = Registry()
        registry.add(0, "x")
        with pytest.raises(ConfigurationError):
            registry.add(0, "y")
        with pytest.raises(ConfigurationError):
            registry.get(99)


class TestBilling:
    def _network(self):
        network = AdNetwork(seed=1)
        network.add_advertiser("a", budget=10.0, bids={"w": 1.0})
        network.add_advertiser("b", budget=10.0, bids={"w": 0.5})
        network.add_publisher("p", revenue_share=0.7)
        network.run_auctions(["w"])
        return network

    def test_charge_moves_money(self):
        network = self._network()
        billing = network.make_billing_engine()
        clicks = network.run(duration=50.0, profile=TrafficProfile(click_rate=2.0, num_visitors=5))
        click = clicks[0]
        amount = billing.charge(click)
        assert amount > 0
        advertiser = network.advertisers.get(click.advertiser_id)
        link = network.ad_links[click.ad_id]
        assert advertiser.spent == pytest.approx(link.cpc)
        publisher = network.publishers.get(click.publisher_id)
        assert publisher.earned == pytest.approx(0.7 * amount)
        assert billing.network_revenue == pytest.approx(0.3 * amount)
        assert click.charged is True

    def test_reject_duplicate_records_savings(self):
        network = self._network()
        billing = network.make_billing_engine()
        clicks = network.run(duration=50.0, profile=TrafficProfile(click_rate=2.0, num_visitors=5))
        saved = billing.reject_duplicate(clicks[0])
        assert saved > 0
        assert billing.totals.rejected_clicks == 1
        assert clicks[0].charged is False

    def test_budget_exhaustion(self):
        network = AdNetwork(seed=2)
        network.add_advertiser("tiny", budget=0.05, bids={"w": 1.0})
        network.add_publisher("p")
        network.run_auctions(["w"])
        billing = network.make_billing_engine()
        clicks = network.run(duration=100.0, profile=TrafficProfile(click_rate=2.0, num_visitors=5))
        with pytest.raises(BudgetError):
            for click in clicks:
                billing.charge(click)

    def test_refund(self):
        network = self._network()
        billing = network.make_billing_engine()
        advertiser = network.advertisers.get(0)
        advertiser.spent = 5.0
        billing.refund(0, 2.0)
        assert advertiser.spent == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            billing.refund(0, -1.0)

    def test_summary_fraud_ledger(self):
        network = demo_network(seed=3)
        billing = network.make_billing_engine()
        clicks = network.run(duration=600.0, profile=TrafficProfile(click_rate=1.0, num_visitors=20))
        fraud_clicks = [c for c in clicks if c.is_fraud]
        assert fraud_clicks, "demo network must include botnet traffic"
        # Reject all fraud, charge the rest: prevention shows in the ledger.
        for click in clicks:
            try:
                if click.is_fraud:
                    billing.reject_duplicate(click)
                else:
                    billing.charge(click)
            except BudgetError:
                break
        summary = billing.summary()
        assert summary["fraud_prevented"] > 0
        assert summary["fraud_charged"] == 0


class TestNetworkTraffic:
    def test_stream_is_time_ordered(self):
        network = demo_network(seed=4)
        clicks = network.run(duration=300.0)
        timestamps = [click.timestamp for click in clicks]
        assert timestamps == sorted(timestamps)

    def test_traffic_classes_present(self):
        network = demo_network(seed=5)
        clicks = network.run(
            duration=2000.0,
            profile=TrafficProfile(click_rate=2.0, num_visitors=50,
                                   revisit_probability=0.2, revisit_mean_delay=50.0),
        )
        classes = {click.traffic_class for click in clicks}
        assert TrafficClass.LEGITIMATE in classes
        assert TrafficClass.REPEAT_VISITOR in classes
        assert TrafficClass.BOTNET in classes

    def test_requires_auctions_before_traffic(self):
        network = AdNetwork()
        network.add_advertiser("a", 1.0, {"w": 0.5})
        network.add_publisher("p")
        with pytest.raises(ConfigurationError):
            network.run(10.0)

    def test_fraud_helpers_attach_campaigns(self):
        network = demo_network(seed=6)
        competitor_botnet(network, num_bots=3, mean_interval=30.0)
        dishonest_publisher(network, publisher_id=0, inflation_rate=0.5)
        crawler_noise(network, revisit_interval=100.0)
        clicks = network.run(duration=500.0,
                             profile=TrafficProfile(click_rate=1.0, num_visitors=10))
        classes = {click.traffic_class for click in clicks}
        assert TrafficClass.SINGLE_ATTACKER in classes
        assert TrafficClass.HIT_INFLATION in classes
        assert TrafficClass.CRAWLER in classes


class TestAudit:
    def test_exact_parties_always_agree(self):
        network = demo_network(seed=7)
        clicks = network.run(duration=300.0,
                             profile=TrafficProfile(click_rate=2.0, num_visitors=20))
        report = run_audit(
            clicks,
            ExactDetector.sliding(512),
            ExactDetector.sliding(512),
        )
        assert report.agreement_rate == 1.0
        assert report.disputed == 0
        assert report.total_clicks == len(clicks)

    def test_disagreement_counted_by_side(self):
        class AlwaysDuplicate:
            def process(self, identifier):
                return True

        class NeverDuplicate:
            def process(self, identifier):
                return False

        network = demo_network(seed=8)
        clicks = network.run(duration=60.0,
                             profile=TrafficProfile(click_rate=2.0, num_visitors=10))
        report = run_audit(clicks, AlwaysDuplicate(), NeverDuplicate(), keep_disputed=True)
        assert report.disputed == report.total_clicks
        assert report.publisher_only_valid == report.total_clicks
        assert len(report.disputed_clicks) == report.total_clicks
        assert report.agreement_rate == 0.0


class TestMoneyConservation:
    def test_every_charged_cent_is_accounted_for(self):
        # Conservation law: advertiser spend == publisher earnings +
        # network revenue == billing ledger total, for any mix of
        # charges, rejections, and refunds.
        import random

        network = AdNetwork(seed=9)
        network.add_advertiser("a", budget=10_000.0, bids={"w": 1.0, "v": 0.5})
        network.add_advertiser("b", budget=10_000.0, bids={"w": 0.8, "v": 0.7})
        network.add_publisher("p0", revenue_share=0.7)
        network.add_publisher("p1", revenue_share=0.6)
        network.run_auctions(["w", "v"])
        billing = network.make_billing_engine()
        clicks = network.run(
            duration=400.0,
            profile=TrafficProfile(click_rate=3.0, num_visitors=30),
        )
        rng = random.Random(4)
        refunded = 0.0
        for click in clicks:
            roll = rng.random()
            if roll < 0.2:
                billing.reject_duplicate(click)
            else:
                amount = billing.charge(click)
                if roll > 0.95:
                    billing.refund(click.advertiser_id, amount / 2)
                    refunded += amount / 2

        spent = sum(a.spent for a in network.advertisers.all())
        earned = sum(p.earned for p in network.publishers.all())
        ledger = billing.totals.charged_amount
        assert spent == pytest.approx(ledger - refunded, rel=1e-9)
        assert earned + billing.network_revenue == pytest.approx(ledger, rel=1e-9)
        # Rejections moved no money.
        assert billing.totals.rejected_amount >= 0
        for advertiser in network.advertisers.all():
            assert advertiser.spent <= advertiser.budget + 1e-9
