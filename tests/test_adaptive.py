"""Adaptive portfolio: filters, lifecycle, controller, and live resize.

Four layers, one suite:

* the APBF / time-limited-BF variants' window semantics (zero false
  negatives inside the guaranteed window, expiry beyond it) and their
  live estimated-FP gauges, which must equal the closed-form slice
  formula EXACTLY (same DP over measured fills);
* the ``DetectorLifecycle`` surface (``as_lifecycle`` passthrough and
  adapter) and ``spec()`` round-trips (``create_detector(d.spec())``
  rebuilds a bit-identical detector);
* the migrate-replay property: after ``migrate(new_spec)``, wrapper
  state is bit-identical to a fresh ``new_spec`` detector that replayed
  exactly the retained window (hypothesis-fuzzed);
* the controller loop (grow on sustained breach, shrink on sustained
  slack, cooldown, rails, bounded journal) and the live serve path:
  a controller-driven resize under traffic with zero lost clicks.
"""

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveController,
    AdaptiveDetector,
    AdaptiveTimedDetector,
    AgePartitionedBFDetector,
    ControllerConfig,
    TimeLimitedBFDetector,
    adaptive_detector,
    scaled_spec,
)
from repro.bloom.params import apbf_false_positive_rate, sliced_false_positive_rate
from repro.core.checkpoint import load_detector, save_detector
from repro.detection import (
    APBFParams,
    DetectorLifecycle,
    DetectorSpec,
    LifecycleAdapter,
    ShardedDetector,
    TimeShardedDetector,
    WindowSpec,
    as_lifecycle,
    create_detector,
    is_timed,
)
from repro.errors import ConfigurationError, StreamError

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

SETTINGS = settings(max_examples=25, deadline=None)

APBF_SPEC = DetectorSpec(
    algorithm="apbf", window=WindowSpec("sliding", 64), target_fp=0.02
)
TLBF_SPEC = DetectorSpec(
    algorithm="time-limited-bf", window=WindowSpec("sliding", 64),
    target_fp=0.02, duration=16.0, resolution=8,
)


def _distinct(count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 60, size=count, dtype=np.uint64)


class TestAPBFSemantics:
    def test_no_false_negatives_in_guaranteed_window(self):
        detector = AgePartitionedBFDetector(4, 8, 512, 8, seed=1)
        window = detector.guaranteed_window
        ids = _distinct(window * 4, seed=3)
        for index, identifier in enumerate(ids):
            detector.process(int(identifier))
            # Everything inside the guaranteed window must still hit.
            for back in range(0, min(index + 1, window)):
                assert detector.query(int(ids[index - back]))

    def test_old_elements_expire(self):
        detector = AgePartitionedBFDetector(4, 8, 256, 4, seed=1)
        probe = 1234567
        detector.process(probe)
        # After enough fresh generations the l oldest slices that held
        # the element have all been recycled.
        total = detector.guaranteed_window + detector.num_aged * detector.generation_size
        fresh = _distinct(total * 2, seed=9)
        for identifier in fresh:
            detector.process(int(identifier))
        assert not detector.query(probe)

    def test_duplicates_not_reinserted(self):
        detector = AgePartitionedBFDetector(3, 6, 256, 8, seed=2)
        detector.process(42)
        count = detector._generation_count
        assert detector.process(42) is True
        assert detector._generation_count == count  # no new insert

    def test_estimated_fp_equals_closed_form_exactly(self):
        detector = AgePartitionedBFDetector(4, 6, 128, 8, seed=5)
        for identifier in _distinct(300, seed=7):
            detector.process(int(identifier))
        fills = detector.slice_fills()
        expected = sliced_false_positive_rate(fills, detector.num_required)
        assert detector.estimated_fp_rate() == expected
        gauge = detector.telemetry_snapshot()["gauges"]["estimated_fp_rate"]
        assert gauge == expected

    def test_theoretical_bound_honored_by_planner(self):
        for target in (0.05, 0.01, 0.001):
            detector = create_detector(DetectorSpec(
                "apbf", WindowSpec("sliding", 512), target_fp=target
            ))
            assert detector.theoretical_fp_bound() <= target


class TestTLBFSemantics:
    def test_duplicate_within_duration(self):
        detector = TimeLimitedBFDetector(8.0, 4, 8, 512, seed=1)
        assert detector.process_at(7, 0.0) is False
        assert detector.process_at(7, 7.9) is True

    def test_expiry_after_duration(self):
        detector = TimeLimitedBFDetector(8.0, 4, 8, 512, seed=1)
        detector.process_at(7, 0.0)
        assert detector.process_at(7, 17.0) is False

    def test_timestamp_regression_raises(self):
        detector = TimeLimitedBFDetector(8.0, 4, 8, 512, seed=1)
        detector.process_at(1, 5.0)
        with pytest.raises(StreamError):
            detector.process_at(2, 4.0)

    def test_estimated_fp_equals_closed_form_exactly(self):
        detector = TimeLimitedBFDetector(8.0, 4, 6, 128, seed=3)
        stamps = np.cumsum(np.full(200, 0.05))
        detector.process_batch_at(_distinct(200, seed=4), stamps)
        fills = detector.slice_fills()
        expected = sliced_false_positive_rate(fills, detector.num_required)
        assert detector.estimated_fp_rate() == expected


class TestSpecRoundTrips:
    CASES = {
        "gbf": DetectorSpec("gbf", WindowSpec("jumping", 256, 8), target_fp=0.01),
        "tbf": DetectorSpec("tbf", WindowSpec("sliding", 256), target_fp=0.01),
        "tbf-jumping": DetectorSpec(
            "tbf-jumping", WindowSpec("jumping", 256, 8), target_fp=0.01
        ),
        "gbf-time": DetectorSpec(
            "gbf-time", WindowSpec("jumping", 256, 8),
            target_fp=0.01, duration=32.0,
        ),
        "tbf-time": DetectorSpec(
            "tbf-time", WindowSpec("sliding", 256),
            target_fp=0.01, duration=32.0, resolution=8,
        ),
        "apbf": APBF_SPEC,
        "time-limited-bf": TLBF_SPEC,
        "sharded-tbf": DetectorSpec(
            "tbf", WindowSpec("sliding", 256), target_fp=0.01, shards=3
        ),
        "sharded-apbf": DetectorSpec(
            "apbf", WindowSpec("sliding", 256), target_fp=0.01, shards=3
        ),
        "sharded-tlbf": DetectorSpec(
            "time-limited-bf", WindowSpec("sliding", 256),
            target_fp=0.01, duration=16.0, resolution=8, shards=3,
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_create_from_spec_is_bit_identical(self, name):
        original = create_detector(self.CASES[name])
        rebuilt = create_detector(original.spec())
        assert save_detector(rebuilt) == save_detector(original)
        assert rebuilt.spec() == original.spec()

    def test_exact_round_trip(self):
        original = create_detector(DetectorSpec("exact", WindowSpec("sliding", 64)))
        rebuilt = create_detector(original.spec())
        assert type(rebuilt) is type(original)
        assert rebuilt.window.size == original.window.size

    def test_params_exclude_sizing_knobs(self):
        params = APBFParams(4, 8, 256, 8)
        with pytest.raises(ConfigurationError):
            DetectorSpec(
                "apbf", WindowSpec("sliding", 64),
                target_fp=0.01, params=params,
            )
        with pytest.raises(ConfigurationError):
            DetectorSpec(
                "tbf", WindowSpec("sliding", 64), params=params
            )  # wrong params type for the algorithm

    def test_of_tbf_is_deprecated(self):
        with pytest.warns(DeprecationWarning):
            ShardedDetector.of_tbf(64, 2, 1024, seed=1)
        with pytest.warns(DeprecationWarning):
            TimeShardedDetector.of_tbf(8.0, 4, 2, 1024, seed=1)


class TestCheckpointRoundTrips:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_apbf(self, shards):
        spec = DetectorSpec(
            "apbf", WindowSpec("sliding", 128), target_fp=0.01, shards=shards
        )
        detector = create_detector(spec)
        detector.process_batch(_distinct(500, seed=11))
        blob = save_detector(detector)
        restored = load_detector(blob)
        probe = _distinct(300, seed=12)
        assert np.array_equal(
            detector.process_batch(probe), restored.process_batch(probe)
        )
        assert save_detector(detector) == save_detector(restored)

    @pytest.mark.parametrize("shards", [1, 3])
    def test_tlbf(self, shards):
        spec = DetectorSpec(
            "time-limited-bf", WindowSpec("sliding", 128),
            target_fp=0.01, duration=16.0, resolution=8, shards=shards,
        )
        detector = create_detector(spec)
        stamps = np.cumsum(np.full(500, 0.01))
        detector.process_batch_at(_distinct(500, seed=11), stamps)
        restored = load_detector(save_detector(detector))
        probe = _distinct(300, seed=12)
        later = stamps[-1] + np.cumsum(np.full(300, 0.01))
        assert np.array_equal(
            detector.process_batch_at(probe, later),
            restored.process_batch_at(probe, later),
        )
        assert save_detector(detector) == save_detector(restored)


class TestLifecycleSurface:
    def test_adaptive_wrappers_are_native_lifecycles(self):
        count = AdaptiveDetector(APBF_SPEC)
        timed = AdaptiveTimedDetector(TLBF_SPEC)
        assert isinstance(count, DetectorLifecycle)
        assert isinstance(timed, DetectorLifecycle)
        assert as_lifecycle(count) is count
        assert not is_timed(count) and is_timed(timed)

    def test_adapter_wraps_plain_detectors(self):
        detector = create_detector(APBF_SPEC)
        lifecycle = as_lifecycle(detector)
        assert isinstance(lifecycle, LifecycleAdapter)
        lifecycle.quiesce()
        blob = lifecycle.checkpoint()
        assert blob == save_detector(detector)
        lifecycle.resume()
        with pytest.raises(ConfigurationError):
            lifecycle.migrate(APBF_SPEC)

    def test_factory_picks_time_model(self):
        assert type(adaptive_detector(APBF_SPEC)) is AdaptiveDetector
        assert type(adaptive_detector(TLBF_SPEC)) is AdaptiveTimedDetector
        with pytest.raises(ConfigurationError):
            AdaptiveDetector(TLBF_SPEC)
        with pytest.raises(ConfigurationError):
            AdaptiveTimedDetector(APBF_SPEC)

    def test_wrapper_checkpoint_round_trip(self):
        wrapper = AdaptiveDetector(APBF_SPEC, retain=64)
        wrapper.process_batch(_distinct(300, seed=1))
        wrapper.migrate(scaled_spec(wrapper.spec(), 2.0))
        blob = wrapper.checkpoint()
        restored = load_detector(blob)
        assert type(restored) is AdaptiveDetector
        assert restored.migrations == wrapper.migrations
        probe = _distinct(200, seed=2)
        assert np.array_equal(
            wrapper.process_batch(probe), restored.process_batch(probe)
        )
        assert wrapper.checkpoint() == restored.checkpoint()

    def test_timed_wrapper_checkpoint_round_trip(self):
        wrapper = AdaptiveTimedDetector(TLBF_SPEC, retain=64)
        stamps = np.cumsum(np.full(300, 0.01))
        wrapper.process_batch_at(_distinct(300, seed=1), stamps)
        restored = load_detector(wrapper.checkpoint())
        probe = _distinct(100, seed=2)
        later = stamps[-1] + np.cumsum(np.full(100, 0.01))
        assert np.array_equal(
            wrapper.process_batch_at(probe, later),
            restored.process_batch_at(probe, later),
        )
        assert wrapper.checkpoint() == restored.checkpoint()


SMALL_SPEC = DetectorSpec(
    "apbf", window=WindowSpec("sliding", 30),
    params=APBFParams(3, 5, 64, 6),
)


class TestMigrateReplayProperty:
    @SETTINGS
    @given(
        ids=st.lists(st.integers(0, 50), min_size=1, max_size=200),
        retain=st.integers(1, 60),
        grow=st.booleans(),
    )
    def test_migrate_equals_fresh_replay(self, ids, retain, grow):
        wrapper = AdaptiveDetector(SMALL_SPEC, retain=retain)
        for identifier in ids:
            wrapper.process(identifier)
        new_spec = scaled_spec(wrapper.spec(), 2.0 if grow else 0.5)
        wrapper.migrate(new_spec)
        fresh = create_detector(new_spec)
        for identifier in ids[-retain:]:
            fresh.process(identifier)
        assert save_detector(wrapper.inner) == save_detector(fresh)
        # Verdicts keep matching on a continued stream.
        probe = np.array([x * 7 % 61 for x in range(40)], dtype=np.uint64)
        assert np.array_equal(
            wrapper.process_batch(probe), fresh.process_batch(probe)
        )

    @SETTINGS
    @given(
        ids=st.lists(st.integers(0, 50), min_size=1, max_size=150),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            min_size=1, max_size=150,
        ),
        retain=st.integers(1, 60),
    )
    def test_timed_migrate_equals_fresh_replay(self, ids, gaps, retain):
        spec = DetectorSpec(
            "time-limited-bf", WindowSpec("sliding", 64),
            target_fp=0.05, duration=8.0, resolution=4,
        )
        wrapper = AdaptiveTimedDetector(spec, retain=retain)
        n = min(len(ids), len(gaps))
        stamps = np.cumsum(gaps[:n])
        for identifier, stamp in zip(ids[:n], stamps):
            wrapper.process_at(identifier, float(stamp))
        new_spec = scaled_spec(wrapper.spec(), 2.0)
        wrapper.migrate(new_spec)
        fresh = create_detector(new_spec)
        for identifier, stamp in list(zip(ids[:n], stamps))[-retain:]:
            fresh.process_at(identifier, float(stamp))
        assert save_detector(wrapper.inner) == save_detector(fresh)


class TestController:
    def test_grows_on_sustained_breach(self):
        detector = AdaptiveDetector(APBF_SPEC, retain=64)
        controller = AdaptiveController(
            detector, ControllerConfig(breach_streak=2, cooldown=0)
        )
        rng = np.random.default_rng(1)
        event = None
        for _ in range(200):
            detector.process_batch(
                rng.integers(0, 1 << 40, 64).astype(np.uint64)
            )
            event = controller.observe()
            if event is not None:
                break
        assert event is not None and event.direction == "grow"
        assert event.new_memory_bits > event.old_memory_bits
        assert controller.journal[-1] is event
        assert detector.migrations == 1

    def test_shrinks_on_sustained_slack(self):
        detector = AdaptiveDetector(APBF_SPEC, retain=64)  # empty: FP ~ 0
        controller = AdaptiveController(
            detector,
            ControllerConfig(shrink_streak=3, cooldown=0, shrink_fraction=0.5),
        )
        events = [controller.observe() for _ in range(3)]
        assert events[-1] is not None and events[-1].direction == "shrink"

    def test_cooldown_blocks_consecutive_resizes(self):
        detector = AdaptiveDetector(APBF_SPEC, retain=64)
        controller = AdaptiveController(
            detector,
            ControllerConfig(
                shrink_streak=1, cooldown=10, shrink_fraction=0.5,
                min_memory_bits=1,
            ),
        )
        events = [controller.observe() for _ in range(25)]
        fired = [i for i, event in enumerate(events) if event is not None]
        assert len(fired) >= 2  # keeps resizing, but never back to back
        assert all(b - a >= 10 for a, b in zip(fired, fired[1:]))

    def test_memory_rails_stop_runaway(self):
        detector = AdaptiveDetector(APBF_SPEC, retain=64)
        controller = AdaptiveController(
            detector,
            ControllerConfig(
                shrink_streak=1, cooldown=0, shrink_fraction=0.5,
                min_memory_bits=detector.memory_bits,
            ),
        )
        assert all(controller.observe() is None for _ in range(5))
        assert detector.migrations == 0

    def test_journal_is_bounded(self):
        detector = AdaptiveDetector(APBF_SPEC, retain=64)
        config = ControllerConfig(
            shrink_streak=1, cooldown=0, shrink_fraction=0.5,
            min_memory_bits=1, journal_limit=2,
        )
        controller = AdaptiveController(detector, config)
        # The empty detector reads as permanent slack, so every sample
        # shrinks (bottoming out at the 8-bit slice floor) — more events
        # than the journal keeps.
        for _ in range(10):
            controller.observe()
        assert detector.migrations > 2
        assert len(controller.journal) == 2

    def test_scaled_spec_validation(self):
        with pytest.raises(ConfigurationError):
            scaled_spec(APBF_SPEC, 2.0)  # target_fp sizing has no knob
        with pytest.raises(ConfigurationError):
            scaled_spec(SMALL_SPEC, 0.0)
        grown = scaled_spec(SMALL_SPEC, 2.0)
        assert grown.params.slice_bits == 128
        by_memory = scaled_spec(
            DetectorSpec("tbf", WindowSpec("sliding", 64), memory_bits=4096),
            0.5,
        )
        assert by_memory.memory_bits == 2048

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(grow_factor=0.5)
        with pytest.raises(ConfigurationError):
            ControllerConfig(breach_streak=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(shrink_fraction=2.0)


class TestServeAdaptive:
    def test_controller_resize_live_zero_lost_clicks(self):
        from repro.serve import ServeClient, ServeConfig, ServerThread
        from repro.telemetry import TelemetrySession

        spec = DetectorSpec(
            "apbf", WindowSpec("sliding", 128), target_fp=0.01
        )
        detector = AdaptiveDetector(spec)
        config = ServeConfig(
            max_batch=256,
            max_delay=0.001,
            adaptive_interval=1,
            adaptive=ControllerConfig(breach_streak=1, cooldown=0),
        )
        session = TelemetrySession()
        identifiers = _distinct(20_000, seed=21)
        with ServerThread(detector, config, telemetry=session) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                verdicts = np.concatenate([
                    client.send(chunk)
                    for chunk in np.array_split(identifiers, 40)
                ])
            server = thread.server
            assert server is not None and server._controller is not None
            journal = server._controller.journal
        # Zero lost clicks: every click got exactly one verdict.
        assert verdicts.size == identifiers.size
        # The controller resized at least once, and recorded it.
        assert detector.migrations >= 1
        assert len(journal) >= 1
        assert any(
            event[2] == "resize" for event in server.flight.events()
        )
        rendered = session.registry.to_prometheus()
        assert "repro_adaptive_resizes_total" in rendered

    def test_adaptive_interval_requires_inline_engine(self):
        from repro.serve import ServeConfig

        with pytest.raises(ConfigurationError):
            ServeConfig(adaptive_interval=4, workers=2)

    def test_adaptive_interval_requires_resizable_detector(self):
        from repro.serve import ServeConfig, ServerThread

        config = ServeConfig(adaptive_interval=4)
        thread = ServerThread(create_detector(APBF_SPEC), config)
        with pytest.raises(ConfigurationError):
            thread.start()
