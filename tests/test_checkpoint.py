"""Tests for detector checkpointing: bit-identical restore, corruption
rejection, and custom-family refusal."""

import random

import pytest

from repro.core import (
    CheckpointError,
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
    load_detector,
    save_detector,
)
from repro.hashing import CarterWegmanFamily, HashFamily


def _drive(detector, count, seed):
    rng = random.Random(seed)
    return [detector.process(rng.randrange(200)) for _ in range(count)]


DETECTOR_FACTORIES = [
    ("gbf", lambda: GBFDetector(64, 8, 1024, 4, seed=3)),
    ("gbf-wide", lambda: GBFDetector(72, 24, 512, 3, word_bits=8, seed=3)),
    ("tbf", lambda: TBFDetector(64, 2048, 4, seed=3)),
    ("tbf-small-slack", lambda: TBFDetector(64, 2048, 4, cleanup_slack=5, seed=3)),
    ("tbf-jumping", lambda: TBFJumpingDetector(64, 8, 2048, 4, seed=3)),
]


@pytest.mark.parametrize("name,factory", DETECTOR_FACTORIES)
def test_restore_is_bit_identical(name, factory):
    original = factory()
    _drive(original, 500, seed=1)
    blob = save_detector(original)
    restored = load_detector(blob)
    # From here both must make IDENTICAL decisions on any continuation.
    rng_a, rng_b = random.Random(9), random.Random(9)
    for _ in range(800):
        x = rng_a.randrange(200)
        y = rng_b.randrange(200)
        assert original.process(x) == restored.process(y)


TIMEBASED_FACTORIES = [
    ("gbf-time", lambda: TimeBasedGBFDetector(24.0, 4, 1024, 4,
                                              units_per_subwindow=4, seed=3)),
    (
        "gbf-time-wide",
        lambda: TimeBasedGBFDetector(24.0, 12, 512, 3, units_per_subwindow=2,
                                     word_bits=8, seed=3),
    ),
    ("tbf-time", lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)),
    (
        "tbf-time-small-slack",
        lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, cleanup_slack=2, seed=3),
    ),
]


def _drive_timed(detector, count, seed, start=0.0, step=0.3):
    rng = random.Random(seed)
    timestamp, verdicts = start, []
    for _ in range(count):
        timestamp += rng.random() * step
        verdicts.append(detector.process_at(rng.randrange(200), timestamp))
    return timestamp


@pytest.mark.parametrize("name,factory", TIMEBASED_FACTORIES)
def test_timebased_restore_is_bit_identical(name, factory):
    original = factory()
    resume_at = _drive_timed(original, 500, seed=1)
    restored = load_detector(save_detector(original))
    # From here both must make IDENTICAL decisions on any continuation —
    # including across lane rotations, cleaning sweeps, and idle gaps.
    rng = random.Random(9)
    timestamp = resume_at
    for index in range(800):
        timestamp += rng.random() * 0.3
        if index == 400:
            timestamp += 1000.0  # idle gap: exercises the fast-forward wipe
        x = rng.randrange(200)
        assert original.process_at(x, timestamp) == restored.process_at(x, timestamp)


@pytest.mark.parametrize("name,factory", TIMEBASED_FACTORIES)
def test_timebased_fresh_detector_roundtrips(name, factory):
    # A checkpoint of a detector that never saw a click (clock unset).
    restored = load_detector(save_detector(factory()))
    original = factory()
    timestamp = 0.0
    rng = random.Random(2)
    for _ in range(300):
        timestamp += rng.random() * 0.3
        x = rng.randrange(200)
        assert original.process_at(x, timestamp) == restored.process_at(x, timestamp)


def test_timebased_tbf_corrupt_payload_rejected():
    detector = TimeBasedTBFDetector(24.0, 8, 512, 3, seed=1)
    _drive_timed(detector, 100, seed=2)
    blob = bytearray(save_detector(detector))
    blob[len(blob) // 2] ^= 0xFF
    with pytest.raises(CheckpointError, match="CRC"):
        load_detector(bytes(blob))


def test_restore_mid_cleaning_cycle():
    # Checkpoint exactly while a GBF lane is half-cleaned.
    detector = GBFDetector(64, 8, 4096, 4, seed=5)
    for i in range(68):  # 4 past a rotation: cleaning in progress
        detector.process(10_000 + i)
    assert detector._cleaning_lane is not None
    assert 0 < detector._clean_cursor < detector.bits_per_filter
    restored = load_detector(save_detector(detector))
    for i in range(500):
        assert detector.process(i) == restored.process(i)


def test_checkpoint_roundtrips_query_state():
    detector = TBFDetector(32, 1024, 4, seed=7)
    for i in range(40):
        detector.process(i)
    restored = load_detector(save_detector(detector))
    for i in range(60):
        assert detector.query(i) == restored.query(i)


def test_corrupt_payload_rejected():
    detector = TBFDetector(32, 512, 3, seed=1)
    _drive(detector, 100, seed=2)
    blob = bytearray(save_detector(detector))
    blob[len(blob) // 2] ^= 0xFF
    with pytest.raises(CheckpointError, match="CRC"):
        load_detector(bytes(blob))


def test_truncated_blob_rejected():
    detector = TBFDetector(32, 512, 3, seed=1)
    blob = save_detector(detector)
    with pytest.raises(CheckpointError):
        load_detector(blob[: len(blob) // 2 - 3])
    with pytest.raises(CheckpointError):
        load_detector(b"")


def test_wrong_magic_rejected():
    detector = TBFDetector(32, 512, 3, seed=1)
    blob = save_detector(detector)
    with pytest.raises(CheckpointError, match="magic"):
        load_detector(b"XXXXXXXX" + blob[8:])


def test_unsupported_detector_rejected():
    class NotADetector:
        pass

    with pytest.raises(CheckpointError, match="unsupported"):
        save_detector(NotADetector())


def test_custom_family_refused_at_save_time():
    class WeirdFamily(HashFamily):
        def indices(self, identifier):
            return [identifier % self.num_buckets] * self.num_hashes

    detector = TBFDetector(32, 512, family=WeirdFamily(3, 512))
    with pytest.raises(CheckpointError, match="custom hash family"):
        save_detector(detector)


def test_builtin_nondefault_family_roundtrips():
    family = CarterWegmanFamily(4, 1024, seed=11)
    detector = GBFDetector(64, 8, 1024, family=family)
    _drive(detector, 300, seed=4)
    restored = load_detector(save_detector(detector))
    for i in range(300):
        assert detector.process(i) == restored.process(i)


def test_zero_fn_survives_restart():
    # The deployment property that motivates checkpointing: restarting
    # from a checkpoint never forgets accepted clicks still in-window.
    from repro.windows import SlidingWindow

    detector = TBFDetector(32, 4096, 4, seed=13)
    window = SlidingWindow(32)
    last_valid = {}
    rng = random.Random(17)

    def step(active_detector, identifier):
        window.observe()
        predicted = active_detector.process(identifier)
        previous = last_valid.get(identifier)
        if previous is not None and window.is_active(previous):
            assert predicted, "restart lost an accepted click"
        if not predicted:
            last_valid[identifier] = window.position

    for _ in range(200):
        step(detector, rng.randrange(64))
    detector = load_detector(save_detector(detector))  # simulated restart
    for _ in range(200):
        step(detector, rng.randrange(64))
