"""Unit tests for the lane-packed bit matrix (GBF storage layout)."""

import pytest

from repro.bitset.words import OperationCounter
from repro.core.lanes import LanePackedBitMatrix
from repro.errors import ConfigurationError


class TestGeometry:
    def test_dense_layout(self):
        matrix = LanePackedBitMatrix(100, 5, 64)
        assert matrix.slots_per_word == 12  # 64 // 5
        assert matrix.words_per_slot == 1
        assert matrix.num_words == -(-100 // 12)

    def test_exact_fit_layout(self):
        matrix = LanePackedBitMatrix(64, 32, 32)
        assert matrix.slots_per_word == 1
        assert matrix.words_per_slot == 1
        assert matrix.num_words == 64

    def test_wide_layout(self):
        matrix = LanePackedBitMatrix(10, 100, 32)
        assert matrix.slots_per_word == 1
        assert matrix.words_per_slot == 4  # ceil(100/32)
        assert matrix.num_words == 40

    def test_memory_bits(self):
        matrix = LanePackedBitMatrix(100, 5, 64)
        assert matrix.memory_bits == matrix.num_words * 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LanePackedBitMatrix(0, 4)
        with pytest.raises(ConfigurationError):
            LanePackedBitMatrix(4, 0)
        with pytest.raises(ConfigurationError):
            LanePackedBitMatrix(4, 4, word_bits=10)


class TestProbeSemantics:
    def test_probe_and_intersects_lanes(self):
        matrix = LanePackedBitMatrix(30, 6, 64)
        matrix.set_lane([3, 17], lane=2)
        matrix.set_lane([3], lane=4)
        combined = matrix.probe_and([3, 17])
        assert combined[0] >> 2 & 1       # lane 2 set at both slots
        assert not combined[0] >> 4 & 1   # lane 4 set only at slot 3

    def test_probe_single_slot(self):
        matrix = LanePackedBitMatrix(8, 3, 8)  # 2 slots per word
        matrix.set_lane([5], lane=1)
        assert matrix.probe_and([5])[0] == 0b010

    def test_neighbours_in_word_do_not_leak(self):
        # Slots 0 and 1 share a word in the dense layout; lane bits of
        # slot 1 must never appear in a probe of slot 0.
        matrix = LanePackedBitMatrix(8, 3, 8)
        matrix.set_lane([1], lane=0)
        matrix.set_lane([1], lane=1)
        matrix.set_lane([1], lane=2)
        assert matrix.probe_and([0])[0] == 0

    def test_counts_reads(self):
        counter = OperationCounter()
        matrix = LanePackedBitMatrix(100, 5, 64, counter)
        matrix.probe_and([1, 2, 3])
        assert counter.word_reads == 3
        wide = LanePackedBitMatrix(10, 100, 32, OperationCounter())
        wide.probe_and([1, 2])
        assert wide.counter.word_reads == 2 * 4


class TestCleaning:
    def test_clear_range_counts_word_rmws(self):
        counter = OperationCounter()
        matrix = LanePackedBitMatrix(120, 5, 64, counter)  # 12 slots/word
        for slot in range(120):
            matrix.set_lane([slot], lane=3)
        counter.reset()
        matrix.clear_lane_range(3, 0, 24)  # exactly two words
        assert counter.word_reads == 2
        assert counter.word_writes == 2
        for slot in range(24):
            assert not matrix.get_bit(slot, 3)
        assert matrix.get_bit(24, 3)

    def test_clear_skips_untouched_words(self):
        counter = OperationCounter()
        matrix = LanePackedBitMatrix(120, 5, 64, counter)
        counter.reset()
        matrix.clear_lane_range(3, 0, 120)  # nothing set: reads only
        assert counter.word_writes == 0
        assert counter.word_reads == 10

    def test_clear_partial_word_edges(self):
        matrix = LanePackedBitMatrix(24, 5, 64)  # 12 slots/word
        for slot in range(24):
            matrix.set_lane([slot], lane=0)
        matrix.clear_lane_range(0, 5, 10)  # slots 5..14, spans the seam
        for slot in range(24):
            assert matrix.get_bit(slot, 0) == (slot < 5 or slot >= 15)

    def test_clear_zero_length_noop(self):
        matrix = LanePackedBitMatrix(10, 4)
        matrix.set_lane([0], 0)
        matrix.clear_lane_range(0, 0, 0)
        assert matrix.get_bit(0, 0)

    def test_clear_all(self):
        matrix = LanePackedBitMatrix(50, 7)
        for slot in range(50):
            matrix.set_lane([slot], slot % 7)
        matrix.clear_all()
        assert all(
            not matrix.get_bit(slot, lane)
            for slot in range(50)
            for lane in range(7)
        )

    def test_lane_population(self):
        matrix = LanePackedBitMatrix(40, 6, 16)
        for slot in (1, 5, 9):
            matrix.set_lane([slot], 4)
        assert matrix.lane_population(4) == 3
        assert matrix.lane_population(0) == 0

    def test_words_for_slot_range(self):
        matrix = LanePackedBitMatrix(120, 5, 64)
        assert matrix.words_for_slot_range(24) == 2
        assert matrix.words_for_slot_range(25) == 3
