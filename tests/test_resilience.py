"""Tests for the resilience subsystem: supervised checkpoint/resume,
corrupt-checkpoint fallback, fault injection, and input hardening."""

import random

import pytest

from repro.adnet.billing import BillingEngine
from repro.adnet.entities import AdLink, Advertiser, Publisher, Registry
from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
)
from repro.detection import DetectionPipeline
from repro.errors import CheckpointError, RecoveryError, StreamError
from repro.resilience import (
    CheckpointStore,
    DeadLetterSink,
    FaultInjector,
    InjectedCrash,
    ReorderBuffer,
    SupervisedPipeline,
)
from repro.streams.click import Click, TrafficClass
from repro.streams.io import read_clicks_jsonl, write_clicks_jsonl


# ----------------------------------------------------------------------
# Fixtures: a small ad network, a deterministic stream, the 5 detectors
# ----------------------------------------------------------------------

def make_billing():
    advertisers, publishers = Registry(), Registry()
    advertisers.add(0, Advertiser(0, "a0", budget=1000.0))
    advertisers.add(1, Advertiser(1, "a1", budget=3.0))  # exhausts mid-run
    publishers.add(0, Publisher(0, "p0"))
    publishers.add(1, Publisher(1, "p1", revenue_share=0.6))
    ad_links = {
        0: AdLink(0, 0, 0, "kw", 0.5),
        1: AdLink(1, 1, 1, "kw", 0.25),
        2: AdLink(2, 0, 1, "kw", 0.75),
    }
    return BillingEngine(advertisers, publishers, ad_links)


def make_stream(count=180, seed=11):
    rng = random.Random(seed)
    timestamp, clicks = 0.0, []
    for _ in range(count):
        timestamp += rng.random() * 0.4
        clicks.append(
            Click(
                timestamp=timestamp,
                source_ip=rng.randrange(24),
                cookie=rng.randrange(8),
                ad_id=rng.randrange(3),
                publisher_id=rng.randrange(2),
                advertiser_id=rng.randrange(2),
                traffic_class=(
                    TrafficClass.BOTNET
                    if rng.random() < 0.3
                    else TrafficClass.LEGITIMATE
                ),
            )
        )
    return clicks


DETECTOR_VARIANTS = [
    ("gbf", lambda: GBFDetector(64, 8, 1024, 4, seed=3)),
    ("tbf", lambda: TBFDetector(64, 2048, 4, seed=3)),
    ("tbf-jumping", lambda: TBFJumpingDetector(64, 8, 2048, 4, seed=3)),
    (
        "gbf-time",
        lambda: TimeBasedGBFDetector(
            24.0, 4, 1024, 4, units_per_subwindow=4, seed=3
        ),
    ),
    ("tbf-time", lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)),
]


def make_supervisor(store, factory, checkpoint_every=20, **kwargs):
    pipeline = DetectionPipeline(factory(), billing=make_billing())
    return SupervisedPipeline(
        pipeline, store, checkpoint_every=checkpoint_every,
        record_verdicts=True, **kwargs,
    )


# ----------------------------------------------------------------------
# The tentpole invariant: kill at every Kth click, resume, get the exact
# verdicts and billing of an uninterrupted run — for all five variants.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name,factory", DETECTOR_VARIANTS)
def test_crash_resume_bit_identical(name, factory, tmp_path):
    clicks = make_stream()
    baseline = make_supervisor(tmp_path / "base", factory).run(clicks)
    assert baseline.processed == len(clicks)
    assert baseline.checkpoints_written >= len(clicks) // 20

    injector = FaultInjector(seed=5)
    kill_every = 30
    for crash_at in range(kill_every, len(clicks), kill_every):
        store = CheckpointStore(tmp_path / f"crash-{crash_at}")
        with pytest.raises(InjectedCrash):
            make_supervisor(store, factory).run(
                injector.crash_stream(clicks, crash_at)
            )
        resumed = make_supervisor(store, factory).run(clicks)
        assert resumed.resumed
        assert resumed.start_offset > 0
        # Verdicts from the resume point on are bit-identical ...
        assert resumed.verdicts == baseline.verdicts[resumed.start_offset:]
        # ... and totals equal the uninterrupted run: nothing was
        # double-charged, no accepted click was un-flagged.
        assert resumed.billing_summary == baseline.billing_summary
        assert (resumed.processed, resumed.valid, resumed.duplicates,
                resumed.budget_exhausted) == (
            baseline.processed, baseline.valid, baseline.duplicates,
            baseline.budget_exhausted)
        board = resumed.scoreboard
        base_board = baseline.scoreboard
        assert board.by_source == base_board.by_source
        assert board.by_publisher == base_board.by_publisher


@pytest.mark.parametrize("mode", ["flip-byte", "truncate", "zero-prefix"])
@pytest.mark.parametrize("name,factory", DETECTOR_VARIANTS[:2])
def test_corrupt_latest_checkpoint_falls_back(name, factory, mode, tmp_path):
    clicks = make_stream()
    baseline = make_supervisor(tmp_path / "base", factory).run(clicks)

    injector = FaultInjector(seed=7)
    store = CheckpointStore(tmp_path / "crash")
    with pytest.raises(InjectedCrash):
        make_supervisor(store, factory).run(injector.crash_stream(clicks, 150))
    assert len(store.paths()) == 2  # keep=2 generations on disk

    injector.corrupt_file(store.latest, mode)
    resumed = make_supervisor(store, factory).run(clicks)
    assert resumed.resumed
    assert resumed.fallbacks == 1  # the rotten generation was skipped
    assert resumed.start_offset == 120  # previous good generation, not a reset
    assert resumed.verdicts == baseline.verdicts[120:]
    assert resumed.billing_summary == baseline.billing_summary


def test_all_checkpoints_corrupt_raises_recovery_error(tmp_path):
    clicks = make_stream()
    store = CheckpointStore(tmp_path / "store")
    injector = FaultInjector(seed=9)
    with pytest.raises(InjectedCrash):
        make_supervisor(store, lambda: TBFDetector(64, 2048, 4, seed=3)).run(
            injector.crash_stream(clicks, 100)
        )
    for path in store.paths():
        injector.corrupt_file(path, "flip-byte")
    with pytest.raises(RecoveryError):
        make_supervisor(store, lambda: TBFDetector(64, 2048, 4, seed=3)).run(clicks)


def test_scheme_mismatch_is_unrecoverable(tmp_path):
    from repro.streams.click import IdentifierScheme

    clicks = make_stream()
    store = CheckpointStore(tmp_path / "store")
    make_supervisor(store, lambda: TBFDetector(64, 2048, 4, seed=3)).run(clicks)
    pipeline = DetectionPipeline(
        TBFDetector(64, 2048, 4, seed=3),
        billing=make_billing(),
        scheme=IdentifierScheme.IP,
    )
    with pytest.raises(RecoveryError, match="scheme"):
        SupervisedPipeline(pipeline, store).run(clicks)


def test_resume_skips_work_already_done(tmp_path):
    clicks = make_stream()
    store = CheckpointStore(tmp_path / "store")
    make_supervisor(store, lambda: TBFDetector(64, 2048, 4, seed=3)).run(clicks)
    again = make_supervisor(store, lambda: TBFDetector(64, 2048, 4, seed=3)).run(clicks)
    assert again.resumed
    assert again.start_offset == len(clicks)
    assert again.verdicts == []  # nothing re-processed, totals intact
    assert again.processed == len(clicks)


# ----------------------------------------------------------------------
# CheckpointStore mechanics
# ----------------------------------------------------------------------

def test_store_prunes_to_keep_and_orders_generations(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    for generation in range(7):
        store.save(b"generation %d" % generation)
    paths = store.paths()
    assert len(paths) == 3
    assert [p.read_bytes() for p in paths] == [
        b"generation 4", b"generation 5", b"generation 6",
    ]
    assert store.latest == paths[-1]
    # No temp files left behind by the atomic write protocol.
    assert not list(tmp_path.glob(".ckpt-*"))


def test_store_blobs_newest_first(tmp_path):
    store = CheckpointStore(tmp_path, keep=2)
    store.save(b"old")
    store.save(b"new")
    blobs = [blob for _, blob in store.blobs()]
    assert blobs == [b"new", b"old"]


# ----------------------------------------------------------------------
# Fault injector: deterministic, and the faults do what they claim
# ----------------------------------------------------------------------

def test_injector_is_deterministic():
    blob = bytes(range(256)) * 4
    a, b = FaultInjector(seed=3), FaultInjector(seed=3)
    for mode in ("flip-byte", "truncate", "zero-prefix"):
        assert a.corrupt(blob, mode) == b.corrupt(blob, mode)
        assert a.corrupt(blob, mode) != blob
    other = FaultInjector(seed=4)
    assert other.corrupt(blob, "flip-byte") != a.corrupt(blob, "flip-byte")

    clicks = make_stream(60)
    order_a = [c.timestamp for c in a.reorder_stream(clicks, 5)]
    order_b = [c.timestamp for c in b.reorder_stream(clicks, 5)]
    assert order_a == order_b
    assert sorted(order_a) == [c.timestamp for c in clicks]
    assert order_a != [c.timestamp for c in clicks]  # it actually scrambled


def test_crash_stream_delivers_exactly_n_clicks():
    clicks = make_stream(50)
    injector = FaultInjector(seed=1)
    seen = []
    with pytest.raises(InjectedCrash):
        for click in injector.crash_stream(clicks, 17):
            seen.append(click)
    assert seen == clicks[:17]


def test_corrupted_blob_never_loads(tmp_path):
    from repro.core import save_detector, load_detector

    blob = save_detector(TBFDetector(64, 2048, 4, seed=3))
    injector = FaultInjector(seed=2)
    for mode in ("flip-byte", "truncate", "zero-prefix"):
        with pytest.raises(CheckpointError):
            load_detector(injector.corrupt(blob, mode))


def test_delay_stream_holds_clicks_back():
    clicks = make_stream(80)
    injector = FaultInjector(seed=6)
    delayed = list(injector.delay_stream(clicks, hold_back=4, probability=0.2))
    assert sorted(c.timestamp for c in delayed) == [c.timestamp for c in clicks]
    assert [c.timestamp for c in delayed] != [c.timestamp for c in clicks]


# ----------------------------------------------------------------------
# Input hardening: reorder buffer and dead letters
# ----------------------------------------------------------------------

def test_reorder_buffer_repairs_bounded_displacement():
    clicks = make_stream(120)
    scrambled = list(FaultInjector(seed=8).reorder_stream(clicks, 6))
    buffer = ReorderBuffer(capacity=8)
    restored = []
    for click in scrambled:
        restored.extend(buffer.push(click))
    restored.extend(buffer.flush())
    assert [c.timestamp for c in restored] == [c.timestamp for c in clicks]
    assert buffer.stats.reordered > 0
    assert buffer.stats.dropped == 0


def test_reorder_buffer_clamps_within_tolerance_and_drops_beyond():
    sink = DeadLetterSink()
    buffer = ReorderBuffer(capacity=1, skew_tolerance=0.5, dead_letters=sink)
    emitted = []

    def push(timestamp):
        emitted.extend(buffer.push(Click(timestamp, 1, 1, 0, 0, 0)))

    for timestamp in (10.0, 11.0, 12.0, 10.7, 3.0, 13.0):
        push(timestamp)
    emitted.extend(buffer.flush())
    stamps = [c.timestamp for c in emitted]
    assert stamps == sorted(stamps)  # monotonic: safe for time-based detectors
    assert buffer.stats.clamped == 1  # 10.7 lifted to 11.0
    assert stamps.count(11.0) == 2
    assert buffer.stats.dropped == 1  # 3.0 is hopeless
    assert sink.counts == {"late": 1}


def test_time_detector_survives_scrambled_stream_via_supervisor(tmp_path):
    clicks = make_stream(120)
    scrambled = list(FaultInjector(seed=8).reorder_stream(clicks, 6))

    # Unhardened: a single regressed timestamp kills the run.
    bare = DetectionPipeline(TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3))
    with pytest.raises(StreamError):
        bare.run(scrambled)

    # Hardened: the supervisor's reorder buffer repairs it, and the
    # verdict stream equals the in-order run's.
    in_order = make_supervisor(
        tmp_path / "base", lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)
    ).run(clicks)
    hardened = make_supervisor(
        tmp_path / "hard",
        lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3),
        reorder_capacity=8,
    ).run(scrambled)
    assert hardened.processed == len(clicks)
    assert sorted(map(bool, hardened.verdicts)) == sorted(map(bool, in_order.verdicts))
    assert hardened.reordered > 0


def test_crash_resume_with_pending_reorder_buffer(tmp_path):
    clicks = make_stream(150)
    scrambled = list(FaultInjector(seed=8).reorder_stream(clicks, 4))
    factory = lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)

    baseline = make_supervisor(
        tmp_path / "base", factory, reorder_capacity=6
    ).run(scrambled)

    store = CheckpointStore(tmp_path / "crash")
    injector = FaultInjector(seed=5)
    with pytest.raises(InjectedCrash):
        make_supervisor(store, factory, reorder_capacity=6).run(
            injector.crash_stream(scrambled, 97)
        )
    resumed = make_supervisor(store, factory, reorder_capacity=6).run(scrambled)
    assert resumed.resumed
    # The checkpoint carried the buffered clicks: totals match exactly.
    assert resumed.billing_summary == baseline.billing_summary
    assert (resumed.processed, resumed.valid, resumed.duplicates) == (
        baseline.processed, baseline.valid, baseline.duplicates)


def test_pending_buffer_without_reorder_capacity_is_unrecoverable(tmp_path):
    clicks = make_stream(150)
    factory = lambda: TBFDetector(64, 2048, 4, seed=3)
    store = CheckpointStore(tmp_path / "store")
    injector = FaultInjector(seed=5)
    with pytest.raises(InjectedCrash):
        make_supervisor(store, factory, reorder_capacity=6).run(
            injector.crash_stream(clicks, 97)
        )
    with pytest.raises(RecoveryError, match="reorder"):
        make_supervisor(store, factory).run(clicks)


def test_dead_letter_sink_quarantines_invalid_clicks(tmp_path):
    clicks = make_stream(60)
    clicks[10] = Click(float("nan"), 1, 1, 0, 0, 0)
    clicks[20] = "not a click"
    clicks[30] = Click(5.0, 1, 1, 0, 0, 0, cost=-1.0)
    sink = DeadLetterSink()
    supervisor = make_supervisor(
        tmp_path / "store",
        lambda: TBFDetector(64, 2048, 4, seed=3),
        dead_letters=sink,
    )
    result = supervisor.run(clicks)
    assert result.processed == 57
    assert result.quarantined == 3
    assert sink.counts == {
        "bad-timestamp": 1, "not-a-click": 1, "negative-cost": 1,
    }
    assert len(sink.samples) == 3


def test_dead_letter_sink_sample_bound():
    sink = DeadLetterSink(sample_size=2)
    for index in range(10):
        sink.record(index, reason="test")
    assert sink.total == 10
    assert len(sink.samples) == 2


# ----------------------------------------------------------------------
# Reader hardening feeds the same sink
# ----------------------------------------------------------------------

def test_jsonl_reader_skip_malformed_counts_lines(tmp_path):
    path = tmp_path / "stream.jsonl"
    write_clicks_jsonl(path, make_stream(5))
    lines = path.read_text().splitlines()
    lines.insert(2, "{ this is not json }")
    lines.append('{"timestamp": "noon"}')
    path.write_text("\n".join(lines) + "\n")

    # Default mode: first bad record aborts, naming the line.
    with pytest.raises(StreamError, match=r"stream\.jsonl:3"):
        list(read_clicks_jsonl(path))

    # Skip mode: everything parseable loads; the sink holds the rest.
    sink = DeadLetterSink()
    clicks = list(read_clicks_jsonl(path, on_malformed=sink))
    assert len(clicks) == 5
    assert sink.total == 2
    assert [letter.item.line_number for letter in sink.samples] == [3, 7]


def test_csv_reader_skip_malformed(tmp_path):
    from repro.streams.io import read_clicks_csv, write_clicks_csv

    path = tmp_path / "stream.csv"
    write_clicks_csv(path, make_stream(4))
    lines = path.read_text().splitlines()
    lines.insert(3, "only,three,fields")
    path.write_text("\n".join(lines) + "\n")

    with pytest.raises(StreamError, match=r"stream\.csv:4"):
        list(read_clicks_csv(path))
    sink = DeadLetterSink()
    assert len(list(read_clicks_csv(path, on_malformed=sink))) == 4
    assert sink.total == 1
