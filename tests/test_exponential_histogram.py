"""Unit and property tests for the Exponential Histogram substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.windows import (
    ExponentialHistogram,
    SlidingWindowCounter,
    exact_window_count,
)


class TestBasics:
    def test_empty_estimate_zero(self):
        assert ExponentialHistogram(16).estimate() == 0

    def test_counts_small_exactly(self):
        histogram = ExponentialHistogram(100, epsilon=0.5)
        for _ in range(3):
            histogram.observe(True)
        # With <= max_per_size singleton buckets no merge occurred: exact.
        assert histogram.estimate() == 3

    def test_zeros_do_not_count(self):
        histogram = ExponentialHistogram(100)
        for _ in range(50):
            histogram.observe(False)
        assert histogram.estimate() == 0

    def test_old_ones_expire(self):
        histogram = ExponentialHistogram(8, epsilon=0.1)
        histogram.observe(True)
        for _ in range(20):
            histogram.observe(False)
        assert histogram.estimate() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialHistogram(0)
        with pytest.raises(ConfigurationError):
            ExponentialHistogram(10, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialHistogram(10, epsilon=2.0)

    def test_bucket_count_logarithmic(self):
        histogram = ExponentialHistogram(1 << 12, epsilon=0.25)
        for _ in range(1 << 12):
            histogram.observe(True)
        # O((1/eps) * log N) buckets: generous cap of (k+1)(log2 N + 2).
        assert histogram.num_buckets <= (4 + 1) * (12 + 2)
        assert histogram.memory_bits < (1 << 12)  # far below one bit/element


class TestAccuracy:
    @pytest.mark.parametrize("epsilon", [0.5, 0.25, 0.1])
    @pytest.mark.parametrize("density", [0.05, 0.5, 0.95])
    def test_relative_error_bound(self, epsilon, density):
        window = 512
        histogram = ExponentialHistogram(window, epsilon=epsilon)
        rng = random.Random(42)
        bits = []
        worst = 0.0
        for step in range(6 * window):
            bit = rng.random() < density
            bits.append(bit)
            histogram.observe(bit)
            true = exact_window_count(bits, window)
            estimate = histogram.estimate()
            if true > 0:
                worst = max(worst, abs(estimate - true) / true)
        assert worst <= epsilon + 1e-9

    def test_all_ones_estimate(self):
        window = 256
        histogram = ExponentialHistogram(window, epsilon=0.1)
        for _ in range(5 * window):
            histogram.observe(True)
        assert histogram.estimate() == pytest.approx(window, rel=0.1)


@settings(max_examples=60, deadline=None)
@given(
    bits=st.lists(st.booleans(), min_size=1, max_size=300),
    window=st.integers(1, 64),
    epsilon=st.sampled_from([0.5, 0.2, 0.1]),
)
def test_property_error_within_epsilon(bits, window, epsilon):
    histogram = ExponentialHistogram(window, epsilon=epsilon)
    seen = []
    for bit in bits:
        histogram.observe(bit)
        seen.append(bit)
        true = exact_window_count(seen, window)
        estimate = histogram.estimate()
        if true == 0:
            assert estimate == 0
        else:
            assert abs(estimate - true) <= epsilon * true + 1e-9


class TestSlidingWindowCounter:
    def test_rate_tracks_duplicate_fraction(self):
        counter = SlidingWindowCounter(1000, epsilon=0.1)
        rng = random.Random(7)
        for _ in range(5000):
            counter.observe(rng.random() < 0.3)
        assert counter.rate() == pytest.approx(0.3, abs=0.06)

    def test_rate_before_window_full(self):
        counter = SlidingWindowCounter(1000)
        counter.observe(True)
        counter.observe(False)
        assert counter.rate() == pytest.approx(0.5, abs=0.01)

    def test_empty_rate(self):
        assert SlidingWindowCounter(10).rate() == 0.0

    def test_memory_sublinear(self):
        counter = SlidingWindowCounter(1 << 14, epsilon=0.2)
        for step in range(1 << 14):
            counter.observe(step % 2 == 0)
        assert counter.memory_bits < (1 << 14) // 8


@settings(max_examples=50, deadline=None)
@given(
    bits=st.lists(st.booleans(), min_size=1, max_size=400),
    epsilon=st.sampled_from([0.5, 0.25, 0.1]),
)
def test_property_structural_invariants(bits, epsilon):
    # DGIM structure: bucket sizes are powers of two, sizes are
    # non-decreasing from newest to oldest, each size class holds at
    # most max_per_size buckets, and total matches the bucket sum.
    histogram = ExponentialHistogram(64, epsilon=epsilon)
    for bit in bits:
        histogram.observe(bit)
        buckets = list(histogram._buckets)
        sizes = [size for _, size in buckets]
        assert all(size & (size - 1) == 0 for size in sizes), "power-of-two sizes"
        assert sizes == sorted(sizes), "newest-first => sizes non-decreasing"
        for size in set(sizes):
            assert sizes.count(size) <= histogram._max_per_size
        assert histogram._total == sum(sizes)
        timestamps = [timestamp for timestamp, _ in buckets]
        assert timestamps == sorted(timestamps, reverse=True), "newest first"
