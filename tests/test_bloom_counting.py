"""Unit tests for the counting Bloom filter."""

import pytest

from repro.bloom import CountingBloomFilter
from repro.errors import CapacityError, ConfigurationError
from repro.hashing import SplitMixFamily


def test_insert_then_contains():
    cbf = CountingBloomFilter(2048, num_hashes=4, seed=1)
    cbf.add(10)
    assert cbf.contains(10)
    assert not cbf.contains(999999)


def test_remove_undoes_insert():
    cbf = CountingBloomFilter(2048, num_hashes=4, seed=1)
    cbf.add(10)
    cbf.remove(10)
    assert not cbf.contains(10)
    assert cbf.nonzero_counters() == 0


def test_remove_keeps_other_elements():
    cbf = CountingBloomFilter(1 << 14, num_hashes=4, counter_bits=8, seed=2)
    for identifier in range(100):
        cbf.add(identifier)
    cbf.remove(50)
    for identifier in range(100):
        if identifier != 50:
            assert cbf.contains(identifier)  # no false negatives from deletes


def test_counter_saturation_recorded():
    cbf = CountingBloomFilter(64, num_hashes=1, counter_bits=4, seed=0)
    for _ in range(20):
        cbf.add(7)  # same slot, counter caps at 15
    assert cbf.saturation_events == 5


def test_overflow_raises_when_saturation_disabled():
    cbf = CountingBloomFilter(64, num_hashes=1, counter_bits=4, seed=0, saturate=False)
    for _ in range(15):
        cbf.add(7)
    with pytest.raises(CapacityError):
        cbf.add(7)


def test_saturated_counter_sticks_after_removals():
    # The §3.3 failure mode: once saturated, removals cannot drain the
    # counter, leaving a stuck-on membership.
    cbf = CountingBloomFilter(64, num_hashes=1, counter_bits=4, seed=0)
    for _ in range(16):
        cbf.add(7)
    for _ in range(16):
        cbf.remove(7)
    assert cbf.contains(7)


def test_add_filter_is_pointwise_sum():
    family = SplitMixFamily(3, 512, seed=4)
    a = CountingBloomFilter(512, counter_bits=8, family=family)
    b = CountingBloomFilter(512, counter_bits=8, family=family)
    a.add(1)
    b.add(1)
    b.add(2)
    a.add_filter(b)
    index = family.indices(1)[0]
    assert a.counter_value(index) >= 2
    assert a.contains(2)
    assert a.count_inserted == 3


def test_subtract_filter_expires_subwindow():
    family = SplitMixFamily(3, 512, seed=4)
    main = CountingBloomFilter(512, counter_bits=8, family=family)
    sub = CountingBloomFilter(512, counter_bits=8, family=family)
    for identifier in (5, 6, 7):
        main.add(identifier)
        sub.add(identifier)
    main.add(99)
    main.subtract_filter(sub)
    assert not main.contains(5)
    assert main.contains(99)


def test_add_filter_requires_compatible_geometry():
    a = CountingBloomFilter(512, counter_bits=8)
    b = CountingBloomFilter(256, counter_bits=8)
    with pytest.raises(ConfigurationError):
        a.add_filter(b)


def test_memory_accounts_counter_width():
    assert CountingBloomFilter(1000, counter_bits=4).memory_bits == 4000
    assert CountingBloomFilter(1000, counter_bits=16).memory_bits == 16000


def test_invalid_counter_bits():
    with pytest.raises(ConfigurationError):
        CountingBloomFilter(100, counter_bits=3)


def test_clear():
    cbf = CountingBloomFilter(256, seed=1)
    cbf.add(5)
    cbf.clear()
    assert cbf.nonzero_counters() == 0
    assert cbf.count_inserted == 0
