"""Tests for the multi-process parallel detection engine.

The contract under test: a ``ParallelShardedDetector`` /
``ParallelTimeShardedDetector`` is observationally *bit-identical* to
the single-process sharded detector it wraps — same verdicts in stream
order, same per-shard checkpoint blobs, same summed operation counters —
while executing each shard in its own worker process over shared-memory
rings.  Failure handling: SIGKILLed workers respawn from their last
checkpoint and replay the journal to the exact same state; with respawn
exhausted or disabled the shard degrades under fail-open/fail-closed.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import load_detector, save_detector
from repro.detection.sharded import (
    FailoverPolicy,
    ShardedDetector,
    TimeShardedDetector,
    route_batch,
)
from repro.errors import ConfigurationError, ParallelError
from repro.parallel import (
    BatchRing,
    ParallelShardedDetector,
    ParallelTimeShardedDetector,
    lift_sharded,
)

START_METHOD = os.environ.get("REPRO_PARALLEL_START_METHOD") or None


def make_pair(num_shards, seed=1, window=64, entries=4096, num_hashes=4, **options):
    """A (reference, parallel) pair built from identical configs."""
    reference = ShardedDetector._of_tbf(window, num_shards, entries, num_hashes, seed=seed)
    parallel = ParallelShardedDetector._of_tbf(
        window,
        num_shards,
        total_entries=entries,
        num_hashes=num_hashes,
        seed=seed,
        start_method=START_METHOD,
        slot_items=512,
        **options,
    )
    return reference, parallel


def sum_op_counts(detector):
    totals = {
        "word_reads": 0,
        "word_writes": 0,
        "hash_evaluations": 0,
        "elements": 0,
        "duplicates": 0,
    }
    for shard in detector.shards:
        counter = shard.counter
        totals["word_reads"] += counter.word_reads
        totals["word_writes"] += counter.word_writes
        totals["hash_evaluations"] += counter.hash_evaluations
        totals["elements"] += counter.elements
        totals["duplicates"] += getattr(shard, "duplicates", 0)
    return totals


# ----------------------------------------------------------------------
# The ring transport itself
# ----------------------------------------------------------------------

class TestBatchRing:
    def test_push_pop_roundtrip(self):
        import multiprocessing

        ring = BatchRing.create(multiprocessing.get_context(), slots=2, slot_bytes=64)
        try:
            payload = np.arange(8, dtype=np.uint64)
            assert ring.push(3, (payload.tobytes(),), count=8, num_hashes=2)
            op, count, num_hashes, view = ring.pop(timeout=1.0)
            assert (op, count, num_hashes) == (3, 8, 2)
            received = np.frombuffer(view, dtype=np.uint64, count=8).copy()
            del view  # drop the shared-memory view before closing
            assert np.array_equal(received, payload)
            ring.release_slot()
        finally:
            ring.close()

    def test_push_blocks_when_full(self):
        import multiprocessing

        ring = BatchRing.create(multiprocessing.get_context(), slots=2, slot_bytes=8)
        try:
            assert ring.push(1, timeout=0.1)
            assert ring.push(1, timeout=0.1)
            assert not ring.push(1, timeout=0.1)  # full: times out
            ring.pop(timeout=1.0)
            ring.release_slot()
            assert ring.push(1, timeout=0.1)  # freed one slot
        finally:
            ring.close()

    def test_oversized_payload_rejected(self):
        import multiprocessing

        ring = BatchRing.create(multiprocessing.get_context(), slots=2, slot_bytes=16)
        try:
            with pytest.raises(ConfigurationError, match="exceeds ring slot"):
                ring.push(1, (b"x" * 17,))
            # The slot was returned: the ring still has full capacity.
            assert ring.push(1, (b"x" * 16,), timeout=0.1)
            assert ring.push(1, timeout=0.1)
        finally:
            ring.close()


# ----------------------------------------------------------------------
# Bit-identical equivalence with the single-process detectors
# ----------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_verdicts_counters_checkpoints(self, num_shards):
        reference, parallel = make_pair(num_shards)
        rng = np.random.default_rng(13)
        try:
            for _ in range(4):
                ids = rng.integers(0, 400, size=2500, dtype=np.uint64)
                assert np.array_equal(
                    reference.process_batch(ids), parallel.process_batch(ids)
                )
            assert parallel.op_counts() == sum_op_counts(reference)
            for shard in range(num_shards):
                assert parallel.checkpoint_shard(shard) == reference.checkpoint_shard(
                    shard
                )
            assert parallel.shard_arrivals() == reference.shard_arrivals()
        finally:
            parallel.close()

    def test_scalar_process_matches(self):
        reference, parallel = make_pair(2)
        rng = np.random.default_rng(3)
        try:
            for identifier in rng.integers(0, 50, size=300, dtype=np.uint64):
                assert reference.process(int(identifier)) == parallel.process(
                    int(identifier)
                )
        finally:
            parallel.close()

    def test_sub_batches_split_across_slots(self):
        # Batches far larger than slot_items must split transparently.
        reference, parallel = make_pair(2, entries=8192)
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 2000, size=30_000, dtype=np.uint64)
        try:
            assert np.array_equal(
                reference.process_batch(ids), parallel.process_batch(ids)
            )
        finally:
            parallel.close()

    def test_time_based_equivalence(self):
        reference = TimeShardedDetector._of_tbf(10.0, 8, 3, 4096, 4, seed=2)
        parallel = ParallelTimeShardedDetector._of_tbf(
            10.0, 8, 3, total_entries=4096, num_hashes=4, seed=2,
            start_method=START_METHOD, slot_items=256,
        )
        rng = np.random.default_rng(8)
        try:
            timestamps = np.sort(rng.uniform(0.0, 60.0, size=6000))
            ids = rng.integers(0, 500, size=6000, dtype=np.uint64)
            assert np.array_equal(
                reference.process_batch_at(ids, timestamps),
                parallel.process_batch_at(ids, timestamps),
            )
            for shard in range(3):
                assert parallel.checkpoint_shard(shard) == reference.checkpoint_shard(
                    shard
                )
        finally:
            parallel.close()

    def test_sync_base_writes_final_state_back(self):
        reference, parallel = make_pair(2)
        rng = np.random.default_rng(4)
        ids = rng.integers(0, 300, size=5000, dtype=np.uint64)
        try:
            reference.process_batch(ids)
            parallel.process_batch(ids)
        finally:
            parallel.close(sync=True)
        for expected, synced in zip(reference.shards, parallel.base.shards):
            assert save_detector(expected) == save_detector(synced)
        assert parallel.base.shard_arrivals() == reference.shard_arrivals()

    # The acceptance property: random streams and configs, workers in
    # {1, 2, 4} — verdicts, summed op counts, and per-shard checkpoint
    # states all bit-identical to the single-process run.
    @settings(max_examples=8, deadline=None)
    @given(
        workers=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        universe=st.integers(min_value=8, max_value=1500),
        length=st.integers(min_value=1, max_value=4000),
        num_hashes=st.integers(min_value=2, max_value=6),
    )
    def test_property_equivalence(self, workers, seed, universe, length, num_hashes):
        reference, parallel = make_pair(
            workers, seed=seed % 1000, num_hashes=num_hashes
        )
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, universe, size=length, dtype=np.uint64)
        try:
            assert np.array_equal(
                reference.process_batch(ids), parallel.process_batch(ids)
            )
            assert parallel.op_counts() == sum_op_counts(reference)
            for shard in range(workers):
                assert parallel.checkpoint_shard(shard) == reference.checkpoint_shard(
                    shard
                )
        finally:
            parallel.close()


# ----------------------------------------------------------------------
# Fleet checkpointing: two-phase manifest, save/load round-trip
# ----------------------------------------------------------------------

class TestFleetCheckpoint:
    def test_manifest_roundtrip_resumes_identically(self):
        reference, parallel = make_pair(2)
        rng = np.random.default_rng(17)
        warmup = rng.integers(0, 300, size=4000, dtype=np.uint64)
        more = rng.integers(0, 300, size=2000, dtype=np.uint64)
        try:
            reference.process_batch(warmup)
            parallel.process_batch(warmup)
            blob = save_detector(parallel)  # dispatches to checkpoint()
        finally:
            parallel.close()
        restored = load_detector(blob)
        assert isinstance(restored, ParallelShardedDetector)
        try:
            assert np.array_equal(
                reference.process_batch(more), restored.process_batch(more)
            )
            assert restored.shard_arrivals() == reference.shard_arrivals()
        finally:
            restored.close()

    def test_manifest_preserves_engine_options(self):
        _, parallel = make_pair(
            2, death_policy=FailoverPolicy.FAIL_OPEN, max_respawns=7
        )
        try:
            blob = parallel.checkpoint()
        finally:
            parallel.close()
        restored = load_detector(blob)
        try:
            assert restored.death_policy is FailoverPolicy.FAIL_OPEN
            assert restored.max_respawns == 7
            assert restored.slot_items == 512
        finally:
            restored.close()

    def test_checkpoint_after_traffic_equals_reference_frame_payloads(self):
        # Phase-1 blobs inside the manifest must equal the reference
        # detector's shard frames, byte for byte.
        reference, parallel = make_pair(3)
        rng = np.random.default_rng(23)
        ids = rng.integers(0, 700, size=9000, dtype=np.uint64)
        try:
            reference.process_batch(ids)
            parallel.process_batch(ids)
            from repro.detection.sharded import unpack_frame

            header, payload = unpack_frame(parallel.checkpoint())
            offset = 0
            for shard, length in zip(reference.shards, header["lengths"]):
                assert payload[offset : offset + length] == save_detector(shard)
                offset += length
        finally:
            parallel.close()

    def test_custom_router_rejected(self):
        from repro.core import TBFDetector

        shards = [TBFDetector(64, 1024, 4, seed=i) for i in range(2)]
        sharded = ShardedDetector(shards, router=lambda identifier: identifier % 2)
        with pytest.raises(ConfigurationError, match="default router"):
            ParallelShardedDetector(sharded)


# ----------------------------------------------------------------------
# Worker death: respawn-from-checkpoint, journal replay, degrade
# ----------------------------------------------------------------------

class TestWorkerDeath:
    def test_sigkill_mid_run_respawns_to_identical_state(self):
        reference, parallel = make_pair(3, seed=2)
        rng = np.random.default_rng(11)
        chunks = [rng.integers(0, 400, size=1500, dtype=np.uint64) for _ in range(8)]
        try:
            for index, chunk in enumerate(chunks):
                if index == 3:
                    os.kill(parallel.worker_pids()[1], signal.SIGKILL)
                assert np.array_equal(
                    reference.process_batch(chunk), parallel.process_batch(chunk)
                )
            assert parallel.worker_deaths >= 1
            assert parallel.worker_respawns >= 1
            assert not parallel.is_degraded
            # Final duplicate counts and states equal the uninterrupted run.
            assert parallel.op_counts() == sum_op_counts(reference)
            for shard in range(3):
                assert parallel.checkpoint_shard(shard) == reference.checkpoint_shard(
                    shard
                )
            snapshot = parallel.telemetry_snapshot()
            assert snapshot["counters"]["worker_deaths"] >= 1
            assert snapshot["counters"]["worker_respawns"] >= 1
        finally:
            parallel.close()

    def test_kill_after_midrun_checkpoint_replays_journal_tail(self):
        # A periodic checkpoint truncates the journal; the kill then
        # replays only the tail — state must still match exactly.
        reference, parallel = make_pair(2, seed=6, checkpoint_every_items=1000)
        rng = np.random.default_rng(29)
        chunks = [rng.integers(0, 300, size=900, dtype=np.uint64) for _ in range(6)]
        try:
            for index, chunk in enumerate(chunks):
                if index == 4:
                    for pid in parallel.worker_pids():
                        os.kill(pid, signal.SIGKILL)
                assert np.array_equal(
                    reference.process_batch(chunk), parallel.process_batch(chunk)
                )
            assert parallel.op_counts() == sum_op_counts(reference)
        finally:
            parallel.close()

    def test_respawn_disabled_degrades_with_policy(self):
        reference, parallel = make_pair(
            3, seed=2, respawn=False, death_policy=FailoverPolicy.FAIL_OPEN
        )
        rng = np.random.default_rng(7)
        first = rng.integers(0, 400, size=1000, dtype=np.uint64)
        second = rng.integers(0, 400, size=1000, dtype=np.uint64)
        try:
            parallel.process_batch(first)
            os.kill(parallel.worker_pids()[0], signal.SIGKILL)
            verdicts = parallel.process_batch(second)
            assert parallel.is_degraded
            assert 0 in parallel.degraded_shards()
            shard_of = route_batch(second, 3)
            # Degraded shard answers fail-open: nothing flagged duplicate.
            assert not verdicts[shard_of == 0].any()
            snapshot = parallel.telemetry_snapshot()
            assert snapshot["gauges"]["degraded_shards"] == 1.0
            assert snapshot["workers"]["0"]["degraded"] == 1.0
        finally:
            parallel.close()

    def test_fail_closed_policy_flags_everything(self):
        _, parallel = make_pair(
            2, respawn=False, death_policy=FailoverPolicy.FAIL_CLOSED
        )
        rng = np.random.default_rng(9)
        ids = rng.integers(0, 100, size=500, dtype=np.uint64)
        try:
            os.kill(parallel.worker_pids()[1], signal.SIGKILL)
            verdicts = parallel.process_batch(ids)
            shard_of = route_batch(ids, 2)
            assert verdicts[shard_of == 1].all()
        finally:
            parallel.close()

    def test_explicit_fail_and_restore_worker(self):
        reference, parallel = make_pair(2, seed=4)
        rng = np.random.default_rng(21)
        first = rng.integers(0, 200, size=1000, dtype=np.uint64)
        second = rng.integers(0, 200, size=1000, dtype=np.uint64)
        third = rng.integers(0, 200, size=1000, dtype=np.uint64)
        try:
            reference.process_batch(first)
            parallel.process_batch(first)

            reference.fail_shard(1, FailoverPolicy.FAIL_OPEN)
            parallel.fail_worker(1, FailoverPolicy.FAIL_OPEN)
            assert np.array_equal(
                reference.process_batch(second), parallel.process_batch(second)
            )

            # Restore both from the same snapshot taken before failure.
            blob = reference.checkpoint_shard(0)  # any valid shard blob
            ref_missed = reference.restore_shard(1, blob)
            par_missed = parallel.restore_worker(1, blob)
            assert ref_missed == par_missed
            assert np.array_equal(
                reference.process_batch(third), parallel.process_batch(third)
            )
        finally:
            parallel.close()

    def test_worker_data_error_propagates(self):
        parallel = ParallelTimeShardedDetector._of_tbf(
            10.0, 8, 2, total_entries=2048, num_hashes=4, seed=1,
            start_method=START_METHOD,
        )
        try:
            parallel.process_batch_at(
                np.array([1, 2, 3], dtype=np.uint64), np.array([5.0, 5.5, 6.0])
            )
            with pytest.raises(ParallelError, match="worker"):
                # Regressing timestamp: deterministic data error — replay
                # would fail identically, so it must surface, not respawn.
                parallel.process_batch_at(
                    np.array([4], dtype=np.uint64), np.array([0.5])
                )
        finally:
            parallel.close()


# ----------------------------------------------------------------------
# Telemetry aggregation
# ----------------------------------------------------------------------

class TestTelemetry:
    def test_snapshot_aggregates_workers(self):
        reference, parallel = make_pair(2)
        rng = np.random.default_rng(31)
        ids = rng.integers(0, 250, size=4000, dtype=np.uint64)
        try:
            reference.process_batch(ids)
            parallel.process_batch(ids)
            snapshot = parallel.telemetry_snapshot()
            expected = reference.telemetry_snapshot()
            assert snapshot["counters"]["elements"] == expected["counters"]["elements"]
            assert (
                snapshot["counters"]["duplicates"]
                == expected["counters"]["duplicates"]
            )
            assert snapshot["gauges"]["workers_alive"] == 2
            assert snapshot["gauges"]["load_imbalance"] == pytest.approx(
                expected["gauges"]["load_imbalance"]
            )
            assert set(snapshot["workers"]) == {"0", "1"}
            for view in snapshot["workers"].values():
                assert view["alive"] == 1.0
        finally:
            parallel.close()

    def test_fp_bound_dispatch(self):
        from repro.telemetry.instruments import theoretical_fp_bound

        reference, parallel = make_pair(2)
        try:
            assert theoretical_fp_bound(parallel) == theoretical_fp_bound(reference)
            assert theoretical_fp_bound(parallel) is not None
        finally:
            parallel.close()

    def test_instrumented_session(self):
        from repro.telemetry import TelemetrySession

        _, parallel = make_pair(2)
        session = TelemetrySession(snapshot_every=10_000)
        try:
            session.instrument_detector(parallel)
            rng = np.random.default_rng(2)
            parallel.process_batch(rng.integers(0, 100, size=500, dtype=np.uint64))
            session.emit()
            rendered = session.registry.to_prometheus()
            assert "repro_detector_gauge" in rendered
            assert "repro_worker_deaths_total" in rendered
        finally:
            parallel.close()


# ----------------------------------------------------------------------
# Lifting helper and guardrails
# ----------------------------------------------------------------------

class TestLift:
    def test_lift_shard_count_mismatch(self):
        sharded = ShardedDetector._of_tbf(64, 2, 2048, 4, seed=1)
        with pytest.raises(ConfigurationError, match="2 shards"):
            lift_sharded(sharded, workers=4)

    def test_lift_passthrough(self):
        _, parallel = make_pair(2)
        try:
            assert lift_sharded(parallel) is parallel
        finally:
            parallel.close()

    def test_lift_rejects_unsharded(self):
        from repro.core import TBFDetector

        with pytest.raises(ConfigurationError, match="cannot parallelize"):
            lift_sharded(TBFDetector(64, 1024, 4, seed=1))

    def test_engine_rejects_bad_options(self):
        sharded = ShardedDetector._of_tbf(64, 2, 2048, 4, seed=1)
        with pytest.raises(ConfigurationError, match="slots"):
            ParallelShardedDetector(sharded, slots=1)
        with pytest.raises(ConfigurationError, match="max_respawns"):
            ParallelShardedDetector(sharded, max_respawns=-1)
