"""Checkpoint blobs must survive multiprocessing transport bit-identically.

The parallel engine ships detector state between processes three ways:
as the startup blob over a pipe, as the per-shard checkpoint response,
and inside the fleet manifest.  Under the ``spawn`` start method the
child shares *nothing* with the parent — whatever arrives must rebuild
the exact detector from bytes alone.  This suite pushes every detector
variant's checkpoint through a spawn-context child that loads it,
re-serializes it, and sends the bytes back: the round trip must be the
identity, and the rebuilt detector must verdict identically.
"""

import multiprocessing
import random

import pytest

from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
    load_detector,
    save_detector,
)
from repro.detection import ShardedDetector, TimeShardedDetector


def _variants():
    return [
        ("gbf", lambda: GBFDetector(64, 8, 1024, 4, seed=3)),
        ("tbf", lambda: TBFDetector(64, 2048, 4, seed=3)),
        ("tbf-jumping", lambda: TBFJumpingDetector(64, 8, 2048, 4, seed=3)),
        (
            "gbf-time",
            lambda: TimeBasedGBFDetector(24.0, 4, 1024, 4, units_per_subwindow=4, seed=3),
        ),
        ("tbf-time", lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)),
        ("sharded", lambda: ShardedDetector._of_tbf(64, 3, 4096, 4, seed=3)),
        ("time-sharded", lambda: TimeShardedDetector._of_tbf(24.0, 8, 3, 4096, 4, seed=3)),
    ]


def _drive(detector, count, seed):
    """Warm a detector with deterministic traffic through either protocol."""
    rng = random.Random(seed)
    process = getattr(detector, "process", None)
    if process is not None:
        for _ in range(count):
            process(rng.randrange(60))
        return
    timestamp = 0.0
    for _ in range(count):
        timestamp += rng.random() * 0.05
        detector.process_at(rng.randrange(60), timestamp)


def _echo_child(conn):
    """Spawn-context child: load each blob, re-save, send the bytes back."""
    while True:
        blob = conn.recv_bytes()
        if not blob:
            return
        conn.send_bytes(save_detector(load_detector(blob)))


@pytest.fixture(scope="module")
def echo():
    """One spawn-context child shared by the module (spawn startup is slow)."""
    ctx = multiprocessing.get_context("spawn")
    parent, child = ctx.Pipe()
    process = ctx.Process(target=_echo_child, args=(child,), daemon=True)
    process.start()
    child.close()
    yield parent
    parent.send_bytes(b"")
    process.join(timeout=30)
    parent.close()


@pytest.mark.parametrize("name,factory", _variants(), ids=[n for n, _ in _variants()])
def test_spawn_transport_is_bit_identical(name, factory, echo):
    detector = factory()
    _drive(detector, 400, seed=7)
    blob = save_detector(detector)

    echo.send_bytes(blob)
    returned = echo.recv_bytes()
    assert returned == blob

    # And the round-tripped detector behaves identically from here on.
    continued = load_detector(returned)
    process = getattr(detector, "process", None)
    if process is not None:
        rng_a, rng_b = random.Random(9), random.Random(9)
        assert [detector.process(rng_a.randrange(60)) for _ in range(300)] == [
            continued.process(rng_b.randrange(60)) for _ in range(300)
        ]
    else:
        rng = random.Random(9)
        timestamp = 25.0
        for _ in range(300):
            timestamp += rng.random() * 0.05
            identifier = rng.randrange(60)
            assert detector.process_at(identifier, timestamp) == continued.process_at(
                identifier, timestamp
            )


@pytest.mark.parametrize("name,factory", _variants(), ids=[n for n, _ in _variants()])
def test_pickle_of_checkpoint_blob_is_stable(name, factory):
    # multiprocessing pickles pipe payloads; a blob must be pickle-stable.
    import pickle

    detector = factory()
    _drive(detector, 200, seed=4)
    blob = save_detector(detector)
    assert pickle.loads(pickle.dumps(blob, protocol=4)) == blob
    # Saving twice without intervening traffic is deterministic.
    assert save_detector(detector) == blob
