"""Tests for sharded (distributed) duplicate detection."""

import random

import pytest

from repro.baselines import TimeBasedExactDetector
from repro.core import TBFDetector, TimeBasedTBFDetector
from repro.detection import ShardedDetector, TimeShardedDetector, default_router
from repro.errors import ConfigurationError
from repro.windows import TimeBasedSlidingWindow


class TestRouter:
    def test_stable_and_in_range(self):
        route = default_router(7)
        for identifier in range(1000):
            shard = route(identifier)
            assert 0 <= shard < 7
            assert route(identifier) == shard

    def test_roughly_balanced(self):
        route = default_router(8)
        counts = [0] * 8
        for identifier in range(80_000):
            counts[route(identifier)] += 1
        assert max(counts) < 1.1 * min(counts)


class TestShardedDetector:
    def test_needs_shards(self):
        with pytest.raises(ConfigurationError):
            ShardedDetector([])
        with pytest.raises(ConfigurationError):
            ShardedDetector._of_tbf(1024, 0, 1 << 14)

    def test_immediate_repeat_detected(self):
        sharded = ShardedDetector._of_tbf(1024, 4, 1 << 16, seed=1)
        assert sharded.process(42) is False
        assert sharded.process(42) is True
        assert sharded.query(42) is True

    def test_repeats_route_to_same_shard(self):
        sharded = ShardedDetector._of_tbf(1024, 8, 1 << 16, seed=1)
        rng = random.Random(3)
        for _ in range(2000):
            sharded.process(rng.randrange(500))
        # Every identifier's state lives in exactly one shard: a repeat
        # is found regardless of what other shards saw.
        assert sharded.process(12345) is False
        for filler in range(10_000, 10_050):
            sharded.process(filler)
        assert sharded.process(12345) is True

    def test_memory_and_shard_accounting(self):
        sharded = ShardedDetector._of_tbf(1024, 4, 1 << 16, seed=1)
        for identifier in range(4000):
            sharded.process(identifier)
        assert sharded.num_shards == 4
        assert sum(sharded.shard_arrivals()) == 4000
        assert 1.0 <= sharded.load_imbalance() < 1.3
        assert sharded.memory_bits <= TBFDetector(1024, 1 << 16).memory_bits * 1.1

    def test_local_window_approximates_global(self):
        # A duplicate at small global lag is always caught; only lags
        # near the window boundary are subject to shard-local skew.
        sharded = ShardedDetector._of_tbf(1024, 4, 1 << 18, seed=2)
        rng = random.Random(5)
        sharded.process(777)
        for _ in range(100):  # global lag 100 << N=1024
            sharded.process(rng.randrange(10**9, 2 * 10**9))
        assert sharded.process(777) is True

    def test_empty_imbalance(self):
        assert ShardedDetector._of_tbf(64, 2, 1024).load_imbalance() == 1.0


class TestTimeShardedDetector:
    def test_matches_exact_semantics(self):
        # Time-based sharding is exact: compare against the exact
        # labeler at unit-aligned timestamps.
        duration, resolution = 16.0, 16
        sharded = TimeShardedDetector._of_tbf(
            duration, resolution, 4, 1 << 18, num_hashes=8, seed=3
        )
        exact = TimeBasedExactDetector(TimeBasedSlidingWindow(duration))
        rng = random.Random(7)
        now = 0.0
        for _ in range(1500):
            now += float(rng.choice([0.0, 1.0, 2.0]))
            identifier = rng.randrange(80)
            assert sharded.process_at(identifier, now) == exact.process_at(
                identifier, now
            )

    def test_memory_split_across_shards(self):
        sharded = TimeShardedDetector._of_tbf(10.0, 10, 4, 1 << 16, seed=1)
        single = TimeBasedTBFDetector(10.0, 10, 1 << 16, seed=1)
        assert sharded.memory_bits <= single.memory_bits * 1.1

    def test_needs_shards(self):
        with pytest.raises(ConfigurationError):
            TimeShardedDetector([])
        with pytest.raises(ConfigurationError):
            TimeShardedDetector._of_tbf(10.0, 10, 0, 1024)
