"""Unit tests for the Stable Bloom filter (Deng & Rafiei baseline)."""

import pytest

from repro.bloom import StableBloomFilter
from repro.errors import ConfigurationError


def test_recent_duplicate_detected():
    sbf = StableBloomFilter(4096, num_hashes=3, cell_bits=3, decrements_per_insert=4, seed=1)
    assert sbf.process(42) is False
    assert sbf.process(42) is True  # immediate repeat: cells still at Max


def test_fresh_elements_mostly_pass():
    sbf = StableBloomFilter(1 << 14, num_hashes=4, cell_bits=3, decrements_per_insert=10, seed=2)
    flagged = sum(sbf.process(identifier) for identifier in range(2000))
    assert flagged < 50  # all distinct: only (rare) false positives


def test_false_negatives_exist_for_old_elements():
    # The structural deficiency the paper's TBF removes: after enough
    # decay, a previously inserted element is forgotten.
    sbf = StableBloomFilter(256, num_hashes=2, cell_bits=2, decrements_per_insert=32, seed=3)
    sbf.process(7)
    for filler in range(1000, 1400):
        sbf.process(filler)
    assert sbf.query(7) is False


def test_zero_fraction_converges_to_stable_point():
    m, k, d, p = 2048, 3, 2, 12
    sbf = StableBloomFilter(m, num_hashes=k, cell_bits=d, decrements_per_insert=p, seed=4)
    for identifier in range(30_000):
        sbf.process(identifier)
    predicted = StableBloomFilter.stable_zero_fraction(m, k, d, p)
    assert sbf.zero_fraction() == pytest.approx(predicted, abs=0.08)


def test_stable_fp_rate_formula_consistency():
    fp = StableBloomFilter.stable_false_positive_rate(4096, 4, 3, 10)
    zero = StableBloomFilter.stable_zero_fraction(4096, 4, 3, 10)
    assert fp == pytest.approx((1 - zero) ** 4)
    assert 0 < fp < 1


def test_recommended_decrements_meets_target():
    m, k, d = 1 << 16, 4, 3
    target = 0.05
    p = StableBloomFilter.recommended_decrements(m, k, d, target)
    achieved = StableBloomFilter.stable_false_positive_rate(m, k, d, p)
    assert achieved <= target * 1.05


def test_recommended_decrements_unreachable_target():
    with pytest.raises(ConfigurationError):
        # The stable point needs num_cells > num_hashes.
        StableBloomFilter.recommended_decrements(4, 4, 3, 0.01)


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        StableBloomFilter(0)
    with pytest.raises(ConfigurationError):
        StableBloomFilter(100, cell_bits=9)
    with pytest.raises(ConfigurationError):
        StableBloomFilter(100, decrements_per_insert=0)


def test_memory_bits():
    assert StableBloomFilter(1000, cell_bits=3).memory_bits == 3000
