"""Tests for network dynamics: budget pacing, bid policies, auction rounds."""

import pytest

from repro.adnet import (
    AdNetwork,
    BidPolicy,
    BudgetPacer,
    DynamicAuctioneer,
    PacingConfig,
    TrafficProfile,
    competitor_botnet,
    paced_charge,
)
from repro.adnet.entities import Advertiser
from repro.errors import BudgetError, ConfigurationError


def make_advertiser(budget=100.0, spent=0.0):
    advertiser = Advertiser(0, "a", budget, {"w": 1.0})
    advertiser.spent = spent
    return advertiser


class TestBudgetPacer:
    def test_early_spending_throttled(self):
        pacer = BudgetPacer(PacingConfig(horizon=100.0, tolerance=0.0))
        advertiser = make_advertiser(budget=100.0, spent=10.0)
        # At t=5 the schedule allows 5% of budget; 10 already spent.
        assert pacer.allow(advertiser, 1.0, now=5.0) is False
        assert pacer.throttled[0] == 1

    def test_on_schedule_spending_allowed(self):
        pacer = BudgetPacer(PacingConfig(horizon=100.0, tolerance=0.0))
        advertiser = make_advertiser(budget=100.0, spent=10.0)
        assert pacer.allow(advertiser, 1.0, now=50.0) is True

    def test_after_horizon_only_budget_limits(self):
        pacer = BudgetPacer(PacingConfig(horizon=100.0))
        advertiser = make_advertiser(budget=100.0, spent=99.0)
        assert pacer.allow(advertiser, 0.5, now=500.0) is True
        assert pacer.allow(advertiser, 2.0, now=500.0) is False  # exceeds budget

    def test_tolerance_loosens_schedule(self):
        strict = BudgetPacer(PacingConfig(horizon=100.0, tolerance=0.0))
        loose = BudgetPacer(PacingConfig(horizon=100.0, tolerance=0.5))
        advertiser = make_advertiser(budget=100.0, spent=12.0)
        assert strict.allow(advertiser, 1.0, now=10.0) is False
        assert loose.allow(advertiser, 1.0, now=10.0) is True

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PacingConfig(horizon=0.0)
        with pytest.raises(ConfigurationError):
            PacingConfig(tolerance=-0.1)
        pacer = BudgetPacer()
        with pytest.raises(ConfigurationError):
            pacer.allow(make_advertiser(), -1.0, now=0.0)


class TestBidPolicy:
    def test_raises_when_underserved(self):
        policy = BidPolicy(target_share=0.5, step=0.1)
        assert policy.adjust(1.00, observed_share=0.2) == pytest.approx(1.10)

    def test_lowers_when_dominating(self):
        policy = BidPolicy(target_share=0.5, step=0.1)
        assert policy.adjust(1.00, observed_share=0.9) == pytest.approx(0.90)

    def test_bounds_respected(self):
        policy = BidPolicy(step=0.5, min_bid=0.10, max_bid=1.0)
        assert policy.adjust(0.95, observed_share=0.0) == 1.0
        assert policy.adjust(0.12, observed_share=1.0) == 0.10


class TestDynamicAuctioneer:
    def _network(self):
        network = AdNetwork(seed=1)
        network.add_advertiser("a", 1000.0, {"w": 1.00})
        network.add_advertiser("b", 1000.0, {"w": 0.60})
        network.add_publisher("p")
        network.run_auctions(["w"])
        return network

    def test_losing_bidder_climbs(self):
        network = self._network()
        auctioneer = DynamicAuctioneer(
            network, policies={1: BidPolicy(target_share=0.5, step=0.2)}
        )
        # Advertiser 1 saw none of the valid clicks: its bid must rise
        # and (after enough rounds) overtake advertiser 0's static bid.
        for _ in range(5):
            auctioneer.record_round(valid_clicks={0: 100, 1: 0})
        winner = next(iter(network.ad_links.values()))
        assert network.advertisers.get(1).bids["w"] > 1.00
        assert winner.advertiser_id == 1

    def test_prices_recorded_per_round(self):
        network = self._network()
        auctioneer = DynamicAuctioneer(network)
        outcome = auctioneer.record_round(valid_clicks={0: 10, 1: 5})
        assert outcome.round_index == 0
        assert "w" in outcome.keyword_prices
        assert auctioneer.history == [outcome]

    def test_unknown_advertiser_policy_rejected(self):
        network = self._network()
        auctioneer = DynamicAuctioneer(network, policies={99: BidPolicy()})
        with pytest.raises(ConfigurationError):
            auctioneer.record_round(valid_clicks={})


class TestPacedCharge:
    def test_pacing_slows_budget_drain_under_attack(self):
        def drain(with_pacing):
            network = AdNetwork(seed=3)
            network.add_advertiser("victim", budget=50.0, bids={"w": 1.0})
            network.add_publisher("p")
            network.run_auctions(["w"])
            competitor_botnet(network, num_bots=40, mean_interval=30.0, seed=4)
            clicks = network.run(
                duration=3600.0,
                profile=TrafficProfile(click_rate=0.05, num_visitors=5),
            )
            billing = network.make_billing_engine()
            pacer = BudgetPacer(PacingConfig(horizon=86_400.0, tolerance=0.0))
            halfway_spent = None
            for click in clicks:
                try:
                    if with_pacing:
                        paced_charge(billing, pacer, click)
                    else:
                        billing.charge(click)
                except BudgetError:
                    break
                if halfway_spent is None and click.timestamp > 1800.0:
                    halfway_spent = network.advertisers.get(0).spent
            return halfway_spent if halfway_spent is not None else (
                network.advertisers.get(0).spent
            )

        assert drain(with_pacing=True) < drain(with_pacing=False)

    def test_paced_charge_raises_only_when_exhausted(self):
        network = AdNetwork(seed=5)
        network.add_advertiser("a", budget=0.5, bids={"w": 1.0})
        network.add_publisher("p")
        network.run_auctions(["w"])
        billing = network.make_billing_engine()
        pacer = BudgetPacer(PacingConfig(horizon=10.0))
        clicks = network.run(duration=100.0,
                             profile=TrafficProfile(click_rate=1.0, num_visitors=3))
        with pytest.raises(BudgetError):
            for click in clicks:
                paced_charge(billing, pacer, click)
