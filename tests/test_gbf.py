"""Unit tests for the GBF algorithm (§3)."""

import pytest

from repro.baselines import ExactDetector, NaiveSubwindowBloomDetector
from repro.core import GBFDetector, gbf_cost
from repro.errors import ConfigurationError
from repro.hashing import SplitMixFamily
from repro.streams import distinct_stream


def make_gbf(window=64, subwindows=4, bits=4096, k=4, seed=1, **kwargs):
    return GBFDetector(window, subwindows, bits, k, seed=seed, **kwargs)


class TestConstruction:
    def test_rejects_indivisible_window(self):
        with pytest.raises(ConfigurationError):
            GBFDetector(100, 3, 1024)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            GBFDetector(0, 1, 1024)
        with pytest.raises(ConfigurationError):
            GBFDetector(64, 0, 1024)
        with pytest.raises(ConfigurationError):
            GBFDetector(64, 4, 0)
        with pytest.raises(ConfigurationError):
            GBFDetector(64, 4, 1024, word_bits=12)

    def test_family_range_checked(self):
        family = SplitMixFamily(4, 100, seed=0)
        with pytest.raises(ConfigurationError):
            GBFDetector(64, 4, 200, family=family)

    def test_lane_packing_geometry(self):
        detector = GBFDetector(64, 4, 1024, word_bits=64)
        assert detector.num_lanes == 5
        assert detector.words_per_slot == 1
        assert detector.slots_per_word == 12  # 64 // 5 fields per word
        wide = GBFDetector(64, 16, 1024, word_bits=8)
        assert wide.num_lanes == 17
        assert wide.words_per_slot == 3
        assert wide.slots_per_word == 1

    def test_memory_accounting(self):
        detector = GBFDetector(64, 4, 1000, word_bits=64)
        assert detector.logical_memory_bits == 5000
        # Dense packing: ceil(1000 / 12) words of 64 bits.
        assert detector.memory_bits == -(-1000 // 12) * 64


class TestDuplicateSemantics:
    def test_immediate_repeat_is_duplicate(self):
        detector = make_gbf()
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_repeat_within_window_is_duplicate(self):
        detector = make_gbf(window=64, subwindows=4)
        detector.process(42)
        for filler in range(1000, 1030):
            detector.process(filler)
        assert detector.process(42) is True

    def test_repeat_after_expiry_is_fresh(self):
        detector = make_gbf(window=64, subwindows=4)
        detector.process(42)
        for filler in range(1000, 1000 + 80):  # > window + block
            detector.process(filler)
        assert detector.process(42) is False

    def test_jumping_window_block_expiry(self):
        # Element in sub-window 0 expires exactly when sub-window Q begins.
        window, subwindows = 64, 4
        block = window // subwindows
        detector = make_gbf(window=window, subwindows=subwindows)
        exact = ExactDetector.jumping(window, subwindows)
        stream = [42] + [10_000 + i for i in range(window - 1)] + [42]
        verdicts = [(detector.process(x), exact.process(x)) for x in stream]
        # The final 42 arrives at position `window`, the first position of
        # sub-window Q, where sub-window 0 has just expired.
        assert verdicts[-1] == (False, False)

    def test_query_is_side_effect_free(self):
        detector = make_gbf()
        detector.process(7)
        position = detector.position
        assert detector.query(7) is True
        assert detector.query(8) is False
        assert detector.position == position
        assert detector.process(8) is False

    def test_zero_false_negatives_self_consistent(self):
        # Theorem 1.1: a duplicate of any element the detector itself
        # accepted as valid, still active in the window, is never missed.
        import random

        from repro.windows import JumpingWindow

        rng = random.Random(3)
        detector = make_gbf(window=32, subwindows=4, bits=256, k=2)
        window = JumpingWindow(32, 4)
        last_valid = {}
        for _ in range(4000):
            identifier = rng.randrange(60)
            window.observe()
            predicted = detector.process(identifier)
            previous = last_valid.get(identifier)
            if previous is not None and window.is_active(previous):
                assert predicted, "missed a duplicate of an accepted click"
            if not predicted:
                last_valid[identifier] = window.position


class TestRotationAndCleaning:
    def test_rotation_reuses_cleaned_lanes(self):
        detector = make_gbf(window=16, subwindows=4, bits=64, k=2)
        for identifier in range(200):
            detector.process(identifier)
        assert detector.current_subwindow == 49  # position 199, blocks of 4
        assert len(detector.active_lanes()) == 4

    def test_expired_lane_eventually_zeroed(self):
        detector = make_gbf(window=16, subwindows=4, bits=64, k=2)
        for identifier in range(100):
            detector.process(identifier)
        # All lanes not currently active should be fully or partially
        # cleaned; after a full extra window, old lanes must be reusable,
        # which the rotation invariant asserts internally.
        for identifier in range(100, 200):
            detector.process(identifier)

    def test_active_lane_count_ramps_to_q(self):
        detector = make_gbf(window=16, subwindows=4)
        counts = []
        for identifier in range(64):
            detector.process(identifier)
            counts.append(len(detector.active_lanes()))
        assert counts[0] == 1
        assert counts[-1] == 4
        assert max(counts) == 4

    def test_lane_bits_set_reflects_inserts(self):
        detector = make_gbf(window=16, subwindows=4, bits=2048, k=3)
        for identifier in range(4):  # first sub-window only
            detector.process(identifier)
        current = detector.active_lanes()[0]
        assert detector.lane_bits_set(current) > 0


class TestDifferentialAgainstNaive:
    @pytest.mark.parametrize("word_bits,subwindows", [(64, 4), (8, 16), (16, 16)])
    def test_identical_decisions(self, word_bits, subwindows):
        import random

        window = subwindows * 8
        bits = 512
        family = SplitMixFamily(3, bits, seed=5)
        gbf = GBFDetector(window, subwindows, bits, family=family, word_bits=word_bits)
        naive = NaiveSubwindowBloomDetector(window, subwindows, bits, family=family)
        rng = random.Random(9)
        for _ in range(3000):
            identifier = rng.randrange(200)
            assert gbf.process(identifier) == naive.process(identifier)

    def test_identical_decisions_distinct_stream(self):
        bits = 256  # small: force plenty of false positives
        family = SplitMixFamily(2, bits, seed=11)
        gbf = GBFDetector(64, 8, bits, family=family)
        naive = NaiveSubwindowBloomDetector(64, 8, bits, family=family)
        for identifier in map(int, distinct_stream(2000, seed=1)):
            assert gbf.process(identifier) == naive.process(identifier)


class TestOperationCounts:
    def test_check_reads_match_model(self):
        window, subwindows, bits, k = 256, 8, 1024, 5
        detector = make_gbf(window, subwindows, bits, k)
        for identifier in map(int, distinct_stream(window * 3, seed=2)):
            detector.process(identifier)
        detector.counter.reset()
        span = window
        for identifier in map(int, distinct_stream(span, seed=3)):
            detector.process(identifier)
        rates = detector.counter.per_element()
        predicted = gbf_cost(window, subwindows, bits, k, 64)
        assert rates.word_reads == pytest.approx(
            predicted.check_reads + predicted.cleaning_ops / 2, rel=0.25
        )
        # Writes: k insert writes plus <= cleaning writes.
        assert rates.word_writes >= k * 0.9
        assert rates.hash_evaluations == pytest.approx(k)

    def test_processing_via_indices_counts_elements(self):
        detector = make_gbf()
        family = detector.family
        detector.process_indices(family.indices(1))
        detector.process_indices(family.indices(2))
        assert detector.counter.elements == 2


class TestWidePacking:
    def test_multiword_slots_work(self):
        # Q + 1 = 20 lanes at D = 8 -> 3 words per slot.
        detector = GBFDetector(76, 19, 512, 3, word_bits=8, seed=2)
        exact = ExactDetector.jumping(76, 19)
        import random

        rng = random.Random(1)
        fn = 0
        for _ in range(2000):
            identifier = rng.randrange(150)
            predicted = detector.process(identifier)
            actual = exact.process(identifier)
            if actual and not predicted:
                fn += 1
        assert fn == 0
