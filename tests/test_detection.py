"""Unit tests for the detection layer: factory, pipeline, scoring, alerts."""

import pytest

from repro.adnet import TrafficProfile, demo_network
from repro.baselines import (
    ExactDetector,
    LandmarkBloomDetector,
    MetwallyCBFDetector,
    NaiveSubwindowBloomDetector,
    StableBloomDetector,
)
from repro.core import GBFDetector, TBFDetector, TBFJumpingDetector
from repro.detection import (
    AlertEngine,
    AlertRule,
    DetectionPipeline,
    WindowSpec,
    classify_stream,
    DetectorSpec,
    create_detector,
    default_rules,
)
from repro.errors import ConfigurationError
from repro.streams import Click, TrafficClass


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowSpec("bogus", 100)
        with pytest.raises(ConfigurationError):
            WindowSpec("sliding", 0)
        with pytest.raises(ConfigurationError):
            WindowSpec("jumping", 100, 3)

    def test_valid_specs(self):
        WindowSpec("sliding", 100)
        WindowSpec("jumping", 100, 4)
        WindowSpec("landmark", 100)


class TestCreateDetector:
    def test_gbf_from_memory(self):
        detector = create_detector(DetectorSpec(algorithm="gbf", window=WindowSpec("jumping", 1024, 8), memory_bits=1 << 16))
        assert isinstance(detector, GBFDetector)
        assert detector.logical_memory_bits <= 1 << 16

    def test_gbf_for_target(self):
        detector = create_detector(DetectorSpec(algorithm="gbf", window=WindowSpec("jumping", 1024, 8), target_fp=0.01))
        assert isinstance(detector, GBFDetector)

    def test_tbf_from_memory(self):
        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 1024), memory_bits=1 << 18))
        assert isinstance(detector, TBFDetector)
        assert detector.memory_bits <= 1 << 18

    def test_tbf_for_target_meets_fp(self):
        from repro.analysis import tbf_fp

        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.01))
        assert tbf_fp(4096, detector.num_entries, detector.num_hashes) <= 0.01

    def test_tbf_jumping(self):
        detector = create_detector(DetectorSpec(algorithm="tbf-jumping", window=WindowSpec("jumping", 1024, 64), memory_bits=1 << 16))
        assert isinstance(detector, TBFJumpingDetector)

    def test_exact_variants(self):
        for kind in ("sliding", "jumping", "landmark"):
            spec = WindowSpec(kind, 64, 4 if kind == "jumping" else 1)
            assert isinstance(create_detector(DetectorSpec(algorithm="exact", window=spec)), ExactDetector)

    def test_other_algorithms(self):
        assert isinstance(
            create_detector(DetectorSpec(algorithm="landmark-bloom", window=WindowSpec("landmark", 256), memory_bits=4096)),
            LandmarkBloomDetector,
        )
        assert isinstance(
            create_detector(DetectorSpec(algorithm="naive-bloom", window=WindowSpec("jumping", 256, 4), memory_bits=1 << 14)),
            NaiveSubwindowBloomDetector,
        )
        assert isinstance(
            create_detector(DetectorSpec(algorithm="metwally-cbf", window=WindowSpec("jumping", 256, 4), memory_bits=1 << 16)),
            MetwallyCBFDetector,
        )
        assert isinstance(
            create_detector(DetectorSpec(algorithm="stable-bloom", window=WindowSpec("sliding", 256), memory_bits=1 << 14)),
            StableBloomDetector,
        )

    def test_window_kind_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            create_detector(DetectorSpec(algorithm="gbf", window=WindowSpec("sliding", 256), memory_bits=4096))
        with pytest.raises(ConfigurationError):
            create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("jumping", 256, 4), memory_bits=4096))

    def test_sizing_arguments_required_and_exclusive(self):
        spec = WindowSpec("sliding", 256)
        with pytest.raises(ConfigurationError):
            create_detector(DetectorSpec(algorithm="tbf", window=spec))
        with pytest.raises(ConfigurationError):
            create_detector(DetectorSpec(algorithm="tbf", window=spec, memory_bits=1024, target_fp=0.1))

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            create_detector(DetectorSpec(algorithm="quantum", window=WindowSpec("sliding", 10), memory_bits=10))

    def test_legacy_signature_deprecated_but_equivalent(self):
        with pytest.warns(DeprecationWarning, match="create_detector"):
            legacy = create_detector(
                "tbf", WindowSpec("sliding", 1024), target_fp=0.01
            )
        modern = create_detector(DetectorSpec(
            algorithm="tbf", window=WindowSpec("sliding", 1024), target_fp=0.01
        ))
        assert type(legacy) is type(modern)
        assert legacy.num_entries == modern.num_entries
        assert legacy.num_hashes == modern.num_hashes

    def test_spec_time_based_variants(self):
        from repro.core import TimeBasedGBFDetector, TimeBasedTBFDetector

        gbf = create_detector(DetectorSpec(
            algorithm="gbf-time", window=WindowSpec("jumping", 1024, 8),
            target_fp=0.01, duration=60.0,
        ))
        assert isinstance(gbf, TimeBasedGBFDetector)
        tbf = create_detector(DetectorSpec(
            algorithm="tbf-time", window=WindowSpec("sliding", 1024),
            target_fp=0.01, duration=60.0, resolution=16,
        ))
        assert isinstance(tbf, TimeBasedTBFDetector)

    def test_spec_duration_required_and_forbidden(self):
        with pytest.raises(ConfigurationError):
            DetectorSpec(algorithm="tbf-time",
                         window=WindowSpec("sliding", 1024), target_fp=0.01)
        with pytest.raises(ConfigurationError):
            DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 1024),
                         target_fp=0.01, duration=60.0)

    def test_spec_sharded_variants(self):
        from repro.detection import ShardedDetector, TimeShardedDetector

        sharded = create_detector(DetectorSpec(
            algorithm="tbf", window=WindowSpec("sliding", 1024),
            target_fp=0.01, shards=4,
        ))
        assert isinstance(sharded, ShardedDetector)
        assert sharded.num_shards == 4
        timed = create_detector(DetectorSpec(
            algorithm="tbf-time", window=WindowSpec("sliding", 1024),
            target_fp=0.01, duration=60.0, shards=4,
        ))
        assert isinstance(timed, TimeShardedDetector)

    def test_spec_shards_require_shardable_algorithm(self):
        with pytest.raises(ConfigurationError):
            DetectorSpec(algorithm="gbf", window=WindowSpec("jumping", 1024, 8),
                         target_fp=0.01, shards=4)

    def test_spec_rejects_extra_kwargs(self):
        spec = DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 1024),
                            target_fp=0.01)
        with pytest.raises(ConfigurationError):
            create_detector(spec, target_fp=0.5)
        with pytest.raises(ConfigurationError):
            create_detector(spec, window=WindowSpec("sliding", 64))


class TestPipeline:
    def _run(self, with_billing=True, seed=0):
        network = demo_network(seed=seed)
        clicks = network.run(
            duration=1200.0,
            profile=TrafficProfile(click_rate=1.5, num_visitors=40),
        )
        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 2048), memory_bits=1 << 18))
        billing = network.make_billing_engine() if with_billing else None
        pipeline = DetectionPipeline(detector, billing=billing)
        return pipeline.run(clicks), clicks

    def test_counts_are_consistent(self):
        result, clicks = self._run(with_billing=False)
        assert result.processed == len(clicks)
        assert result.valid + result.duplicates == result.processed
        assert 0.0 <= result.duplicate_rate <= 1.0

    def test_botnet_repeats_rejected(self):
        result, clicks = self._run()
        # The demo botnet re-clicks the same ads from stable identities;
        # most of its clicks beyond the first per window are duplicates.
        assert result.duplicates > 0
        assert result.billing_summary["fraud_prevented"] > 0

    def test_bot_traffic_rejected_more_than_legitimate(self):
        # Per-click dedup hits the botnet (stable identities hammering
        # the same ads) much harder than organic browsing, even though
        # some legitimate repeat-pairs are also deduplicated.
        result, clicks = self._run()
        charged = {id(c): c.charged for c in clicks}
        legit = [c for c in clicks if c.traffic_class is TrafficClass.LEGITIMATE]
        bots = [c for c in clicks if c.traffic_class is TrafficClass.BOTNET]
        legit_charged = sum(1 for c in legit if charged[id(c)]) / len(legit)
        bot_charged = sum(1 for c in bots if charged[id(c)]) / len(bots)
        assert bot_charged < legit_charged

    def test_scoreboard_ranks_bots_first(self):
        result, clicks = self._run()
        top = result.scoreboard.top_sources(count=5, min_clicks=10)
        bot_ips = {c.source_ip for c in clicks if c.traffic_class is TrafficClass.BOTNET}
        assert top, "scoreboard should have entries"
        top_ips = {ip for ip, _ in top}
        assert top_ips & bot_ips, "bot identities should rank among top suspects"

    def test_classify_stream(self):
        clicks = [
            Click(0.0, 1, 1, 1, 0, 0),
            Click(1.0, 1, 1, 1, 0, 0),
            Click(2.0, 2, 2, 1, 0, 0),
        ]
        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 64), memory_bits=1 << 14))
        verdicts = classify_stream(clicks, detector)
        assert verdicts == [False, True, False]

    def test_empty_stream_duplicate_rate(self):
        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 64), memory_bits=1 << 14))
        result = DetectionPipeline(detector).run([])
        assert result.processed == 0
        assert result.duplicate_rate == 0.0
        assert DetectionPipeline(detector).run_batch([]).duplicate_rate == 0.0

    @pytest.mark.parametrize("chunk_size", [1, 97, 4096])
    def test_run_batch_matches_run(self, chunk_size):
        network = demo_network(seed=0)
        clicks = network.run(
            duration=600.0,
            profile=TrafficProfile(click_rate=1.5, num_visitors=40),
        )

        def make_pipeline():
            detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 2048), memory_bits=1 << 18))
            return DetectionPipeline(detector, billing=network.make_billing_engine())

        scalar = make_pipeline().run(clicks)
        batched = make_pipeline().run_batch(clicks, chunk_size=chunk_size)
        assert batched.processed == scalar.processed
        assert batched.valid == scalar.valid
        assert batched.duplicates == scalar.duplicates
        assert batched.budget_exhausted == scalar.budget_exhausted
        assert batched.billing_summary == scalar.billing_summary

    def test_run_batch_rejects_bad_chunk_size(self):
        detector = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 64), memory_bits=1 << 14))
        with pytest.raises(ConfigurationError):
            DetectionPipeline(detector).run_batch([], chunk_size=0)


class TestAlerts:
    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            AlertRule("x", "bogus", 0.5)
        with pytest.raises(ConfigurationError):
            AlertRule("x", "source", 0.0)
        with pytest.raises(ConfigurationError):
            AlertRule("x", "source", 0.5, min_clicks=0)

    def test_alert_fires_once_per_key(self):
        engine = AlertEngine([AlertRule("hot", "source", 0.5, min_clicks=4)])
        fired = []
        for step in range(10):
            click = Click(float(step), source_ip=7, cookie=1, ad_id=1,
                          publisher_id=0, advertiser_id=0)
            fired.extend(engine.observe(click, duplicate=True))
        assert len(fired) == 1
        assert fired[0].key == 7
        assert fired[0].duplicate_rate >= 0.5

    def test_alert_rearm(self):
        engine = AlertEngine([AlertRule("hot", "source", 0.5, min_clicks=2)])
        click = Click(0.0, source_ip=7, cookie=1, ad_id=1, publisher_id=0, advertiser_id=0)
        engine.observe(click, True)
        assert engine.observe(click, True)  # fires
        engine.reset_key("hot", 7)
        assert engine.observe(click, True)  # fires again after re-arm

    def test_clean_sources_never_alert(self):
        engine = AlertEngine(default_rules())
        for step in range(100):
            click = Click(float(step), source_ip=step, cookie=step, ad_id=1,
                          publisher_id=0, advertiser_id=0)
            assert engine.observe(click, duplicate=False) == []
        assert engine.alerts == []
