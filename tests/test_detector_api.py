"""Protocol-conformance suite: every variant, one unified API.

Every detector variant in the library must satisfy the runtime-checkable
protocol of :mod:`repro.detection.api` (``Detector`` or
``TimedDetector``) and, driven through the :func:`wrap_timed` adapter's
single ``observe(identifier, timestamp)`` surface, must produce verdicts
identical to its native call surface.
"""

import numpy as np
import pytest

from repro.detection import (
    Detector,
    DetectorSpec,
    TimedDetector,
    WindowSpec,
    create_detector,
    is_timed,
    wrap_timed,
)
from repro.errors import ConfigurationError

#: Every variant of the unified protocol, one spec each.
VARIANTS = {
    "gbf": DetectorSpec(
        algorithm="gbf", window=WindowSpec("jumping", 256, 8), target_fp=0.01
    ),
    "gbf-time": DetectorSpec(
        algorithm="gbf-time", window=WindowSpec("jumping", 256, 8),
        target_fp=0.01, duration=64.0,
    ),
    "tbf": DetectorSpec(
        algorithm="tbf", window=WindowSpec("sliding", 256), target_fp=0.01
    ),
    "tbf-time": DetectorSpec(
        algorithm="tbf-time", window=WindowSpec("sliding", 256),
        target_fp=0.01, duration=64.0, resolution=16,
    ),
    "tbf-jumping": DetectorSpec(
        algorithm="tbf-jumping", window=WindowSpec("jumping", 1024, 64),
        memory_bits=1 << 16,
    ),
    "apbf": DetectorSpec(
        algorithm="apbf", window=WindowSpec("sliding", 256), target_fp=0.01
    ),
    "time-limited-bf": DetectorSpec(
        algorithm="time-limited-bf", window=WindowSpec("sliding", 256),
        target_fp=0.01, duration=64.0, resolution=16,
    ),
    "sharded": DetectorSpec(
        algorithm="tbf", window=WindowSpec("sliding", 256),
        target_fp=0.01, shards=2,
    ),
    "sharded-apbf": DetectorSpec(
        algorithm="apbf", window=WindowSpec("sliding", 256),
        target_fp=0.01, shards=2,
    ),
    "parallel": DetectorSpec(
        algorithm="tbf", window=WindowSpec("sliding", 256),
        target_fp=0.01, shards=2, engine="parallel",
    ),
    "parallel-apbf": DetectorSpec(
        algorithm="apbf", window=WindowSpec("sliding", 256),
        target_fp=0.01, shards=2, engine="parallel",
    ),
}

TIMED = {"gbf-time", "tbf-time", "time-limited-bf"}


def _stream(count=3000, seed=11):
    rng = np.random.default_rng(seed)
    identifiers = rng.integers(0, 120, size=count, dtype=np.uint64)
    timestamps = np.cumsum(rng.exponential(0.05, size=count))
    return identifiers, timestamps


def _close(detector):
    close = getattr(detector, "close", None)
    if close is not None:
        close()


@pytest.fixture(params=sorted(VARIANTS))
def variant(request):
    detector = create_detector(VARIANTS[request.param])
    try:
        yield request.param, detector
    finally:
        _close(detector)


class TestProtocolConformance:
    def test_satisfies_protocol(self, variant):
        name, detector = variant
        if name in TIMED:
            assert isinstance(detector, TimedDetector)
            assert is_timed(detector)
        else:
            assert isinstance(detector, Detector)
            assert not is_timed(detector)

    def test_operational_surface(self, variant):
        name, detector = variant
        blob = detector.checkpoint_state()
        assert isinstance(blob, bytes) and blob
        snapshot = detector.telemetry_snapshot()
        assert isinstance(snapshot, dict)
        assert int(detector.memory_bits) > 0

    def test_observe_matches_native_scalar(self, variant):
        name, _ = variant
        identifiers, timestamps = _stream()
        native = create_detector(VARIANTS[name])
        adapted = create_detector(VARIANTS[name])
        try:
            observe = wrap_timed(adapted).observe
            if name in TIMED:
                expected = [
                    native.process_at(int(i), float(t))
                    for i, t in zip(identifiers, timestamps)
                ]
            else:
                expected = [native.process(int(i)) for i in identifiers]
            got = [
                observe(int(i), float(t))
                for i, t in zip(identifiers, timestamps)
            ]
            assert got == expected
        finally:
            _close(native)
            _close(adapted)

    def test_observe_batch_matches_observe(self, variant):
        name, _ = variant
        identifiers, timestamps = _stream()
        scalar_det = create_detector(VARIANTS[name])
        batch_det = create_detector(VARIANTS[name])
        try:
            scalar = wrap_timed(scalar_det)
            batch = wrap_timed(batch_det)
            expected = np.array(
                [
                    scalar.observe(int(i), float(t))
                    for i, t in zip(identifiers, timestamps)
                ],
                dtype=bool,
            )
            got = np.asarray(
                batch.observe_batch(identifiers, timestamps), dtype=bool
            )
            assert (got == expected).all()
        finally:
            _close(scalar_det)
            _close(batch_det)


class TestTimedAdapter:
    def test_wrap_is_idempotent(self):
        detector = create_detector(VARIANTS["tbf"])
        adapter = wrap_timed(detector)
        assert wrap_timed(adapter) is adapter
        assert adapter.base is detector

    def test_counted_ignores_timestamp(self):
        adapter = wrap_timed(create_detector(VARIANTS["tbf"]))
        assert adapter.observe(7) is False
        assert adapter.observe(7, timestamp=123.0) is True

    def test_timed_requires_timestamp(self):
        adapter = wrap_timed(create_detector(VARIANTS["tbf-time"]))
        with pytest.raises(ConfigurationError):
            adapter.observe(7)
        with pytest.raises(ConfigurationError):
            adapter.observe_batch(np.array([7], dtype=np.uint64))

    def test_rejects_shapeless_object(self):
        with pytest.raises(ConfigurationError):
            wrap_timed(object())

    def test_scalar_fallback_without_batch_method(self):
        class Scalar:
            def __init__(self):
                self.seen = set()

            def process(self, identifier):
                duplicate = identifier in self.seen
                self.seen.add(identifier)
                return duplicate

        adapter = wrap_timed(Scalar())
        verdicts = adapter.observe_batch(
            np.array([1, 2, 1, 3, 2], dtype=np.uint64)
        )
        assert list(verdicts) == [False, False, True, False, True]

    def test_checkpoint_state_fallback(self):
        # A legacy detector without checkpoint_state still checkpoints
        # through the adapter (via the registry dispatch).
        from repro.core import TBFDetector

        detector = TBFDetector(64, 1024, 4, seed=3)
        adapter = wrap_timed(detector)
        assert isinstance(adapter.checkpoint_state(), bytes)
