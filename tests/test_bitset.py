"""Unit tests for bit vectors and the word memory model."""

import pytest

from repro.bitset import (
    BitVector,
    OperationCounter,
    PackedBitVector,
    WordArray,
)
from repro.errors import ConfigurationError


class TestBitVector:
    def test_starts_clear(self):
        bits = BitVector(100)
        assert bits.count() == 0
        assert not bits.get(0)
        assert len(bits) == 100
        assert bits.memory_bits == 100

    def test_set_get_clear(self):
        bits = BitVector(10)
        bits.set(3)
        assert bits.get(3)
        assert bits.count() == 1
        bits.clear(3)
        assert not bits.get(3)

    def test_set_many_and_all_set(self):
        bits = BitVector(50)
        bits.set_many([1, 2, 3])
        assert bits.all_set([1, 2, 3])
        assert not bits.all_set([1, 2, 4])

    def test_clear_all(self):
        bits = BitVector(20)
        bits.set_many(range(20))
        bits.clear_all()
        assert bits.count() == 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BitVector(0)


class TestWordArray:
    def test_read_write_counted(self):
        counter = OperationCounter()
        words = WordArray(8, 64, counter)
        words.write_word(3, 0xDEADBEEF)
        assert words.read_word(3) == 0xDEADBEEF
        assert counter.word_writes == 1
        assert counter.word_reads == 1

    def test_value_masked_to_width(self):
        words = WordArray(2, 8)
        words.write_word(0, 0x1FF)
        assert words.read_word(0) == 0xFF

    def test_fill_counts_all_writes(self):
        counter = OperationCounter()
        words = WordArray(16, 32, counter)
        words.fill(7)
        assert counter.word_writes == 16
        assert words.read_word(15) == 7

    def test_memory_bits(self):
        assert WordArray(10, 16).memory_bits == 160

    def test_rejects_bad_word_bits(self):
        with pytest.raises(ConfigurationError):
            WordArray(4, 12)

    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_all_supported_widths(self, word_bits):
        words = WordArray(4, word_bits)
        maximum = (1 << word_bits) - 1
        words.write_word(0, maximum)
        assert words.read_word(0) == maximum


class TestOperationCounter:
    def test_per_element_rates(self):
        counter = OperationCounter(word_reads=10, word_writes=6, hash_evaluations=4, elements=2)
        rates = counter.per_element()
        assert rates.word_reads == 5.0
        assert rates.word_writes == 3.0
        assert rates.total_word_ops == 8.0

    def test_per_element_no_elements(self):
        rates = OperationCounter(word_reads=3).per_element()
        assert rates.word_reads == 3.0

    def test_reset(self):
        counter = OperationCounter(word_reads=1, word_writes=2, hash_evaluations=3, elements=4)
        counter.reset()
        assert counter.total_word_ops == 0
        assert counter.elements == 0

    def test_merged_with(self):
        merged = OperationCounter(word_reads=1, elements=1).merged_with(
            OperationCounter(word_writes=2, elements=3)
        )
        assert merged.word_reads == 1
        assert merged.word_writes == 2
        assert merged.elements == 4


class TestPackedBitVector:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_matches_plain_bitvector(self, word_bits):
        plain = BitVector(133)
        packed = PackedBitVector(133, word_bits)
        pattern = [0, 1, 7, 8, 63, 64, 100, 132]
        for index in pattern:
            plain.set(index)
            packed.set(index)
        for index in range(133):
            assert plain.get(index) == packed.get(index)
        assert plain.count() == packed.count()

    def test_clear_bit(self):
        packed = PackedBitVector(70)
        packed.set(65)
        packed.clear(65)
        assert not packed.get(65)
        assert packed.count() == 0

    def test_access_is_counted(self):
        packed = PackedBitVector(64, 64)
        packed.set(5)          # read + write
        packed.get(5)          # read
        packed.clear(5)        # read + write
        assert packed.counter.word_reads == 3
        assert packed.counter.word_writes == 2

    def test_all_set_and_set_many(self):
        packed = PackedBitVector(128, 32)
        packed.set_many([1, 33, 127])
        assert packed.all_set([1, 33, 127])
        assert not packed.all_set([1, 2])

    def test_memory_bits_is_logical_size(self):
        assert PackedBitVector(100, 64).memory_bits == 100
