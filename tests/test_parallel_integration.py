"""Integration tests: the parallel engine composed with the rest of the
stack — ``DetectionPipeline.run_batch(workers=N)``, ``SupervisedPipeline``
journaling a fleet manifest, the ``detect --workers`` CLI, and the
``read_batches`` stream reader that feeds them.
"""

import random

import numpy as np
import pytest

from repro.core.checkpoint import save_detector
from repro.detection import DetectionPipeline
from repro.detection.sharded import ShardedDetector
from repro.errors import ConfigurationError, StreamError
from repro.parallel import ParallelShardedDetector
from repro.resilience import CheckpointStore, FaultInjector, InjectedCrash, SupervisedPipeline
from repro.streams import load_clicks, read_batches, write_clicks_csv, write_clicks_jsonl

from tests.test_resilience import make_billing, make_stream


# ----------------------------------------------------------------------
# read_batches: the batch feed for the vectorized / parallel paths
# ----------------------------------------------------------------------

class TestReadBatches:
    def test_batches_concatenate_to_load_clicks(self, tmp_path):
        clicks = make_stream(137)
        path = tmp_path / "stream.jsonl"
        write_clicks_jsonl(path, clicks)
        batches = list(read_batches(path, 25))
        assert [len(batch) for batch in batches[:-1]] == [25] * (len(batches) - 1)
        assert len(batches[-1]) <= 25
        assert [c for batch in batches for c in batch] == load_clicks(path)

    def test_csv_and_jsonl_agree(self, tmp_path):
        clicks = make_stream(60)
        csv_path, jsonl_path = tmp_path / "s.csv", tmp_path / "s.jsonl"
        write_clicks_csv(csv_path, clicks)
        write_clicks_jsonl(jsonl_path, clicks)
        assert list(read_batches(csv_path, 17)) == list(read_batches(jsonl_path, 17))

    def test_malformed_strict_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        clicks = make_stream(10)
        write_clicks_jsonl(path, clicks)
        with open(path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(StreamError, match="bad.jsonl:11"):
            list(read_batches(path, 4))

    def test_malformed_skip_and_count(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        clicks = make_stream(10)
        write_clicks_jsonl(path, clicks)
        with open(path, "a") as handle:
            handle.write("not json\n")
        write_clicks_jsonl(tmp_path / "tail.jsonl", clicks[:3])
        with open(tmp_path / "tail.jsonl") as tail, open(path, "a") as handle:
            handle.write(tail.read())
        seen = []
        batches = list(read_batches(path, 4, on_malformed=seen.append))
        assert len(seen) == 1
        assert seen[0].line_number == 11
        assert sum(len(batch) for batch in batches) == 13

    def test_invalid_batch_size(self, tmp_path):
        path = tmp_path / "s.jsonl"
        write_clicks_jsonl(path, make_stream(5))
        with pytest.raises(StreamError, match="batch_size"):
            list(read_batches(path, 0))


# ----------------------------------------------------------------------
# DetectionPipeline.run_batch(workers=N)
# ----------------------------------------------------------------------

class TestPipelineWorkers:
    def test_workers_matches_single_process_run(self):
        clicks = make_stream(400)
        reference = DetectionPipeline(
            ShardedDetector._of_tbf(64, 2, 2048, 4, seed=3), billing=make_billing()
        )
        expected = reference.run_batch(clicks)

        detector = ShardedDetector._of_tbf(64, 2, 2048, 4, seed=3)
        pipeline = DetectionPipeline(detector, billing=make_billing())
        result = pipeline.run_batch(clicks, workers=2)

        assert (result.processed, result.valid, result.duplicates,
                result.budget_exhausted) == (
            expected.processed, expected.valid, expected.duplicates,
            expected.budget_exhausted,
        )
        assert result.billing_summary == expected.billing_summary
        # The original detector is back in service with the fleet's
        # final state written into it, bit for bit.
        assert pipeline.detector is detector
        for expected_shard, synced in zip(
            reference.detector.shards, detector.shards
        ):
            assert save_detector(expected_shard) == save_detector(synced)

    def test_workers_requires_matching_shard_count(self):
        pipeline = DetectionPipeline(ShardedDetector._of_tbf(64, 2, 2048, 4, seed=3))
        with pytest.raises(ConfigurationError, match="2 shards"):
            pipeline.run_batch(make_stream(10), workers=4)

    def test_workers_rejects_unsharded_detector(self):
        from repro.core import TBFDetector

        pipeline = DetectionPipeline(TBFDetector(64, 2048, 4, seed=3))
        with pytest.raises(ConfigurationError, match="cannot parallelize"):
            pipeline.run_batch(make_stream(10), workers=2)

    def test_already_parallel_detector_passes_through(self):
        clicks = make_stream(150)
        engine = ParallelShardedDetector(ShardedDetector._of_tbf(64, 2, 2048, 4, seed=3))
        pipeline = DetectionPipeline(engine)
        try:
            result = pipeline.run_batch(clicks, workers=2)
            assert result.processed == len(clicks)
            assert pipeline.detector is engine  # not closed, not replaced
            # Engine still serves traffic afterwards.
            engine.process_batch(np.arange(10, dtype=np.uint64))
        finally:
            engine.close()


# ----------------------------------------------------------------------
# SupervisedPipeline over a parallel fleet
# ----------------------------------------------------------------------

def make_fleet():
    return ParallelShardedDetector(ShardedDetector._of_tbf(64, 2, 2048, 4, seed=3))


class TestSupervisedFleet:
    def test_crash_resume_bit_identical(self, tmp_path):
        clicks = make_stream(180)

        baseline_fleet = make_fleet()
        try:
            baseline = SupervisedPipeline(
                DetectionPipeline(baseline_fleet, billing=make_billing()),
                CheckpointStore(tmp_path / "base"),
                checkpoint_every=20, record_verdicts=True,
            ).run(clicks)
        finally:
            baseline_fleet.close()

        store = CheckpointStore(tmp_path / "crash")
        crashing_fleet = make_fleet()
        supervisor = SupervisedPipeline(
            DetectionPipeline(crashing_fleet, billing=make_billing()), store,
            checkpoint_every=20, record_verdicts=True,
        )
        with pytest.raises(InjectedCrash):
            supervisor.run(FaultInjector().crash_stream(clicks, 90))
        crashing_fleet.close()

        resume_fleet = make_fleet()
        resumer = SupervisedPipeline(
            DetectionPipeline(resume_fleet, billing=make_billing()), store,
            checkpoint_every=20, record_verdicts=True,
        )
        resumed = resumer.run(clicks)
        try:
            assert resumed.resumed
            assert resumed.start_offset > 0
            # The journaled manifest respawned a fleet mid-stream and its
            # verdicts continue bit-identically.
            assert resumed.verdicts == baseline.verdicts[resumed.start_offset:]
            assert resumed.billing_summary == baseline.billing_summary
            assert isinstance(resumer.pipeline.detector, ParallelShardedDetector)
        finally:
            resumer.pipeline.detector.close()
            resume_fleet.close()

    def test_checkpoint_quiesces_fleet(self, tmp_path):
        # The supervisor's pre-save quiesce hook must leave the rings
        # empty, so the manifest cannot race an in-flight batch.
        fleet = make_fleet()
        try:
            supervisor = SupervisedPipeline(
                DetectionPipeline(fleet, billing=make_billing()),
                CheckpointStore(tmp_path / "q"),
                checkpoint_every=25,
            )
            result = supervisor.run(make_stream(120))
            assert result.checkpoints_written > 0
            for state in fleet._workers:
                assert state.outstanding == 0
        finally:
            fleet.close()


# ----------------------------------------------------------------------
# CLI: detect --workers
# ----------------------------------------------------------------------

class TestCliWorkers:
    @pytest.fixture()
    def stream_file(self, tmp_path):
        path = tmp_path / "clicks.jsonl"
        rng = random.Random(5)
        clicks = make_stream(400, seed=8)
        for click in clicks:
            click.cost = rng.random()
        write_clicks_jsonl(path, clicks)
        return path

    def test_detect_workers_runs_and_reports(self, stream_file, capsys):
        from repro.cli import main

        assert main(["detect", "--workers", "2", "--window", "64",
                     str(stream_file)]) == 0
        out = capsys.readouterr().out
        assert "[2 workers]" in out
        assert "duplicates" in out

    def test_detect_workers_matches_sharded_single_process(
        self, stream_file, capsys
    ):
        from repro.cli import main

        assert main(["detect", "--workers", "2", "--window", "64",
                     str(stream_file)]) == 0
        parallel_out = capsys.readouterr().out.split("[2 workers]")[0]

        # The same sharded configuration run in-process must count the
        # same duplicates (the parallel engine is bit-identical).
        clicks = load_clicks(stream_file)
        from repro.detection import DetectorSpec, WindowSpec, create_detector

        tbf = create_detector(DetectorSpec(algorithm="tbf", window=WindowSpec("sliding", 64, 1), seed=0, target_fp=0.001))
        sharded = ShardedDetector._of_tbf(
            64, 2, total_entries=tbf.num_entries, num_hashes=tbf.num_hashes, seed=0
        )
        pipeline = DetectionPipeline(sharded)
        duplicates = sum(pipeline.process_click(click) for click in clicks)
        assert f"{len(clicks)} clicks; {duplicates} duplicates" in parallel_out

    def test_detect_workers_rejects_non_tbf(self, stream_file, capsys):
        from repro.cli import main

        assert main(["detect", "--workers", "2", "--algorithm", "gbf",
                     str(stream_file)]) == 2
        assert "requires --algorithm tbf" in capsys.readouterr().err
