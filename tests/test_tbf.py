"""Unit tests for the TBF algorithm (§4)."""

import pytest

from repro.core import TBFDetector, entry_bits_required, tbf_cost
from repro.errors import ConfigurationError
from repro.hashing import SplitMixFamily
from repro.streams import distinct_stream
from repro.windows import SlidingWindow


def make_tbf(window=64, entries=4096, k=4, seed=1, **kwargs):
    return TBFDetector(window, entries, k, seed=seed, **kwargs)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TBFDetector(0, 100)
        with pytest.raises(ConfigurationError):
            TBFDetector(10, 0)
        with pytest.raises(ConfigurationError):
            TBFDetector(10, 100, cleanup_slack=-1)

    def test_family_range_checked(self):
        family = SplitMixFamily(4, 50, seed=0)
        with pytest.raises(ConfigurationError):
            TBFDetector(10, 100, family=family)

    def test_entry_bits_hold_period_plus_sentinel(self):
        # N = 64, default C = 63 -> W = 128 values + sentinel -> 8 bits.
        detector = make_tbf(window=64)
        assert detector.timestamp_period == 128
        assert detector.entry_bits == 8
        assert detector.empty_value == 255
        assert detector.empty_value >= detector.timestamp_period

    def test_entry_bits_required_function(self):
        assert entry_bits_required(64, 63) == 8
        assert entry_bits_required(1, 0) == 2  # W=2 plus sentinel -> 2 bits
        # Sentinel never collides: 2^bits - 1 >= W for a range of cases.
        for window in (1, 2, 3, 64, 1000, 1 << 14):
            for slack in (0, 1, window - 1, 2 * window):
                bits = entry_bits_required(window, max(slack, 0))
                assert (1 << bits) - 1 >= window + max(slack, 0) + 1

    def test_memory_bits(self):
        detector = make_tbf(window=64, entries=1000)
        assert detector.memory_bits == 1000 * detector.entry_bits

    def test_scan_quota(self):
        # C = N - 1 -> scan ceil(m / N) entries per element.
        detector = TBFDetector(64, 4096, 4, cleanup_slack=63)
        assert detector.scan_per_element == 64
        full_scan = TBFDetector(64, 4096, 4, cleanup_slack=0)
        assert full_scan.scan_per_element == 4096


class TestDuplicateSemantics:
    def test_immediate_repeat_is_duplicate(self):
        detector = make_tbf()
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_repeat_at_window_edge(self):
        # Sliding window of N: a repeat N-1 arrivals later is a duplicate;
        # a repeat N arrivals later is not.
        window = 32
        inside = make_tbf(window=window, entries=1 << 14, k=6)
        inside.process(42)
        for filler in range(1000, 1000 + window - 2):
            inside.process(filler)
        assert inside.process(42) is True  # lag = N - 1

        outside = make_tbf(window=window, entries=1 << 14, k=6)
        outside.process(42)
        for filler in range(1000, 1000 + window - 1):
            outside.process(filler)
        assert outside.process(42) is False  # lag = N: expired

    def test_duplicate_not_reinserted(self):
        # §4.1: a duplicate is ignored, so its timestamp is NOT refreshed;
        # the window anchors on the original valid click (Definition 1).
        window = 16
        detector = make_tbf(window=window, entries=1 << 14, k=6)
        detector.process(42)                      # position 0, valid
        for filler in range(100, 100 + 8):
            detector.process(filler)
        assert detector.process(42) is True       # position 9, duplicate
        for filler in range(200, 200 + 6):
            detector.process(filler)              # positions 10..15
        # Position 16: the valid click at 0 has expired; the duplicate at
        # 9 did not refresh it, so 42 is fresh again.
        assert detector.process(42) is False

    def test_query_is_side_effect_free(self):
        detector = make_tbf()
        detector.process(7)
        assert detector.query(7) is True
        assert detector.query(8) is False
        assert detector.process(8) is False

    def test_query_before_any_element(self):
        assert make_tbf().query(5) is False

    def test_zero_false_negatives_self_consistent(self):
        import random

        rng = random.Random(5)
        detector = make_tbf(window=32, entries=256, k=2)  # tiny: many FPs
        window = SlidingWindow(32)
        last_valid = {}
        for _ in range(5000):
            identifier = rng.randrange(64)
            window.observe()
            predicted = detector.process(identifier)
            previous = last_valid.get(identifier)
            if previous is not None and window.is_active(previous):
                assert predicted, "missed a duplicate of an accepted click"
            if not predicted:
                last_valid[identifier] = window.position


class TestWraparoundAndCleaning:
    @pytest.mark.parametrize("slack_name,slack", [("default", None), ("zero", 0), ("small", 7)])
    def test_long_run_wraparound_correctness(self, slack_name, slack):
        # Run for many timestamp periods; expired elements must never be
        # resurrected by counter wraparound (the W = N + C + 1 refinement).
        window = 16
        detector = TBFDetector(window, 512, 3, cleanup_slack=slack, seed=2)
        sliding = SlidingWindow(window)
        last_valid = {}
        import random

        rng = random.Random(7)
        resurrection_candidates = 0
        for _ in range(20 * detector.timestamp_period):
            identifier = rng.randrange(40)
            sliding.observe()
            predicted = detector.process(identifier)
            previous = last_valid.get(identifier)
            active = previous is not None and sliding.is_active(previous)
            if active and not predicted:
                pytest.fail("false negative after wraparound")
            if not predicted:
                last_valid[identifier] = sliding.position
            elif not active:
                resurrection_candidates += 1
        # Stale reports do occur as ordinary FPs, but must stay rare; a
        # wraparound bug makes them systematic (every expired repeat).
        assert resurrection_candidates < 200

    def test_wraparound_ambiguity_window(self):
        # Construct the exact off-by-one scenario from DESIGN.md §3.1:
        # an entry verified active at age N-1 then revisited C+1 later.
        # With W = N + C + 1 the age N + C is still distinguishable.
        window, slack = 8, 3
        detector = TBFDetector(window, 4096, 1, cleanup_slack=slack, seed=0)
        assert detector.timestamp_period == window + slack + 1
        detector.process(99)
        for filler in range(1000, 1000 + window + slack):
            detector.process(filler)
        # Age of 99's entry is now N + C = 11 < W = 12: must be expired,
        # not wrapped to "fresh".
        assert detector.query(99) is False

    def test_stale_entries_are_bounded(self):
        detector = make_tbf(window=32, entries=2048, k=4)
        for identifier in map(int, distinct_stream(2000, seed=4)):
            detector.process(identifier)
        # Entries older than N await the cursor for at most C+1 arrivals;
        # in steady state the stale population stays well under the
        # active population.
        assert detector.stale_entries() <= detector.num_entries
        assert detector.active_entries() > 0
        # After a full cursor lap with no insertions... (can't pause the
        # stream, but stale counts must not grow without bound)
        before = detector.stale_entries()
        for identifier in map(int, distinct_stream(2000, seed=5)):
            detector.process(identifier)
        after = detector.stale_entries()
        assert after <= max(before * 2, detector.scan_per_element * (detector.cleanup_slack + 2))


class TestOperationCounts:
    def test_ops_match_model(self):
        window, entries, k = 128, 4096, 5
        detector = make_tbf(window=window, entries=entries, k=k)
        for identifier in map(int, distinct_stream(window * 3, seed=2)):
            detector.process(identifier)
        detector.counter.reset()
        for identifier in map(int, distinct_stream(window, seed=3)):
            detector.process(identifier)
        rates = detector.counter.per_element()
        predicted = tbf_cost(window, entries, k)
        # Reads: k checks + scan quota.
        assert rates.word_reads == pytest.approx(
            predicted.check_reads + predicted.cleaning_ops / 2, rel=0.2
        )
        assert rates.word_writes == pytest.approx(2 * k, rel=0.5)
        assert rates.hash_evaluations == pytest.approx(k)
