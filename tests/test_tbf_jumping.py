"""Unit tests for the TBF over jumping windows (§4.1 extension)."""

import random

import pytest

from repro.baselines import ExactDetector
from repro.core import TBFJumpingDetector
from repro.errors import ConfigurationError
from repro.hashing import SplitMixFamily
from repro.windows import JumpingWindow


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TBFJumpingDetector(0, 1, 100)
        with pytest.raises(ConfigurationError):
            TBFJumpingDetector(10, 3, 100)  # not divisible
        with pytest.raises(ConfigurationError):
            TBFJumpingDetector(10, 0, 100)
        with pytest.raises(ConfigurationError):
            TBFJumpingDetector(10, 2, 0)

    def test_entry_bits_scale_with_q_not_n(self):
        # The whole point of sub-window timestamps: entries need
        # log2(~2Q) bits, independent of N.
        small_q = TBFJumpingDetector(1 << 16, 8, 1024, 2)
        assert small_q.entry_bits <= 5
        big_n = TBFJumpingDetector(1 << 18, 8, 1024, 2)
        assert big_n.entry_bits == small_q.entry_bits

    def test_family_range_checked(self):
        family = SplitMixFamily(2, 64, seed=0)
        with pytest.raises(ConfigurationError):
            TBFJumpingDetector(16, 4, 128, family=family)


class TestSemantics:
    def test_same_subwindow_repeat_is_duplicate(self):
        detector = TBFJumpingDetector(64, 4, 1 << 14, 5, seed=1)
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_block_expiry(self):
        # Repeat exactly when the first sub-window expires: fresh again.
        window, subwindows = 64, 4
        detector = TBFJumpingDetector(window, subwindows, 1 << 14, 5, seed=1)
        detector.process(42)
        for filler in range(1000, 1000 + window - 1):
            detector.process(filler)
        assert detector.process(42) is False  # position 64 = block Q start

    def test_repeat_in_last_active_block_is_duplicate(self):
        window, subwindows = 64, 4
        block = window // subwindows
        detector = TBFJumpingDetector(window, subwindows, 1 << 14, 5, seed=1)
        detector.process(42)
        for filler in range(1000, 1000 + window - block):
            detector.process(filler)
        # Position N - block + 1: sub-window 0 is still the oldest active.
        assert detector.process(42) is True

    def test_zero_false_negatives_self_consistent(self):
        rng = random.Random(5)
        detector = TBFJumpingDetector(32, 8, 256, 2, seed=3)  # tiny, FP-rich
        window = JumpingWindow(32, 8)
        last_valid = {}
        for _ in range(5000):
            identifier = rng.randrange(64)
            window.observe()
            predicted = detector.process(identifier)
            previous = last_valid.get(identifier)
            if previous is not None and window.is_active(previous):
                assert predicted, "missed a duplicate of an accepted click"
            if not predicted:
                last_valid[identifier] = window.position

    def test_agrees_with_exact_on_clean_streams(self):
        # With a filter large enough that FPs are ~impossible, verdicts
        # must match the exact jumping-window labeler everywhere.
        rng = random.Random(11)
        detector = TBFJumpingDetector(48, 6, 1 << 16, 8, seed=2)
        exact = ExactDetector.jumping(48, 6)
        for _ in range(3000):
            identifier = rng.randrange(90)
            assert detector.process(identifier) == exact.process(identifier)

    def test_query_side_effect_free(self):
        detector = TBFJumpingDetector(16, 4, 1024, 3, seed=1)
        detector.process(5)
        assert detector.query(5) is True
        assert detector.query(6) is False
        assert detector.process(6) is False

    def test_long_run_wraparound(self):
        rng = random.Random(13)
        detector = TBFJumpingDetector(16, 4, 2048, 3, seed=4)
        exact = ExactDetector.jumping(16, 4)
        period_arrivals = detector.timestamp_period * detector.subwindow_size
        mismatches = 0
        for _ in range(15 * period_arrivals):
            identifier = rng.randrange(40)
            if detector.process(identifier) != exact.process(identifier):
                mismatches += 1
        assert mismatches < 20  # only rare FPs, no systematic drift


class TestCleaning:
    def test_scan_quota_spreads_over_slack_subwindows(self):
        window, subwindows, entries = 64, 4, 4096
        detector = TBFJumpingDetector(window, subwindows, entries, 2)
        # Default C = Q - 1 = 3: lap the filter within 4 sub-windows
        # (= 64 arrivals): ceil(4096 / 64) = 64 per element.
        assert detector.scan_per_element == 64

    def test_memory_bits(self):
        detector = TBFJumpingDetector(64, 4, 1000, 2)
        assert detector.memory_bits == 1000 * detector.entry_bits
