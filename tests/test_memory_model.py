"""Unit tests for the analytical op-cost models (Theorems 1.3 / 2.3)."""

import pytest

from repro.bitset.words import OperationCounter
from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    exact_dict_cost,
    gbf_cost,
    gbf_tbf_crossover_subwindows,
    metwally_cbf_cost,
    naive_subwindow_bloom_cost,
    tbf_cost,
)
from repro.metrics import measure_ops
from repro.streams import duplicated_stream


class TestGBFCost:
    def test_dense_packing_single_word_probes(self):
        cost = gbf_cost(1 << 12, 8, 1 << 15, 5, word_bits=64)
        assert cost.check_reads == 5  # Q+1 = 9 lanes fit one word
        assert cost.insert_writes == 5

    def test_wide_lanes_multiply_probe_cost(self):
        cost = gbf_cost(1 << 12, 255, 1 << 15, 5, word_bits=64)
        assert cost.check_reads == 5 * 4  # ceil(256/64) words per slot

    def test_cleaning_scales_with_q_over_d(self):
        # Theorem 1.3: doubling Q (roughly) doubles cleaning word ops.
        small = gbf_cost(1 << 12, 8, 1 << 15, 5, word_bits=64).cleaning_ops
        large = gbf_cost(1 << 12, 32, 1 << 15, 5, word_bits=64).cleaning_ops
        assert large > 2.5 * small

    def test_cleaning_benefits_from_wider_words(self):
        narrow = gbf_cost(1 << 12, 8, 1 << 15, 5, word_bits=8).cleaning_ops
        wide = gbf_cost(1 << 12, 8, 1 << 15, 5, word_bits=64).cleaning_ops
        assert wide < narrow

    def test_total_is_sum(self):
        cost = gbf_cost(1 << 12, 8, 1 << 15, 5)
        assert cost.total == cost.check_reads + cost.insert_writes + cost.cleaning_ops


class TestTBFCost:
    def test_q_independent(self):
        assert tbf_cost(1 << 12, 1 << 16, 5).total == tbf_cost(1 << 12, 1 << 16, 5).total

    def test_default_slack_scans_m_over_n(self):
        cost = tbf_cost(1 << 12, 1 << 16, 5)
        assert cost.cleaning_ops == 2 * ((1 << 16) // (1 << 12))

    def test_larger_slack_cheaper_cleaning(self):
        tight = tbf_cost(1 << 12, 1 << 16, 5, cleanup_slack=63)
        loose = tbf_cost(1 << 12, 1 << 16, 5, cleanup_slack=1 << 14)
        assert loose.cleaning_ops < tight.cleaning_ops


class TestBaselineCosts:
    def test_naive_scales_with_q(self):
        small = naive_subwindow_bloom_cost(1 << 12, 4, 1 << 15, 5).check_reads
        large = naive_subwindow_bloom_cost(1 << 12, 32, 1 << 15, 5).check_reads
        assert large == 8 * small  # Q * k probes

    def test_naive_worse_than_gbf(self):
        naive = naive_subwindow_bloom_cost(1 << 12, 16, 1 << 15, 5)
        gbf = gbf_cost(1 << 12, 16, 1 << 15, 5)
        assert gbf.total < naive.total

    def test_metwally_double_writes(self):
        cost = metwally_cbf_cost(1 << 12, 8, 1 << 14, 5)
        assert cost.insert_writes == 10  # sub-filter + main filter

    def test_exact_constant(self):
        assert exact_dict_cost().total == 5.0


class TestCrossover:
    def test_crossover_exists_and_moves_with_word_size(self):
        window, memory, k = 1 << 12, 1 << 19, 6
        narrow = gbf_tbf_crossover_subwindows(window, memory, k, word_bits=8)
        wide = gbf_tbf_crossover_subwindows(window, memory, k, word_bits=64)
        assert 1 <= narrow <= window
        assert 1 <= wide <= window
        # Wider words keep GBF competitive to larger Q.
        assert wide >= narrow


class TestBatchOpParity:
    """The batch path must report the SAME word-op totals as scalar.

    The memory model's claims are stated per element over the scalar
    flow; the vectorized path is only a faster implementation of that
    flow, so its counters — reads, writes, hash evaluations — must be
    bit-identical, not merely close.
    """

    @pytest.mark.parametrize(
        "build",
        [
            lambda: GBFDetector(64, 4, 257, 4, seed=9),
            lambda: TBFDetector(48, 97, 4, seed=9),
            lambda: TBFJumpingDetector(48, 4, 97, 4, seed=9),
        ],
        ids=["gbf", "tbf", "tbf-jumping"],
    )
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 500])
    def test_batch_counts_equal_scalar(self, build, batch_size):
        stream = duplicated_stream(400, seed=3)
        scalar = build()
        batch = build()
        for identifier in stream:
            scalar.process(int(identifier))
        batch.process_batch(stream[:batch_size])
        batch.process_batch(stream[batch_size:])
        assert batch.counter == scalar.counter

    def test_measure_ops_batch_path_matches(self):
        stream = [int(x) for x in duplicated_stream(300, seed=5)]
        scalar = measure_ops(TBFDetector(48, 97, 4, seed=9), stream)
        batched = measure_ops(TBFDetector(48, 97, 4, seed=9), stream, batch_size=50)
        assert batched.elements == scalar.elements
        assert batched.rates == scalar.rates

    def test_measure_ops_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            measure_ops(TBFDetector(48, 97, 4, seed=9), [1, 2, 3], batch_size=0)


class TestOperationCounterBulk:
    def test_add_accumulates_reads_and_writes(self):
        counter = OperationCounter()
        counter.add(10)
        counter.add(5, 7)
        assert counter.word_reads == 15
        assert counter.word_writes == 7
        assert counter.total_word_ops == 22

    def test_slots_reject_stray_attributes(self):
        counter = OperationCounter()
        with pytest.raises(AttributeError):
            counter.typo_attribute = 1
