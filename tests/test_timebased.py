"""Unit tests for the time-based GBF and TBF extensions."""

import random

import pytest

from repro.baselines import TimeBasedExactDetector
from repro.core import TimeBasedGBFDetector, TimeBasedTBFDetector
from repro.errors import ConfigurationError, StreamError
from repro.windows import TimeBasedJumpingWindow, TimeBasedSlidingWindow


class TestTimeBasedTBF:
    def make(self, duration=10.0, resolution=10, entries=1 << 14, k=5, **kwargs):
        return TimeBasedTBFDetector(duration, resolution, entries, k, seed=1, **kwargs)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TimeBasedTBFDetector(0.0, 10, 100)
        with pytest.raises(ConfigurationError):
            TimeBasedTBFDetector(10.0, 0, 100)
        with pytest.raises(ConfigurationError):
            TimeBasedTBFDetector(10.0, 10, 0)
        with pytest.raises(ConfigurationError):
            TimeBasedTBFDetector(10.0, 10, 100, cleanup_slack=-1)

    def test_duplicate_within_duration(self):
        detector = self.make()
        assert detector.process_at(42, 0.5) is False
        assert detector.process_at(42, 5.0) is True

    def test_fresh_after_duration(self):
        detector = self.make(duration=10.0, resolution=10)
        detector.process_at(42, 0.5)
        detector.process_at(7, 11.5)  # moves the clock past expiry
        assert detector.process_at(42, 11.6) is False

    def test_expiry_granularity_is_one_unit(self):
        # Elements expire at unit boundaries: a repeat at age slightly
        # above duration - unit may still be caught, but a repeat after
        # a full duration + unit must not be.
        detector = self.make(duration=10.0, resolution=10)
        detector.process_at(42, 0.0)
        assert detector.process_at(42, 9.0) is True
        fresh = self.make(duration=10.0, resolution=10)
        fresh.process_at(42, 0.0)
        fresh.process_at(1, 11.01)
        assert fresh.process_at(42, 11.02) is False

    def test_monotone_timestamps_enforced(self):
        detector = self.make()
        detector.process_at(1, 5.0)
        with pytest.raises(StreamError):
            detector.process_at(2, 4.0)

    def test_long_idle_gap_wipes_filter(self):
        detector = self.make(duration=10.0, resolution=10)
        for identifier in range(50):
            detector.process_at(identifier, 0.1 + identifier * 0.01)
        detector.process_at(999, 1000.0)  # idle gap >> duration
        assert detector.query_at(0, 1000.1) is False

    def test_against_exact_at_unit_granularity(self):
        # With timestamps aligned to unit boundaries the granularity
        # approximation is exact, so verdicts must match the exact
        # time-based labeler (filter sized to make FPs negligible).
        duration, resolution = 8.0, 8
        detector = self.make(duration=duration, resolution=resolution, entries=1 << 16, k=8)
        exact = TimeBasedExactDetector(TimeBasedSlidingWindow(duration))
        rng = random.Random(3)
        now = 0.0
        for _ in range(2000):
            now += float(rng.choice([0.0, 1.0, 1.0, 2.0]))
            identifier = rng.randrange(60)
            assert detector.process_at(identifier, now) == exact.process_at(
                identifier, now
            )

    def test_no_wraparound_resurrection_with_bursty_gaps(self):
        # Regression: cleaning runs only at arrival instants, so a
        # cursor re-visit can be delayed by an inter-arrival gap and an
        # expired entry's age can wrap past a too-small period, making
        # it look fresh again.  Long random-gap run vs the exact
        # labeler; the big filter makes genuine FPs impossible, so any
        # disagreement is a resurrection.
        duration, resolution = 16.0, 16
        detector = self.make(duration=duration, resolution=resolution,
                             entries=1 << 16, k=8)
        from repro.baselines import TimeBasedExactDetector

        exact = TimeBasedExactDetector(TimeBasedSlidingWindow(duration))
        rng = random.Random(1234)
        now = 0.0
        for _ in range(4000):
            now += float(rng.choice([0.0, 1.0, 2.0, 5.0, 9.0]))
            identifier = rng.randrange(60)
            assert detector.process_at(identifier, now) == exact.process_at(
                identifier, now
            )

    def test_zero_false_negatives_self_consistent(self):
        rng = random.Random(9)
        detector = self.make(duration=16.0, resolution=16, entries=512, k=2)
        window = TimeBasedSlidingWindow(16.0)
        last_valid = {}
        now = 0.0
        for _ in range(4000):
            now += rng.random()
            identifier = rng.randrange(50)
            window.observe_at(now)
            predicted = detector.process_at(identifier, now)
            previous = last_valid.get(identifier)
            # Only claim a guaranteed catch when the previous valid is
            # strictly younger than duration - one unit (granularity).
            if previous is not None and now - previous < 16.0 - 1.0:
                assert predicted, "missed a duplicate within the safe horizon"
            if not predicted:
                last_valid[identifier] = now


class TestTimeBasedGBF:
    def make(self, duration=8.0, subwindows=4, bits=1 << 14, k=5, units=4, **kwargs):
        return TimeBasedGBFDetector(
            duration, subwindows, bits, k, units_per_subwindow=units, seed=1, **kwargs
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TimeBasedGBFDetector(0.0, 4, 100)
        with pytest.raises(ConfigurationError):
            TimeBasedGBFDetector(8.0, 0, 100)
        with pytest.raises(ConfigurationError):
            TimeBasedGBFDetector(8.0, 4, 0)
        with pytest.raises(ConfigurationError):
            TimeBasedGBFDetector(8.0, 4, 100, units_per_subwindow=0)
        with pytest.raises(ConfigurationError):
            TimeBasedGBFDetector(8.0, 4, 100, word_bits=10)

    def test_duplicate_within_window(self):
        detector = self.make()
        assert detector.process_at(42, 0.5) is False
        assert detector.process_at(42, 3.0) is True

    def test_fresh_after_block_expiry(self):
        # Window 8.0 in 4 blocks of 2.0: a click at t=0.5 (block 0)
        # expires when block 4 begins at t=8.0.
        detector = self.make()
        detector.process_at(42, 0.5)
        detector.process_at(1, 8.5)
        assert detector.process_at(42, 8.6) is False

    def test_still_duplicate_in_last_active_block(self):
        detector = self.make()
        detector.process_at(42, 0.5)
        assert detector.process_at(42, 7.9) is True

    def test_monotone_timestamps_enforced(self):
        detector = self.make()
        detector.process_at(1, 5.0)
        with pytest.raises(StreamError):
            detector.process_at(2, 4.9)

    def test_long_idle_gap_wipes_lanes(self):
        detector = self.make()
        for identifier in range(50):
            detector.process_at(identifier, 0.1 + identifier * 0.01)
        detector.process_at(999, 500.0)
        assert detector.query_at(0, 500.1) is False

    def test_against_exact_on_block_aligned_stream(self):
        duration, subwindows = 8.0, 4
        detector = self.make(duration=duration, subwindows=subwindows, bits=1 << 16, k=8)
        exact = TimeBasedExactDetector(TimeBasedJumpingWindow(duration, subwindows))
        rng = random.Random(5)
        now = 0.0
        for _ in range(1500):
            now += float(rng.choice([0.0, 2.0]))  # block-aligned steps
            identifier = rng.randrange(50)
            assert detector.process_at(identifier, now) == exact.process_at(
                identifier, now
            )

    def test_empty_subwindows_rotate_safely(self):
        # Traffic with gaps of several (but not all) sub-windows: the
        # rotations for the empty blocks must not corrupt older lanes.
        detector = self.make()
        detector.process_at(1, 0.1)    # block 0
        detector.process_at(2, 4.1)    # block 2 (block 1 empty)
        detector.process_at(3, 6.1)    # block 3
        assert detector.process_at(1, 6.2) is True    # block 0 still active
        detector.process_at(4, 8.1)    # block 4: block 0 expires
        assert detector.process_at(1, 8.2) is False

    def test_active_lanes_bounded(self):
        detector = self.make()
        now = 0.0
        for identifier in range(200):
            now += 0.11
            detector.process_at(identifier, now)
        assert len(detector.active_lanes()) <= detector.num_subwindows
