"""Tests for click-quality tracking and smart pricing."""

import pytest

from repro.detection import ClickQualityTracker, QualityConfig
from repro.errors import ConfigurationError
from repro.streams import Click


def click_for(publisher_id: int, step: int = 0) -> Click:
    return Click(
        timestamp=float(step),
        source_ip=step,
        cookie=step,
        ad_id=0,
        publisher_id=publisher_id,
        advertiser_id=0,
    )


class TestQualityConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QualityConfig(window=0)
        with pytest.raises(ConfigurationError):
            QualityConfig(floor=1.5)
        with pytest.raises(ConfigurationError):
            QualityConfig(grace_clicks=-1)


class TestClickQualityTracker:
    def test_unknown_publisher_has_full_quality(self):
        tracker = ClickQualityTracker()
        assert tracker.quality(99) == 1.0
        assert tracker.price_multiplier(99) == 1.0

    def test_quality_tracks_valid_ratio(self):
        tracker = ClickQualityTracker(QualityConfig(window=1000, grace_clicks=0))
        for step in range(1000):
            tracker.observe(click_for(1, step), duplicate=(step % 4 == 0))
        assert tracker.quality(1) == pytest.approx(0.75, abs=0.08)

    def test_grace_period_bills_full_price(self):
        tracker = ClickQualityTracker(QualityConfig(grace_clicks=50))
        for step in range(20):
            tracker.observe(click_for(2, step), duplicate=True)  # terrible traffic
        assert tracker.price_multiplier(2) == 1.0  # still in grace
        for step in range(20, 80):
            tracker.observe(click_for(2, step), duplicate=True)
        assert tracker.price_multiplier(2) < 0.5  # grace over

    def test_floor_limits_discount(self):
        tracker = ClickQualityTracker(QualityConfig(floor=0.25, grace_clicks=0))
        for step in range(500):
            tracker.observe(click_for(3, step), duplicate=True)
        assert tracker.price_multiplier(3) == pytest.approx(0.25)

    def test_smart_price_applies_multiplier(self):
        tracker = ClickQualityTracker(QualityConfig(grace_clicks=0, floor=0.0))
        for step in range(400):
            tracker.observe(click_for(4, step), duplicate=(step % 2 == 0))
        price = tracker.smart_price(click_for(4), cpc=1.0)
        assert price == pytest.approx(0.5, abs=0.08)
        with pytest.raises(ConfigurationError):
            tracker.smart_price(click_for(4), cpc=-1.0)

    def test_publishers_tracked_independently(self):
        tracker = ClickQualityTracker(QualityConfig(grace_clicks=0))
        for step in range(300):
            tracker.observe(click_for(5, step), duplicate=False)   # clean
            tracker.observe(click_for(6, step), duplicate=True)    # dirty
        assert tracker.quality(5) > 0.9
        assert tracker.quality(6) < 0.2

    def test_quality_recovers_after_attack_ends(self):
        # Windowed, not cumulative: a publisher whose bot traffic stops
        # regains full pricing once the dirty window slides out.
        tracker = ClickQualityTracker(QualityConfig(window=500, grace_clicks=0))
        for step in range(500):
            tracker.observe(click_for(7, step), duplicate=True)
        assert tracker.quality(7) < 0.1
        for step in range(500, 1500):
            tracker.observe(click_for(7, step), duplicate=False)
        assert tracker.quality(7) > 0.85

    def test_report_and_memory(self):
        tracker = ClickQualityTracker(QualityConfig(window=1 << 12, grace_clicks=0))
        for step in range(5000):
            tracker.observe(click_for(8, step), duplicate=(step % 3 == 0))
        report = tracker.report()
        assert report[8]["clicks"] == 5000
        assert 0.55 < report[8]["quality"] < 0.8
        # Sketch-sized, not history-sized.
        assert tracker.memory_bits < 5000
