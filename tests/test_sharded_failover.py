"""Tests for shard failover: fail-open/fail-closed policies, rebuild from
checkpoint, degraded-window stats, and whole-sharded-detector checkpoints."""

import random

import pytest

from repro.core import CheckpointError, load_detector, save_detector
from repro.detection import (
    DetectionPipeline,
    FailoverPolicy,
    ShardedDetector,
    TimeShardedDetector,
)
from repro.errors import ConfigurationError
from repro.resilience import SupervisedPipeline


def drive(detector, count, seed, universe=80):
    rng = random.Random(seed)
    return [detector.process(rng.randrange(universe)) for _ in range(count)]


def test_fail_open_accepts_and_fail_closed_rejects_everything():
    detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    drive(detector, 200, seed=2)

    detector.fail_shard(1, FailoverPolicy.FAIL_OPEN)
    detector.fail_shard(2, "fail-closed")  # strings accepted too
    rng = random.Random(3)
    for _ in range(300):
        identifier = rng.randrange(80)
        shard = detector.router(identifier)
        verdict = detector.process(identifier)
        if shard == 1:
            assert verdict is False  # fail-open: everything accepted
        elif shard == 2:
            assert verdict is True  # fail-closed: everything rejected

    stats = detector.degraded_shards()
    assert set(stats) == {1, 2}
    assert stats[1]["policy"] == "fail-open"
    assert stats[2]["policy"] == "fail-closed"
    assert stats[1]["clicks"] > 0 and stats[2]["clicks"] > 0
    assert detector.is_degraded


def test_restore_shard_resumes_exact_verdicts():
    # Two detectors fed identically; one loses a shard and rebuilds it
    # from a checkpoint taken at that instant.  With no clicks processed
    # during the degraded window, verdicts must stay identical forever.
    healthy = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    failing = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    assert drive(healthy, 300, seed=5) == drive(failing, 300, seed=5)

    blob = failing.checkpoint_shard(2)
    failing.fail_shard(2)
    degraded_clicks = failing.restore_shard(2, blob)
    assert degraded_clicks == 0
    assert not failing.is_degraded
    assert drive(healthy, 400, seed=6) == drive(failing, 400, seed=6)


def test_degraded_window_damage_is_bounded_to_one_shard():
    healthy = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    failing = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    drive(healthy, 300, seed=5)
    drive(failing, 300, seed=5)

    blob = failing.checkpoint_shard(2)
    failing.fail_shard(2, FailoverPolicy.FAIL_OPEN)
    rng_a, rng_b = random.Random(7), random.Random(7)
    disagreements = 0
    for _ in range(200):
        x = rng_a.randrange(80)
        if healthy.process(x) != failing.process(rng_b.randrange(80)):
            assert failing.router(x) == 2  # only the degraded shard differs
            disagreements += 1
    assert disagreements > 0
    assert failing.restore_shard(2, blob) > 0  # degraded clicks were counted


def test_restore_shard_type_mismatch_rejected():
    detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    from repro.core import GBFDetector

    wrong = save_detector(GBFDetector(64, 8, 1024, 4, seed=3))
    with pytest.raises(CheckpointError, match="GBFDetector"):
        detector.restore_shard(1, wrong)


def test_shard_index_validated():
    detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    with pytest.raises(ConfigurationError):
        detector.fail_shard(4)
    with pytest.raises(ConfigurationError):
        detector.checkpoint_shard(-1)


def test_time_sharded_failover():
    detector = TimeShardedDetector._of_tbf(30.0, 8, 4, 8192, seed=1)
    rng = random.Random(2)
    timestamp = 0.0
    for _ in range(300):
        timestamp += rng.random() * 0.2
        detector.process_at(rng.randrange(80), timestamp)

    blob = detector.checkpoint_shard(0)
    detector.fail_shard(0, FailoverPolicy.FAIL_CLOSED)
    for _ in range(50):
        timestamp += rng.random() * 0.2
        identifier = rng.randrange(80)
        verdict = detector.process_at(identifier, timestamp)
        if detector.router(identifier) == 0:
            assert verdict is True
    assert detector.restore_shard(0, blob) > 0
    assert not detector.is_degraded


def test_whole_sharded_detector_checkpoint_preserves_degradation():
    detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    drive(detector, 300, seed=5)
    detector.fail_shard(3, FailoverPolicy.FAIL_OPEN)
    drive(detector, 50, seed=6)

    restored = load_detector(save_detector(detector))
    assert restored.degraded_shards() == detector.degraded_shards()
    assert restored.shard_arrivals() == detector.shard_arrivals()
    assert drive(detector, 300, seed=7) == drive(restored, 300, seed=7)


def test_custom_router_refused_for_whole_detector_checkpoint():
    from repro.core import TBFDetector

    detector = ShardedDetector(
        [TBFDetector(16, 512, 4, seed=s) for s in range(2)],
        router=lambda identifier: identifier % 2,
    )
    with pytest.raises(CheckpointError, match="router"):
        save_detector(detector)
    # Per-shard checkpoints still work — that is the escape hatch.
    load_detector(detector.checkpoint_shard(0))


def test_supervised_pipeline_surfaces_degraded_window(tmp_path):
    from tests.test_resilience import make_billing, make_stream

    detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    detector.fail_shard(1, FailoverPolicy.FAIL_CLOSED)
    pipeline = DetectionPipeline(detector, billing=make_billing())
    supervisor = SupervisedPipeline(pipeline, tmp_path, checkpoint_every=50)
    result = supervisor.run(make_stream(120))
    assert 1 in result.degraded
    assert result.degraded[1]["policy"] == "fail-closed"
    assert result.degraded[1]["clicks"] > 0
    # Fail-closed means those clicks were rejected, not billed.
    assert result.duplicates >= result.degraded[1]["clicks"]


# ----------------------------------------------------------------------
# Failover under the vectorized batch path: a shard lost mid-stream must
# produce exactly the verdicts, degraded-click accounting, and telemetry
# that the scalar path produces.
# ----------------------------------------------------------------------

def _stream_arrays(count, seed, universe=80):
    import numpy as np

    rng = random.Random(seed)
    return np.array(
        [rng.randrange(universe) for _ in range(count)], dtype=np.uint64
    )


def test_batch_failover_matches_scalar_path():
    import numpy as np

    scalar = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    batched = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    warmup = _stream_arrays(300, seed=5)
    assert [scalar.process(int(x)) for x in warmup] == list(
        batched.process_batch(warmup)
    )

    # Lose the shard "mid-run": both detectors degrade identically.
    scalar.fail_shard(2, FailoverPolicy.FAIL_OPEN)
    batched.fail_shard(2, FailoverPolicy.FAIL_OPEN)
    after = _stream_arrays(400, seed=6)
    scalar_verdicts = [scalar.process(int(x)) for x in after]
    batch_verdicts = batched.process_batch(after)
    assert scalar_verdicts == [bool(v) for v in batch_verdicts]

    # Degraded-window accounting and telemetry agree between the paths.
    assert scalar.degraded_shards() == batched.degraded_shards()
    assert scalar.shard_arrivals() == batched.shard_arrivals()
    scalar_snap = scalar.telemetry_snapshot()
    batch_snap = batched.telemetry_snapshot()
    assert scalar_snap["counters"] == batch_snap["counters"]
    assert scalar_snap["gauges"]["degraded_shards"] == 1
    assert batch_snap["gauges"]["degraded_shards"] == 1
    assert batch_snap["shards"]["2"]["degraded"] == 1.0


def test_batch_failover_kill_between_chunks_and_restore():
    import numpy as np

    scalar = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    batched = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
    chunks = [_stream_arrays(150, seed=s) for s in range(8)]
    blob = None
    for index, chunk in enumerate(chunks):
        if index == 3:  # kill the shard mid-stream, checkpoint first
            blob = batched.checkpoint_shard(1)
            scalar.fail_shard(1, FailoverPolicy.FAIL_CLOSED)
            batched.fail_shard(1, FailoverPolicy.FAIL_CLOSED)
        if index == 6:  # rebuild from the pre-failure checkpoint
            missed_scalar = scalar.restore_shard(1, blob)
            missed_batched = batched.restore_shard(1, blob)
            assert missed_scalar == missed_batched > 0
        expected = [scalar.process(int(x)) for x in chunk]
        assert expected == [bool(v) for v in batched.process_batch(chunk)]
    assert not batched.is_degraded
    assert scalar.telemetry_snapshot()["counters"] == (
        batched.telemetry_snapshot()["counters"]
    )


def test_time_sharded_batch_failover_matches_scalar_path():
    import numpy as np

    scalar = TimeShardedDetector._of_tbf(30.0, 8, 4, 8192, seed=1)
    batched = TimeShardedDetector._of_tbf(30.0, 8, 4, 8192, seed=1)
    rng = random.Random(9)
    timestamp, ids, stamps = 0.0, [], []
    for _ in range(500):
        timestamp += rng.random() * 0.2
        ids.append(rng.randrange(80))
        stamps.append(timestamp)
    ids = np.array(ids, dtype=np.uint64)
    stamps = np.array(stamps, dtype=np.float64)

    half = 250
    for a, b in ((0, half), (half, len(ids))):
        if a == half:
            scalar.fail_shard(0, FailoverPolicy.FAIL_CLOSED)
            batched.fail_shard(0, FailoverPolicy.FAIL_CLOSED)
        expected = [
            scalar.process_at(int(i), float(t))
            for i, t in zip(ids[a:b], stamps[a:b])
        ]
        got = batched.process_batch_at(ids[a:b], stamps[a:b])
        assert expected == [bool(v) for v in got]
    assert scalar.degraded_shards() == batched.degraded_shards()
