"""Unit tests for the exact (ground-truth) detectors."""

from repro.baselines import ExactDetector, TimeBasedExactDetector
from repro.windows import TimeBasedSlidingWindow


class TestSlidingExact:
    def test_immediate_repeat(self):
        exact = ExactDetector.sliding(8)
        assert exact.process(1) is False
        assert exact.process(1) is True

    def test_expiry_at_exact_lag(self):
        exact = ExactDetector.sliding(4)
        exact.process(42)                    # position 0
        for filler in range(100, 103):
            exact.process(filler)            # positions 1-3
        assert exact.process(42) is False    # position 4: lag N, expired

    def test_definition1_duplicate_of_duplicate(self):
        # Definition 1: duplicates compare against *valid* clicks only.
        # valid(0), dup(2), then at position N the original has expired
        # and the duplicate never counted, so the click is fresh again.
        exact = ExactDetector.sliding(4)
        assert exact.process(42) is False    # position 0: valid
        exact.process(100)                   # 1
        assert exact.process(42) is True     # 2: duplicate (not recorded)
        exact.process(101)                   # 3
        assert exact.process(42) is False    # 4: original expired -> valid

    def test_counts(self):
        exact = ExactDetector.sliding(10)
        for identifier in [1, 2, 1, 3, 1]:
            exact.process(identifier)
        assert exact.valid == 3
        assert exact.duplicates == 2

    def test_memory_shrinks_after_expiry(self):
        exact = ExactDetector.sliding(16)
        for identifier in range(1000):
            exact.process(identifier)
        assert exact.active_distinct() <= 16

    def test_query_side_effect_free(self):
        exact = ExactDetector.sliding(8)
        exact.process(5)
        assert exact.query(5) is True
        assert exact.query(6) is False
        assert exact.process(6) is False


class TestJumpingExact:
    def test_block_expiry(self):
        exact = ExactDetector.jumping(8, 4)  # blocks of 2
        exact.process(42)                    # position 0, block 0
        for filler in range(100, 107):
            exact.process(filler)            # positions 1-7
        assert exact.process(42) is False    # position 8: block 4, block 0 expired

    def test_still_active_in_oldest_block(self):
        exact = ExactDetector.jumping(8, 4)
        exact.process(42)
        for filler in range(100, 106):
            exact.process(filler)
        assert exact.process(42) is True     # position 7: block 0 active


class TestLandmarkExact:
    def test_epoch_reset(self):
        exact = ExactDetector.landmark(4)
        exact.process(42)                    # epoch 0
        exact.process(42)                    # duplicate
        for filler in range(100, 102):
            exact.process(filler)            # fills epoch 0
        assert exact.process(42) is False    # epoch 1: fresh


class TestTimeBasedExact:
    def test_duration_expiry(self):
        exact = TimeBasedExactDetector(TimeBasedSlidingWindow(10.0))
        assert exact.process_at(42, 0.0) is False
        assert exact.process_at(42, 9.9) is True
        assert exact.process_at(42, 10.0 + 9.9) is False  # anchored at 0.0

    def test_duplicate_anchors_on_valid(self):
        exact = TimeBasedExactDetector(TimeBasedSlidingWindow(10.0))
        exact.process_at(42, 0.0)            # valid
        assert exact.process_at(42, 5.0) is True
        # At t=10: the valid click (t=0) expired; the t=5 duplicate never
        # counted, so this is a fresh valid click.
        assert exact.process_at(42, 10.0) is False

    def test_counts_and_memory(self):
        exact = TimeBasedExactDetector(TimeBasedSlidingWindow(1.0))
        for step in range(100):
            exact.process_at(step, float(step))
        assert exact.valid == 100
        assert exact.memory_bits < 100 * 128  # expired records purged
