"""Serve-path request tracing: stages, span shards, flight recorder.

Covers the pieces of ``repro.telemetry.requesttrace`` in isolation —
exact streaming quantiles, the trace context on the wire, the span
shard merge, and the flight-recorder ring — and then the whole path
end to end: a traced load through a live server with two worker
processes must merge into one Chrome-trace timeline whose spans nest
client → server → worker across three pids, and an engine death must
leave a parseable flight dump behind (docs/observability.md §5–§7).
"""

import json
import math

import numpy as np
import pytest

from repro.detection import DetectorSpec, WindowSpec, create_detector
from repro.errors import ConfigurationError, ProtocolError
from repro.resilience import EngineFaultHooks
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.client import run_load
from repro.serve.protocol import (
    FLAG_CHECKSUM,
    FLAG_TRACE,
    HEADER,
    checksum16,
    decode_batch_payload,
    encode_batch,
    split_trace_payload,
)
from repro.telemetry import (
    SERVE_STAGES,
    FlightRecorder,
    SpanShardWriter,
    StageLatencyRecorder,
    StreamingQuantile,
    TelemetrySession,
    current_trace,
    merge_shards,
    new_span_id,
    new_trace_id,
    set_current_trace,
)
from repro.telemetry.requesttrace import clear_current_trace

TBF_SPEC = DetectorSpec(
    algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.01
)
SHARDED_SPEC = DetectorSpec(
    algorithm="tbf", window=WindowSpec("sliding", 4096), target_fp=0.01,
    shards=2,
)


def _stream(count=2000, seed=5, universe=500):
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=count, dtype=np.uint64)


def _nearest_rank(values, q):
    ordered = sorted(values)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


class TestStreamingQuantile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingQuantile(capacity=0)
        stream = StreamingQuantile()
        with pytest.raises(ConfigurationError):
            stream.quantile(0.0)
        with pytest.raises(ConfigurationError):
            stream.quantile(1.5)

    def test_empty_is_nan(self):
        stream = StreamingQuantile()
        assert math.isnan(stream.quantile(0.5))
        assert math.isnan(stream.max)
        assert stream.quantiles((0.5, 0.99)) == pytest.approx(
            {0.5: float("nan"), 0.99: float("nan")}, nan_ok=True
        )

    def test_exact_nearest_rank_against_reference(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(1.0, size=777).tolist()
        stream = StreamingQuantile(capacity=1 << 12)
        for value in values:
            stream.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert stream.quantile(q) == _nearest_rank(values, q)
        batch = stream.quantiles((0.5, 0.95, 0.99))
        for q, got in batch.items():
            assert got == _nearest_rank(values, q)
        assert stream.max == max(values)

    def test_window_wraps_and_forgets_old_samples(self):
        stream = StreamingQuantile(capacity=100)
        for value in range(250):
            stream.observe(float(value))
        assert stream.count == 100
        assert stream.observed == 250
        # Exact over the *last* 100 samples (150..249), not all history.
        window = list(range(150, 250))
        assert stream.quantile(0.5) == _nearest_rank(window, 0.5)
        assert stream.quantile(1.0) == 249.0
        assert stream.max == 249.0


class TestTraceContextOnTheWire:
    def test_untraced_frame_is_byte_identical_to_pre_trace_protocol(self):
        identifiers = _stream(64)
        frame = encode_batch(9, identifiers)
        frame_type, flags, reserved, request_id, length = HEADER.unpack(
            frame[: HEADER.size]
        )
        assert flags == FLAG_CHECKSUM      # no FLAG_TRACE bit
        assert length == 16 * 64           # no prefix bytes
        trace, records = split_trace_payload(flags, frame[HEADER.size :])
        assert trace is None
        got, _ts = decode_batch_payload(records)
        assert np.array_equal(got, identifiers)

    def test_traced_frame_round_trips_and_checksums_the_prefix(self):
        identifiers = _stream(64)
        context = (new_trace_id(), new_span_id())
        frame = encode_batch(9, identifiers, trace=context)
        _type, flags, reserved, _id, length = HEADER.unpack(frame[: HEADER.size])
        assert flags & FLAG_TRACE
        assert flags & FLAG_CHECKSUM
        payload = frame[HEADER.size :]
        assert length == 16 + 16 * 64
        assert reserved == checksum16(payload)   # covers the prefix too
        trace, records = split_trace_payload(flags, payload)
        assert trace == context
        got, _ts = decode_batch_payload(records)
        assert np.array_equal(got, identifiers)
        # The strip is a view over the wire bytes, not a copy.
        assert isinstance(records, memoryview)

    def test_short_traced_payload_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            split_trace_payload(FLAG_TRACE, b"\x00" * 8)

    def test_ids_are_nonzero(self):
        # Zero means "untraced" on the wire and in the rings, so the
        # generators must never mint it.
        assert all(new_trace_id() != 0 for _ in range(64))
        assert all(new_span_id() != 0 for _ in range(64))

    def test_current_trace_set_and_clear(self):
        clear_current_trace()
        assert current_trace() == (0, 0)
        set_current_trace(7, 9)
        assert current_trace() == (7, 9)
        clear_current_trace()
        assert current_trace() == (0, 0)


class TestStageLatencyRecorder:
    def test_exact_quantile_gauges_reach_the_exposition(self):
        session = TelemetrySession()
        recorder = StageLatencyRecorder(session.registry)
        for stage in SERVE_STAGES:
            for value in (0.001, 0.002, 0.004, 0.008):
                recorder.observe(stage, value)
        recorder.collect()
        text = session.registry.to_prometheus()
        assert "repro_serve_stage_seconds" in text
        for stage in SERVE_STAGES:
            assert f'stage="{stage}",q="0.99"' in text
            assert f'stage="{stage}",q="max"' in text
        # Gauges are the exact nearest-rank values, not estimates.
        assert recorder.stream("decode").quantile(0.5) == 0.002
        assert recorder.stream("decode").max == 0.008


class TestSpanShardMerge:
    def _write_shard(self, directory, role, pid, spans):
        path = directory / f"spans-{role}-{pid}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span) + "\n")
        return path

    def test_multi_process_shards_merge_into_one_nested_timeline(self, tmp_path):
        trace_id = 0xABC
        root, mid, leaf = 11, 22, 33
        self._write_shard(tmp_path, "client", 100, [
            {"name": "client.request", "trace_id": trace_id, "span_id": root,
             "parent_id": 0, "pid": 100, "role": "client",
             "ts": 50.0, "dur": 0.030},
        ])
        self._write_shard(tmp_path, "server", 200, [
            {"name": "server.process_group", "trace_id": trace_id,
             "span_id": mid, "parent_id": root, "pid": 200, "role": "server",
             "ts": 50.010, "dur": 0.015},
        ])
        self._write_shard(tmp_path, "worker-0", 300, [
            {"name": "worker.shard_batch", "trace_id": trace_id,
             "span_id": leaf, "parent_id": mid, "pid": 300, "role": "worker-0",
             "ts": 50.012, "dur": 0.008},
        ])
        trace = merge_shards(tmp_path, output=tmp_path / "trace.json")
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]

        # One process row per pid, named from the shard's role.
        assert {e["pid"] for e in events} == {100, 200, 300}
        names = {e["args"]["name"] for e in metadata}
        assert names == {"client (100)", "server (200)", "worker-0 (300)"}

        # Timeline is rebased to the earliest span and monotone in µs.
        starts = [e["ts"] for e in events]
        assert starts[0] == 0.0
        assert starts == sorted(starts)
        assert events[1]["ts"] == pytest.approx(10_000.0)  # 10 ms in µs

        # Parent/child nesting survives the merge through args ids.
        by_name = {e["name"]: e for e in events}
        assert "parent_span_id" not in by_name["client.request"]["args"]
        assert (by_name["server.process_group"]["args"]["parent_span_id"]
                == by_name["client.request"]["args"]["span_id"])
        assert (by_name["worker.shard_batch"]["args"]["parent_span_id"]
                == by_name["server.process_group"]["args"]["span_id"])

        # The written file is the same trace.
        on_disk = json.loads((tmp_path / "trace.json").read_text())
        assert on_disk == trace

    def test_torn_tail_line_is_skipped_not_fatal(self, tmp_path):
        path = self._write_shard(tmp_path, "server", 1, [
            {"name": "a", "trace_id": 1, "span_id": 2, "parent_id": 0,
             "pid": 1, "role": "server", "ts": 1.0, "dur": 0.1},
        ])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "torn", "ts": 2.0')  # killed mid-write
        events = [
            e for e in merge_shards(tmp_path)["traceEvents"] if e["ph"] == "X"
        ]
        assert [e["name"] for e in events] == ["a"]

    def test_writer_span_context_manager_times_and_flushes(self, tmp_path):
        with SpanShardWriter(tmp_path, "server") as writer:
            with writer.span("work", trace_id=5, parent_id=3, clicks=10):
                pass
            lines = writer.path.read_text().splitlines()
        assert len(lines) == 1                     # flushed before close
        record = json.loads(lines[0])
        assert record["name"] == "work"
        assert record["trace_id"] == 5
        assert record["parent_id"] == 3
        assert record["args"] == {"clicks": 10}
        assert record["dur"] >= 0.0


class TestFlightRecorder:
    def test_capacity_floor(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=8)

    def test_ring_keeps_the_newest_events_in_order(self):
        recorder = FlightRecorder(capacity=16)
        for index in range(40):
            recorder.record("tick", index=index)
        events = recorder.events()
        assert len(events) == 16
        assert [event[0] for event in events] == list(range(24, 40))
        assert [event[3]["index"] for event in events] == list(range(24, 40))

    def test_dump_round_trips_through_parse(self, tmp_path):
        recorder = FlightRecorder(capacity=16)
        for index in range(20):
            recorder.record("frame", request_id=index, clicks=64)
        recorder.record("engine_death", error="RuntimeError('boom')")
        path = recorder.dump(tmp_path, "engine-death")
        assert path.name.startswith("flight-engine-death-")
        header, events = FlightRecorder.parse(path)
        assert header["reason"] == "engine-death"
        assert header["recorded"] == 21
        assert header["dropped"] == 5
        assert header["events"] == len(events) == 16
        assert events[-1]["kind"] == "engine_death"
        assert events[-1]["error"] == "RuntimeError('boom')"
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)

    def test_parse_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            FlightRecorder.parse(empty)

        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text('{"seq": 0, "kind": "frame", "ts": 1.0}\n')
        with pytest.raises(ValueError):
            FlightRecorder.parse(headerless)

        recorder = FlightRecorder(capacity=16)
        recorder.record("a")
        recorder.record("b")
        truncated = recorder.dump(tmp_path, "drain")
        lines = truncated.read_text().splitlines()
        truncated.write_text("\n".join(lines[:-1]) + "\n")  # lose one event
        with pytest.raises(ValueError):
            FlightRecorder.parse(truncated)


class TestServePathEndToEnd:
    def test_traced_load_merges_across_client_server_and_workers(self, tmp_path):
        identifiers = _stream(count=4096)
        batches = [
            (identifiers[start : start + 512], None)
            for start in range(0, identifiers.shape[0], 512)
        ]
        config = ServeConfig(
            workers=2, trace_dir=tmp_path / "spans", max_delay=0.002
        )
        with ServerThread(create_detector(SHARDED_SPEC), config) as thread:
            stats = run_load(
                "127.0.0.1",
                thread.port,
                batches,
                window=4,
                trace_dir=str(tmp_path / "spans"),
                trace_sample=1.0,
            )
        assert stats["errors"] == 0
        assert stats["latency"]["batches"] == len(batches)
        assert stats["latency"]["p50_s"] <= stats["latency"]["p99_s"]

        trace = merge_shards(tmp_path / "spans")
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        names = {e["name"] for e in events}
        # Client and server share a pid here (ServerThread is in-process)
        # but the two shard workers are real processes of their own.
        assert len(pids) >= 3
        assert {"client.request", "server.process_group",
                "worker.shard_batch"} <= names

        spans = {e["args"]["span_id"]: e for e in events}
        clients = [e for e in events if e["name"] == "client.request"]
        servers = [e for e in events if e["name"] == "server.process_group"]
        workers = [e for e in events if e["name"] == "worker.shard_batch"]
        assert clients and servers and len(workers) >= 2
        for event in clients:
            assert "parent_span_id" not in event["args"]    # roots
        for event in servers:
            parent = spans[event["args"]["parent_span_id"]]
            assert parent["name"] == "client.request"
            assert parent["args"]["trace_id"] == event["args"]["trace_id"]
        for event in workers:
            parent = spans[event["args"]["parent_span_id"]]
            assert parent["name"] == "server.process_group"
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)                     # monotone merge

    def test_untraced_server_writes_no_spans(self, tmp_path):
        identifiers = _stream(count=1024)
        config = ServeConfig(trace_dir=tmp_path / "spans")
        with ServerThread(create_detector(TBF_SPEC), config) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                client.send(identifiers)                    # no FLAG_TRACE
        events = merge_shards(tmp_path / "spans")["traceEvents"]
        assert [e for e in events if e["ph"] == "X"] == []

    def test_stage_quantile_gauges_reach_the_server_exposition(self):
        identifiers = _stream(count=4096)
        session = TelemetrySession()
        with ServerThread(
            create_detector(TBF_SPEC), telemetry=session
        ) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                for start in range(0, identifiers.shape[0], 512):
                    client.send(identifiers[start : start + 512])
            session.emit()
        text = session.registry.to_prometheus()
        for stage in SERVE_STAGES:
            assert f'repro_serve_stage_quantile_seconds{{stage="{stage}",q="0.99"}}' in text
        assert 'repro_serve_stage_seconds_count{stage="detector_compute"}' in text

    def test_engine_death_dumps_a_parseable_flight_record(self, tmp_path):
        identifiers = _stream(count=600)
        hooks = EngineFaultHooks(fail_groups=(0,))
        config = ServeConfig(
            watchdog_interval=0.02, flight_dir=tmp_path / "flight"
        )
        with ServerThread(
            create_detector(TBF_SPEC), config, fault_hooks=hooks
        ) as thread:
            with ServeClient("127.0.0.1", thread.port, timeout=10.0) as client:
                client.send(identifiers)
        dumps = sorted((tmp_path / "flight").glob("flight-engine-death-*.jsonl"))
        assert dumps, "engine death left no flight dump"
        header, events = FlightRecorder.parse(dumps[0])
        assert header["reason"] == "engine-death"
        kinds = [event["kind"] for event in events]
        assert kinds[-1] == "engine_death"
        assert "frame" in kinds        # the window before the death is there

    def test_clean_drain_leaves_a_baseline_dump(self, tmp_path):
        identifiers = _stream(count=1024)
        config = ServeConfig(flight_dir=tmp_path / "flight")
        with ServerThread(create_detector(TBF_SPEC), config) as thread:
            with ServeClient("127.0.0.1", thread.port) as client:
                client.send(identifiers)
        dumps = sorted((tmp_path / "flight").glob("flight-drain-*.jsonl"))
        assert len(dumps) == 1
        header, events = FlightRecorder.parse(dumps[0])
        assert header["reason"] == "drain"
        kinds = {event["kind"] for event in events}
        assert {"frame", "flush", "group_start", "group_end", "drain"} <= kinds
