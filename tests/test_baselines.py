"""Unit tests for the sketch baselines: landmark Bloom, naive
per-sub-window Bloom, Metwally CBF, Stable Bloom."""

import random

import pytest

from repro.baselines import (
    ExactDetector,
    LandmarkBloomDetector,
    MetwallyCBFDetector,
    NaiveSubwindowBloomDetector,
    StableBloomDetector,
)
from repro.errors import ConfigurationError


class TestLandmarkBloom:
    def test_duplicate_within_epoch(self):
        detector = LandmarkBloomDetector(8, 1 << 14, 5, seed=1)
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_epoch_clear_forgets(self):
        detector = LandmarkBloomDetector(4, 1 << 14, 5, seed=1)
        detector.process(42)
        for filler in range(100, 103):
            detector.process(filler)
        assert detector.process(42) is False  # new epoch

    def test_matches_exact_when_filter_large(self):
        detector = LandmarkBloomDetector(16, 1 << 16, 8, seed=2)
        exact = ExactDetector.landmark(16)
        rng = random.Random(4)
        for _ in range(2000):
            identifier = rng.randrange(64)
            assert detector.process(identifier) == exact.process(identifier)

    def test_epoch_clear_cost_counted(self):
        detector = LandmarkBloomDetector(4, 1024, 2, seed=1)
        for identifier in range(5):
            detector.process(identifier)
        # One epoch switch happened: an O(m) write burst.
        assert detector.counter.word_writes >= 1024

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            LandmarkBloomDetector(0, 100)


class TestNaiveSubwindowBloom:
    def test_basic_duplicate_semantics(self):
        detector = NaiveSubwindowBloomDetector(16, 4, 1 << 14, 5, seed=1)
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_block_expiry(self):
        detector = NaiveSubwindowBloomDetector(16, 4, 1 << 14, 5, seed=1)
        detector.process(42)
        for filler in range(100, 115):
            detector.process(filler)
        assert detector.process(42) is False  # position 16: block 0 expired

    def test_check_cost_scales_with_q(self):
        # The strawman's defining cost: ~Q*k reads per duplicate check.
        window, bits, k = 64, 1 << 12, 3
        small = NaiveSubwindowBloomDetector(window, 2, bits, k, seed=2)
        large = NaiveSubwindowBloomDetector(window, 16, bits, k, seed=2)
        for detector in (small, large):
            for identifier in range(3 * window):
                detector.process(identifier)
            detector.counter.reset()
            for identifier in range(10_000, 10_000 + window):
                detector.process(identifier)
        reads_small = small.counter.per_element().word_reads
        reads_large = large.counter.per_element().word_reads
        assert reads_large > reads_small * 3

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            NaiveSubwindowBloomDetector(10, 3, 100)


class TestMetwallyCBF:
    def test_basic_duplicate_semantics(self):
        detector = MetwallyCBFDetector(16, 4, 1 << 14, 4, seed=1)
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_subwindow_subtraction_expires(self):
        detector = MetwallyCBFDetector(16, 4, 1 << 14, 4, counter_bits=16, seed=1)
        detector.process(42)
        for filler in range(100, 115):
            detector.process(filler)
        assert detector.process(42) is False

    def test_no_false_negatives_with_wide_counters(self):
        detector = MetwallyCBFDetector(32, 4, 1 << 15, 4, counter_bits=16, seed=2)
        exact = ExactDetector.jumping(32, 4)
        rng = random.Random(6)
        for _ in range(3000):
            identifier = rng.randrange(80)
            predicted = detector.process(identifier)
            actual = exact.process(identifier)
            assert not (actual and not predicted)

    def test_narrow_counters_saturate_under_honest_load(self):
        # §3.3's width argument: at a well-sized load (~0.7 increments
        # per counter) the busiest of thousands of counters still
        # exceeds a 2-bit cap, so narrow counters saturate even without
        # an adversary.
        detector = MetwallyCBFDetector(512, 4, 2048, 3, counter_bits=2, seed=3)
        for identifier in range(4000):
            detector.process(identifier)
        assert detector.saturation_events > 0

    def test_memory_accounts_all_filters(self):
        detector = MetwallyCBFDetector(16, 4, 1000, 4, counter_bits=8)
        for identifier in range(32):  # activate all sub-filters
            detector.process(identifier)
        # main + Q sub-filters, 8 bits per counter
        assert detector.memory_bits == (4 + 1) * 1000 * 8

    def test_higher_fp_than_gbf_at_same_filter_size(self):
        # §3.3's core claim, measured: with equal per-filter size, the
        # main-CBF check behaves like a filter loaded with N elements
        # while each GBF lane holds only N/Q.
        from repro.core import GBFDetector
        from repro.streams import distinct_stream

        window, subwindows, size, k = 512, 8, 2048, 4
        cbf = MetwallyCBFDetector(window, subwindows, size, k, counter_bits=16, seed=4)
        gbf = GBFDetector(window, subwindows, size, k, seed=4)
        cbf_fp = gbf_fp = 0
        for identifier in map(int, distinct_stream(6 * window, seed=9)):
            if cbf.process(identifier):
                cbf_fp += 1
            if gbf.process(identifier):
                gbf_fp += 1
        assert cbf_fp > gbf_fp * 3

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            MetwallyCBFDetector(10, 3, 100)


class TestStableBloomDetector:
    def test_immediate_repeat_flagged(self):
        detector = StableBloomDetector(1 << 12, 4, seed=1)
        assert detector.process(42) is False
        assert detector.process(42) is True

    def test_tuned_decay_window_scale(self):
        detector = StableBloomDetector.with_tuned_decay(1000, 1 << 12, 4, seed=2)
        assert detector.window_size == 1000
        assert detector.filter.decrements_per_insert >= 1

    def test_has_false_negatives_unlike_tbf(self):
        # The library's reason to include SBF: demonstrate its FNs on a
        # workload TBF handles exactly.
        from repro.core import TBFDetector
        from repro.windows import SlidingWindow

        window = 64
        sbf = StableBloomDetector.with_tuned_decay(window, 512, 4, seed=3)
        tbf = TBFDetector(window, 1 << 14, 6, seed=3)
        sliding = SlidingWindow(window)
        last_valid_sbf = {}
        last_valid_tbf = {}
        sbf_fn = tbf_fn = 0
        rng = random.Random(8)
        for _ in range(6000):
            identifier = rng.randrange(96)
            sliding.observe()
            s = sbf.process(identifier)
            t = tbf.process(identifier)
            prev = last_valid_sbf.get(identifier)
            if prev is not None and sliding.is_active(prev) and not s:
                sbf_fn += 1
            prev = last_valid_tbf.get(identifier)
            if prev is not None and sliding.is_active(prev) and not t:
                tbf_fn += 1
            if not s:
                last_valid_sbf[identifier] = sliding.position
            if not t:
                last_valid_tbf[identifier] = sliding.position
        assert tbf_fn == 0
        assert sbf_fn > 0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            StableBloomDetector.with_tuned_decay(0, 100)
