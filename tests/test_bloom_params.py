"""Unit tests for Bloom-filter parameter mathematics."""

import math

import pytest

from repro.bloom import (
    bits_for_target_rate,
    expected_fill_fraction,
    false_positive_rate,
    false_positive_rate_asymptotic,
    min_false_positive_rate,
    optimal_num_hashes,
)
from repro.errors import ConfigurationError


def test_empty_filter_never_false_positive():
    assert false_positive_rate(1024, 0, 4) == 0.0


def test_exact_close_to_asymptotic_for_large_m():
    exact = false_positive_rate(1 << 20, 100_000, 7)
    asymptotic = false_positive_rate_asymptotic(1 << 20, 100_000, 7)
    assert exact == pytest.approx(asymptotic, rel=1e-3)


def test_rate_increases_with_load():
    rates = [false_positive_rate(4096, n, 4) for n in (100, 500, 1000, 4000)]
    assert rates == sorted(rates)
    assert 0 < rates[0] < rates[-1] < 1


def test_single_hash_single_element():
    # One element, one hash, m bits: FP = 1/m exactly.
    assert false_positive_rate(100, 1, 1) == pytest.approx(0.01)


def test_paper_figure2b_constant():
    # §5: N = 2^20, m = 15,112,980, k = 10 -> "about 0.001".
    rate = false_positive_rate(15_112_980, 1 << 20, 10)
    assert rate == pytest.approx(0.00098, abs=5e-5)


def test_optimal_num_hashes_near_ln2_ratio():
    m, n = 1 << 20, 100_000
    k = optimal_num_hashes(m, n)
    assert k in (math.floor(math.log(2) * m / n), math.ceil(math.log(2) * m / n))
    # Optimal k beats its neighbours.
    best = false_positive_rate(m, n, k)
    assert best <= false_positive_rate(m, n, k + 1)
    if k > 1:
        assert best <= false_positive_rate(m, n, k - 1)


def test_optimal_num_hashes_at_least_one():
    assert optimal_num_hashes(10, 1000) == 1
    assert optimal_num_hashes(10, 0) == 1


def test_paper_constants_chosen_for_k10():
    # The paper's m values make k = 10 optimal for their loads.
    assert optimal_num_hashes(15_112_980, 1 << 20) == 10
    assert optimal_num_hashes(1_876_246, (1 << 20) // 8) == 10


def test_min_false_positive_rate_close_to_power_law():
    m, n = 1 << 16, 4096
    k = optimal_num_hashes(m, n)
    assert min_false_positive_rate(m, n) == pytest.approx(2.0 ** (-k), rel=0.25)


def test_bits_for_target_rate_sufficient_and_tightish():
    n, target = 10_000, 0.001
    m = bits_for_target_rate(n, target)
    assert min_false_positive_rate(m, n) <= target
    # Not wildly oversized: within 25% of the closed-form estimate.
    closed_form = -n * math.log(target) / math.log(2) ** 2
    assert m <= closed_form * 1.25


def test_bits_for_target_rate_validation():
    with pytest.raises(ConfigurationError):
        bits_for_target_rate(0, 0.01)
    with pytest.raises(ConfigurationError):
        bits_for_target_rate(10, 1.5)


def test_expected_fill_fraction_half_at_optimum():
    # At the optimal k the fill fraction is ~1/2.
    m, n = 1 << 18, 20_000
    k = optimal_num_hashes(m, n)
    assert expected_fill_fraction(m, n, k) == pytest.approx(0.5, abs=0.03)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        false_positive_rate(0, 10, 1)
    with pytest.raises(ConfigurationError):
        false_positive_rate(10, -1, 1)
    with pytest.raises(ConfigurationError):
        false_positive_rate(10, 1, 0)


# --- sliced (age-partitioned) FP mathematics -------------------------------


def _brute_force_sliced_rate(fills, num_required):
    """Enumerate all 2**S hit patterns; sum those containing a k-run."""
    import itertools

    total = 0.0
    for pattern in itertools.product((False, True), repeat=len(fills)):
        run = best = 0
        for hit in pattern:
            run = run + 1 if hit else 0
            best = max(best, run)
        if best < num_required:
            continue
        prob = 1.0
        for hit, fill in zip(pattern, fills):
            prob *= fill if hit else 1.0 - fill
        total += prob
    return total


@pytest.mark.parametrize("num_required,num_slices,seed", [
    (1, 5, 0), (2, 6, 1), (3, 8, 2), (4, 10, 3), (5, 12, 4),
])
def test_sliced_rate_matches_brute_force(num_required, num_slices, seed):
    import random

    from repro.bloom import sliced_false_positive_rate

    rng = random.Random(seed)
    fills = [rng.random() for _ in range(num_slices)]
    assert sliced_false_positive_rate(fills, num_required) == pytest.approx(
        _brute_force_sliced_rate(fills, num_required), rel=1e-12
    )


def test_sliced_rate_degenerate_fills():
    from repro.bloom import sliced_false_positive_rate

    # All-empty slices never false-positive; all-full always do.
    assert sliced_false_positive_rate([0.0] * 6, 3) == 0.0
    assert sliced_false_positive_rate([1.0] * 6, 3) == pytest.approx(1.0)
    # A single required slice reduces to 1 - prod(1 - p_a).
    fills = [0.1, 0.25, 0.5]
    expected = 1.0 - (1 - 0.1) * (1 - 0.25) * (1 - 0.5)
    assert sliced_false_positive_rate(fills, 1) == pytest.approx(expected)


def test_sliced_rate_validation():
    from repro.bloom import sliced_false_positive_rate

    with pytest.raises(ConfigurationError):
        sliced_false_positive_rate([0.5, 0.5], 0)
    with pytest.raises(ConfigurationError):
        sliced_false_positive_rate([0.5], 2)
    with pytest.raises(ConfigurationError):
        sliced_false_positive_rate([0.5, 1.5], 1)


def test_apbf_rate_matches_manual_fills():
    from repro.bloom import apbf_false_positive_rate, sliced_false_positive_rate

    k, l, m, g = 3, 5, 256, 16
    fills = [
        -math.expm1(min(age + 1, k) * g * math.log1p(-1.0 / m))
        for age in range(k + l)
    ]
    assert apbf_false_positive_rate(k, l, m, g) == pytest.approx(
        _brute_force_sliced_rate(fills, k), rel=1e-12
    )
    assert apbf_false_positive_rate(k, l, m, g) == sliced_false_positive_rate(
        fills, k
    )


def test_apbf_rate_monotone_in_slice_bits():
    from repro.bloom import apbf_false_positive_rate

    rates = [apbf_false_positive_rate(4, 6, m, 8) for m in (64, 128, 256, 512)]
    assert rates == sorted(rates, reverse=True)
    assert all(0.0 < r < 1.0 for r in rates)
