"""Tests for the adversarial-economics analysis, including an empirical
check of the identifier-treadmill bound against a real detector."""

import math

import pytest

from repro.analysis import (
    AttackCostModel,
    attacker_roi,
    breakeven_identity_cost,
    detection_damage_reduction,
    identities_needed,
    max_billed_fraud_per_window,
    publisher_fp_loss_per_window,
)
from repro.errors import ConfigurationError


class TestBounds:
    def test_one_billed_click_per_identity(self):
        assert max_billed_fraud_per_window(100) == 100
        assert identities_needed(100) == 100
        with pytest.raises(ConfigurationError):
            max_billed_fraud_per_window(-1)

    def test_roi_capped_by_detection(self):
        model = AttackCostModel(cpc=1.0, identity_cost=0.1)
        undetected = attacker_roi(model, clicks_per_identity_per_window=50,
                                  detection_enabled=False)
        detected = attacker_roi(model, clicks_per_identity_per_window=50,
                                detection_enabled=True)
        assert undetected == pytest.approx(500.0)
        assert detected == pytest.approx(10.0)
        # Clicking harder doesn't help once detection is on.
        harder = attacker_roi(model, clicks_per_identity_per_window=500,
                              detection_enabled=True)
        assert harder == detected

    def test_free_identities_break_everything(self):
        model = AttackCostModel(cpc=1.0, identity_cost=0.0)
        assert attacker_roi(model, 10, detection_enabled=True) == math.inf

    def test_damage_reduction_monotone(self):
        assert detection_damage_reduction(1) == 0.0
        assert detection_damage_reduction(10) == pytest.approx(0.9)
        assert detection_damage_reduction(100) > detection_damage_reduction(10)
        with pytest.raises(ConfigurationError):
            detection_damage_reduction(0.5)

    def test_fp_loss(self):
        loss = publisher_fp_loss_per_window(0.001, 100_000, 0.5)
        assert loss == pytest.approx(50.0)
        with pytest.raises(ConfigurationError):
            publisher_fp_loss_per_window(2.0, 1, 1)

    def test_breakeven(self):
        assert breakeven_identity_cost(0.75) == 0.75

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            AttackCostModel(cpc=-1, identity_cost=0)
        with pytest.raises(ConfigurationError):
            attacker_roi(AttackCostModel(1, 1), 0, True)


class TestEmpiricalTreadmill:
    def test_detector_enforces_one_bill_per_identity_per_window(self):
        # The bound max_billed_fraud_per_window rests on: with zero FN,
        # an identity bills at most once per window.  Verify against a
        # real TBF under the worst-case hammering attack.
        from repro.core import TBFDetector

        window = 128
        detector = TBFDetector(window, 1 << 14, 6, seed=1)
        num_identities = 10
        billed = 0
        for step in range(window * 5):
            identity = step % num_identities  # round-robin hammering
            if not detector.process(identity):
                billed += 1
        windows_elapsed = (window * 5) / window
        # Per identity: one bill at the start, then one each time its
        # previous valid click expires (every N arrivals).
        assert billed <= num_identities * math.ceil(windows_elapsed)
