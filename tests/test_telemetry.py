"""Unit tests for the telemetry substrate: registry, tracing, session.

Covers the three registry design constraints (hot-path recording,
no-op twins, crash-consistent state) plus the Prometheus text
exposition — including the line-format lint the CI observability job
runs, so a malformed sample line fails before a scraper ever sees it.
"""

import json
import math
import re

import pytest

from repro.errors import ConfigurationError
from repro.core import GBFDetector
from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    TelemetrySession,
    Tracer,
)
from repro.telemetry.registry import DEFAULT_BUCKETS, format_value
from repro.telemetry.tracing import NULL_SPAN


class TestCounter:
    def test_inc(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(5)
        assert counter._default().value == 6

    def test_negative_inc_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(10.5)
        gauge.inc(2)
        gauge.dec(0.5)
        assert gauge._default().value == 12.0


class TestHistogram:
    def test_bucket_placement_and_cumulation(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 10.0):
            histogram.observe(value)
        child = histogram._default()
        # 0.5 and 1.0 land in the <=1.0 bucket (upper bounds, bisect_left
        # puts an exact boundary hit in its own bucket), 1.5 in <=2.0,
        # 10.0 in +Inf.
        cumulative = child.cumulative_buckets()
        assert cumulative == [(1.0, 2), (2.0, 3), (5.0, 3), (math.inf, 4)]
        assert child.count == 4
        assert child.sum == pytest.approx(13.0)
        assert child.mean == pytest.approx(13.0 / 4)
        assert child.min == 0.5 and child.max == 10.0

    def test_reservoir_is_a_ring(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", buckets=(1.0,), reservoir_size=4
        )._default()
        for value in range(10):
            histogram.observe(float(value))
        assert len(histogram.reservoir) == 4
        assert sorted(histogram.reservoir) == [6.0, 7.0, 8.0, 9.0]
        assert histogram.count == 10

    def test_quantiles(self):
        histogram = MetricsRegistry().histogram("h")._default()
        assert histogram.quantile(0.5) == 0.0  # empty reservoir
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 51.0
        assert histogram.quantile(1.0) == 100.0
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_bad_buckets_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ConfigurationError):
            registry.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h3", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h4", reservoir_size=0)


class TestFamilies:
    def test_labeled_children_are_cached(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        assert family.labels(shard="0") is family.labels(shard="0")
        assert family.labels(shard="0") is not family.labels(shard="1")

    def test_missing_or_extra_labels_raise(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        with pytest.raises(ConfigurationError):
            family.labels()
        with pytest.raises(ConfigurationError):
            family.labels(shard="0", extra="1")

    def test_labeled_family_rejects_bare_recording(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        with pytest.raises(ConfigurationError):
            family.inc()

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total", "help") is registry.counter("c_total")

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("series", labels=("a",))
        with pytest.raises(ConfigurationError):
            registry.gauge("series", labels=("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("series", labels=("b",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad-name")
        with pytest.raises(ConfigurationError):
            registry.counter("ok", labels=("bad-label",))


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_clicks_total", "Clicks").inc(42)
    registry.gauge("repro_fill", "Fill ratio").set(0.125)
    labeled = registry.counter(
        "repro_events_total", "Events", labels=("detector", "key")
    )
    labeled.labels(detector="gbf", key="rotations").inc(3)
    labeled.labels(detector='we"ird\\', key="x").inc()
    histogram = registry.histogram(
        "repro_latency_seconds", "Latency", buckets=(0.01, 0.1)
    )
    histogram.observe(0.005)
    histogram.observe(0.5)
    return registry


# One Prometheus text-format line: comment, or `name{labels} value`.
_PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (NaN|[+-]Inf|[-+]?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?)$"
)


class TestPrometheusExposition:
    def test_every_line_is_well_formed(self):
        text = _populated_registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert _PROM_COMMENT.match(line) or _PROM_SAMPLE.match(line), line

    def test_help_and_type_precede_samples(self):
        lines = _populated_registry().to_prometheus().splitlines()
        index = lines.index("# HELP repro_clicks_total Clicks")
        assert lines[index + 1] == "# TYPE repro_clicks_total counter"
        assert lines[index + 2] == "repro_clicks_total 42"

    def test_label_escaping(self):
        text = _populated_registry().to_prometheus()
        assert 'detector="we\\"ird\\\\"' in text

    def test_histogram_series(self):
        text = _populated_registry().to_prometheus()
        assert 'repro_latency_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_latency_seconds_count 2" in text

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestStateRoundTrip:
    def test_bit_identical_through_json(self):
        registry = _populated_registry()
        state = registry.state_dict()
        # The journal goes through JSON inside checkpoint frames.
        wire = json.loads(json.dumps(state))

        restored = _restored_like(registry, wire)
        assert restored.state_dict() == state
        assert restored.to_prometheus() == registry.to_prometheus()

    def test_load_before_register_is_parked(self):
        state = _populated_registry().state_dict()
        registry = MetricsRegistry()
        registry.load_state(state)
        # Nothing registered yet: snapshot is empty, state is pending.
        assert registry.snapshot()["counters"] == []
        counter = registry.counter("repro_clicks_total", "Clicks")
        assert counter._default().value == 42

    def test_unknown_series_are_kept_pending_not_dropped(self):
        registry = MetricsRegistry()
        registry.load_state({"counters": {"later_total": 7}})
        registry.counter("later_total").inc(0)  # force child creation
        assert registry.counter("later_total")._default().value == 7


def _restored_like(registry: MetricsRegistry, state) -> MetricsRegistry:
    """A fresh registry with the same families, loaded from ``state``."""
    restored = MetricsRegistry()
    restored.load_state(state)
    for family in registry.families():
        method = getattr(restored, family.kind)
        kwargs = dict(family._metric_kwargs)  # histogram bucket layout
        fresh = method(family.name, family.help, labels=family.label_names, **kwargs)
        for key, _ in family.children():
            fresh.labels(**dict(zip(family.label_names, key)))
    return restored


class TestNullRegistry:
    def test_disabled_contract(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("x_total")
        counter.inc()
        counter.labels(anything="goes").inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }
        assert registry.to_prometheus() == ""
        assert registry.state_dict() == {}
        registry.load_state({"counters": {"x_total": 3}})  # no-op


class TestTracer:
    def test_span_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.span("phase", size=10) as span:
            span.annotate(extra=1)
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "phase"
        assert spans[0].duration >= 0.0
        assert spans[0].attributes == {"size": 10, "extra": 1}

    def test_nesting_records_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["inner"].parent == "outer"
        assert by_name["outer"].parent is None

    def test_exception_annotated_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.spans()[0].attributes["error"] == "ValueError"

    def test_ring_drops_oldest(self):
        tracer = Tracer(max_spans=2)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s2", "s3"]
        assert tracer.dropped == 2

    def test_chrome_trace_export(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", size=3):
                pass
        events = json.loads(tracer.to_json())["traceEvents"]
        assert {event["name"] for event in events} == {"outer", "inner"}
        inner = next(event for event in events if event["name"] == "inner")
        assert inner["ph"] == "X"
        assert inner["args"] == {"size": 3, "parent": "outer"}
        assert inner["dur"] >= 0.0

    def test_null_tracer(self):
        tracer = NullTracer()
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        with span:
            span.annotate(ignored=True)
        assert tracer.spans() == []
        assert json.loads(tracer.to_json()) == {"traceEvents": []}


class TestSession:
    def test_disabled_session_is_inert(self):
        session = TelemetrySession.disabled()
        assert session.enabled is False
        assert session.instrument_detector(object()) is None
        session.advance(10_000_000)
        assert session.emit() is None
        assert session.state_dict() == {}

    def test_advance_fires_snapshot_callbacks_on_cadence(self):
        session = TelemetrySession(snapshot_every=100)
        detector = GBFDetector(64, 8, 512, 3, seed=1)
        session.instrument_detector(detector)
        seen = []
        session.on_snapshot(seen.append)
        for identifier in range(250):
            detector.process(identifier)
            session.advance(1)
        assert len(seen) == 2  # at click 100 and 200
        names = {entry["name"] for entry in seen[-1]["gauges"]}
        assert "repro_detector_fill_ratio" in names
        assert "repro_detector_estimated_fp_rate" in names

    def test_advance_without_subscribers_still_refreshes_gauges(self):
        session = TelemetrySession(snapshot_every=10)
        detector = GBFDetector(64, 8, 512, 3, seed=1)
        session.instrument_detector(detector)
        for identifier in range(50):
            detector.process(identifier)
            session.advance(1)
        snapshot = session.registry.snapshot()
        fills = [
            entry["value"]
            for entry in snapshot["gauges"]
            if entry["name"] == "repro_detector_fill_ratio"
        ]
        assert any(fill > 0 for fill in fills)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
