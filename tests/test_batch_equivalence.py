"""Property tests: batch verdicts and state are bit-identical to scalar.

The non-negotiable invariant of the vectorized path: for ANY stream and
ANY chunking, ``process_batch`` / ``process_batch_at`` must produce the
same verdicts as a scalar loop AND leave the detector in the same state
(checkpoint bytes and operation counters equal).  Streams are drawn
from a small identifier universe so duplicates are dense, straddle
chunk boundaries, and interleave with window jumps; chunk sizes span 1
(degenerate) through larger than the window.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
    save_detector,
)
from repro.detection import ShardedDetector

SETTINGS = settings(max_examples=25, deadline=None)

identifiers = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=300
)
# Chunk-size sequence: cycled to slice the stream; includes 1 and
# values larger than every window used below.
chunkings = st.lists(st.integers(min_value=1, max_value=80), min_size=1, max_size=6)
gaps = st.lists(
    st.floats(min_value=0.0, max_value=6.0, allow_nan=False), min_size=1, max_size=300
)


def _slices(n, chunking):
    start = 0
    i = 0
    while start < n:
        stop = min(start + chunking[i % len(chunking)], n)
        yield start, stop
        start = stop
        i += 1


def _assert_count_equivalence(build, ids, chunking):
    scalar = build()
    batch = build()
    array = np.array(ids, dtype=np.uint64)
    expected = np.array([scalar.process(int(x)) for x in ids], dtype=bool)
    got = np.empty(len(ids), dtype=bool)
    for start, stop in _slices(len(ids), chunking):
        got[start:stop] = batch.process_batch(array[start:stop])
    assert np.array_equal(expected, got)
    assert save_detector(scalar) == save_detector(batch)
    assert scalar.counter == batch.counter


def _assert_time_equivalence(build, ids, gaps, chunking):
    scalar = build()
    batch = build()
    n = min(len(ids), len(gaps))
    array = np.array(ids[:n], dtype=np.uint64)
    stamps = np.cumsum(np.array(gaps[:n], dtype=np.float64))
    expected = np.array(
        [scalar.process_at(int(x), float(t)) for x, t in zip(array, stamps)],
        dtype=bool,
    )
    got = np.empty(n, dtype=bool)
    for start, stop in _slices(n, chunking):
        got[start:stop] = batch.process_batch_at(
            array[start:stop], stamps[start:stop]
        )
    assert np.array_equal(expected, got)
    assert save_detector(scalar) == save_detector(batch)
    assert scalar.counter == batch.counter


class TestCountBasedEquivalence:
    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_gbf(self, ids, chunking):
        _assert_count_equivalence(
            lambda: GBFDetector(32, 4, 97, 3, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_gbf_odd_geometry(self, ids, chunking):
        # Slot count not divisible by slots-per-word; rotation mid-chunk.
        _assert_count_equivalence(
            lambda: GBFDetector(48, 6, 61, 4, seed=2), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_gbf_wide_layout(self, ids, chunking):
        # Q + 1 > word bits: the scalar-fallback regime.
        _assert_count_equivalence(
            lambda: GBFDetector(140, 70, 97, 3, word_bits=8, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_tbf(self, ids, chunking):
        _assert_count_equivalence(
            lambda: TBFDetector(24, 53, 3, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_tbf_tight_slack(self, ids, chunking):
        # Small C: cleaning sweeps several entries per arrival and the
        # cursor wraps mid-chunk.
        _assert_count_equivalence(
            lambda: TBFDetector(32, 40, 4, cleanup_slack=5, seed=3), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_tbf_jumping(self, ids, chunking):
        _assert_count_equivalence(
            lambda: TBFJumpingDetector(24, 4, 61, 3, seed=5), ids, chunking
        )


class TestTimeBasedEquivalence:
    @SETTINGS
    @given(ids=identifiers, gaps=gaps, chunking=chunkings)
    def test_time_gbf(self, ids, gaps, chunking):
        _assert_time_equivalence(
            lambda: TimeBasedGBFDetector(16.0, 4, 97, 3, seed=5),
            ids,
            gaps,
            chunking,
        )

    @SETTINGS
    @given(ids=identifiers, gaps=gaps, chunking=chunkings)
    def test_time_tbf(self, ids, gaps, chunking):
        _assert_time_equivalence(
            lambda: TimeBasedTBFDetector(16.0, 8, 53, 3, seed=5),
            ids,
            gaps,
            chunking,
        )


class TestShardedEquivalence:
    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_sharded_tbf(self, ids, chunking):
        def build():
            return ShardedDetector(
                [TBFDetector(24, 53, 3, seed=shard) for shard in range(3)]
            )

        scalar = build()
        batch = build()
        array = np.array(ids, dtype=np.uint64)
        expected = np.array([scalar.process(int(x)) for x in ids], dtype=bool)
        got = np.empty(len(ids), dtype=bool)
        for start, stop in _slices(len(ids), chunking):
            got[start:stop] = batch.process_batch(array[start:stop])
        assert np.array_equal(expected, got)
        assert save_detector(scalar) == save_detector(batch)
        assert scalar.shard_arrivals() == batch.shard_arrivals()
