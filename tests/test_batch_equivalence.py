"""Property tests: batch verdicts and state are bit-identical to scalar.

The non-negotiable invariant of the vectorized path: for ANY stream and
ANY chunking, ``process_batch`` / ``process_batch_at`` must produce the
same verdicts as a scalar loop AND leave the detector in the same state
(checkpoint bytes and operation counters equal).  Streams are drawn
from a small identifier universe so duplicates are dense, straddle
chunk boundaries, and interleave with window jumps; chunk sizes span 1
(degenerate) through larger than the window.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
    save_detector,
)
from repro.adaptive import AgePartitionedBFDetector, TimeLimitedBFDetector
from repro.detection import ShardedDetector

SETTINGS = settings(max_examples=25, deadline=None)

identifiers = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=300
)
# Chunk-size sequence: cycled to slice the stream; includes 1 and
# values larger than every window used below.
chunkings = st.lists(st.integers(min_value=1, max_value=80), min_size=1, max_size=6)
gaps = st.lists(
    st.floats(min_value=0.0, max_value=6.0, allow_nan=False), min_size=1, max_size=300
)


def _slices(n, chunking):
    start = 0
    i = 0
    while start < n:
        stop = min(start + chunking[i % len(chunking)], n)
        yield start, stop
        start = stop
        i += 1


def _assert_count_equivalence(build, ids, chunking):
    scalar = build()
    batch = build()
    array = np.array(ids, dtype=np.uint64)
    expected = np.array([scalar.process(int(x)) for x in ids], dtype=bool)
    got = np.empty(len(ids), dtype=bool)
    for start, stop in _slices(len(ids), chunking):
        got[start:stop] = batch.process_batch(array[start:stop])
    assert np.array_equal(expected, got)
    assert save_detector(scalar) == save_detector(batch)
    assert scalar.counter == batch.counter


def _assert_time_equivalence(build, ids, gaps, chunking):
    scalar = build()
    batch = build()
    n = min(len(ids), len(gaps))
    array = np.array(ids[:n], dtype=np.uint64)
    stamps = np.cumsum(np.array(gaps[:n], dtype=np.float64))
    expected = np.array(
        [scalar.process_at(int(x), float(t)) for x, t in zip(array, stamps)],
        dtype=bool,
    )
    got = np.empty(n, dtype=bool)
    for start, stop in _slices(n, chunking):
        got[start:stop] = batch.process_batch_at(
            array[start:stop], stamps[start:stop]
        )
    assert np.array_equal(expected, got)
    assert save_detector(scalar) == save_detector(batch)
    assert scalar.counter == batch.counter


class TestCountBasedEquivalence:
    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_gbf(self, ids, chunking):
        _assert_count_equivalence(
            lambda: GBFDetector(32, 4, 97, 3, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_gbf_odd_geometry(self, ids, chunking):
        # Slot count not divisible by slots-per-word; rotation mid-chunk.
        _assert_count_equivalence(
            lambda: GBFDetector(48, 6, 61, 4, seed=2), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_gbf_wide_layout(self, ids, chunking):
        # Q + 1 > word bits: the scalar-fallback regime.
        _assert_count_equivalence(
            lambda: GBFDetector(140, 70, 97, 3, word_bits=8, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_tbf(self, ids, chunking):
        _assert_count_equivalence(
            lambda: TBFDetector(24, 53, 3, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_tbf_tight_slack(self, ids, chunking):
        # Small C: cleaning sweeps several entries per arrival and the
        # cursor wraps mid-chunk.
        _assert_count_equivalence(
            lambda: TBFDetector(32, 40, 4, cleanup_slack=5, seed=3), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_tbf_jumping(self, ids, chunking):
        _assert_count_equivalence(
            lambda: TBFJumpingDetector(24, 4, 61, 3, seed=5), ids, chunking
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_apbf(self, ids, chunking):
        # Tiny generations: shifts land mid-chunk; odd slice width so
        # the bit/word layout is unaligned.
        _assert_count_equivalence(
            lambda: AgePartitionedBFDetector(4, 6, 61, 5, seed=5),
            ids,
            chunking,
        )

    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_apbf_single_insert_generations(self, ids, chunking):
        # g = 1: every insert shifts — the degenerate boundary regime.
        _assert_count_equivalence(
            lambda: AgePartitionedBFDetector(3, 5, 37, 1, seed=2),
            ids,
            chunking,
        )


class TestTimeBasedEquivalence:
    @SETTINGS
    @given(ids=identifiers, gaps=gaps, chunking=chunkings)
    def test_time_gbf(self, ids, gaps, chunking):
        _assert_time_equivalence(
            lambda: TimeBasedGBFDetector(16.0, 4, 97, 3, seed=5),
            ids,
            gaps,
            chunking,
        )

    @SETTINGS
    @given(ids=identifiers, gaps=gaps, chunking=chunkings)
    def test_time_tbf(self, ids, gaps, chunking):
        _assert_time_equivalence(
            lambda: TimeBasedTBFDetector(16.0, 8, 53, 3, seed=5),
            ids,
            gaps,
            chunking,
        )

    @SETTINGS
    @given(ids=identifiers, gaps=gaps, chunking=chunkings)
    def test_time_limited_bf(self, ids, gaps, chunking):
        # Unit length 16/6 s against gaps up to 6 s: multi-unit shifts
        # and full-expiry jumps both occur inside chunks.
        _assert_time_equivalence(
            lambda: TimeLimitedBFDetector(16.0, 4, 6, 61, seed=5),
            ids,
            gaps,
            chunking,
        )


COUNT_BUILDERS = {
    "gbf": lambda: GBFDetector(32, 4, 97, 3, seed=5),
    "tbf": lambda: TBFDetector(24, 53, 3, seed=5),
    "tbf-jumping": lambda: TBFJumpingDetector(24, 4, 61, 3, seed=5),
    "apbf": lambda: AgePartitionedBFDetector(4, 6, 61, 5, seed=5),
}
TIME_BUILDERS = {
    "gbf-time": lambda: TimeBasedGBFDetector(16.0, 4, 97, 3, seed=5),
    "tbf-time": lambda: TimeBasedTBFDetector(16.0, 8, 53, 3, seed=5),
    "time-limited-bf": lambda: TimeLimitedBFDetector(16.0, 4, 6, 61, seed=5),
}


def _counter_state(counter):
    return (
        counter.word_reads,
        counter.word_writes,
        counter.hash_evaluations,
        counter.elements,
    )


class TestBatchEdgeCases:
    """Deterministic corners the fuzz above reaches only by luck."""

    @pytest.mark.parametrize("name", sorted(COUNT_BUILDERS))
    def test_empty_batch_is_a_noop(self, name):
        detector = COUNT_BUILDERS[name]()
        detector.process_batch(np.arange(8, dtype=np.uint64))
        before = save_detector(detector)
        counter_before = _counter_state(detector.counter)
        verdicts = detector.process_batch(np.empty(0, dtype=np.uint64))
        assert verdicts.shape == (0,)
        assert save_detector(detector) == before
        assert _counter_state(detector.counter) == counter_before

    @pytest.mark.parametrize("name", sorted(TIME_BUILDERS))
    def test_empty_timed_batch_is_a_noop(self, name):
        detector = TIME_BUILDERS[name]()
        detector.process_batch_at(
            np.arange(8, dtype=np.uint64), np.arange(8, dtype=np.float64)
        )
        before = save_detector(detector)
        counter_before = _counter_state(detector.counter)
        verdicts = detector.process_batch_at(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.float64)
        )
        assert verdicts.shape == (0,)
        assert save_detector(detector) == before
        assert _counter_state(detector.counter) == counter_before

    @pytest.mark.parametrize("name", sorted(TIME_BUILDERS))
    def test_single_element_segments(self, name):
        # Arrivals so far apart every fused segment holds one element:
        # the segment machinery degenerates to the scalar cadence.
        ids = np.arange(40, dtype=np.uint64) % 7
        stamps = np.cumsum(np.full(40, 100.0))
        _assert_time_equivalence(
            TIME_BUILDERS[name], list(ids), list(np.diff(stamps, prepend=0.0)), [40]
        )

    @pytest.mark.parametrize("name", sorted(TIME_BUILDERS))
    def test_timestamps_exactly_on_unit_boundaries(self, name):
        # Every arrival lands exactly on a sub-window / cleaning-unit
        # boundary (integral multiples of the unit duration), the case
        # where an off-by-one in segment extent or budget accounting
        # would first show: boundary elements must open the *next*
        # segment, never extend the previous one.
        detector = TIME_BUILDERS[name]()
        unit = detector.unit_duration
        ids = np.arange(60, dtype=np.uint64) % 9
        units = np.repeat(np.arange(20, dtype=np.float64), 3)
        stamps = units * unit
        gaps = list(np.diff(stamps, prepend=0.0))
        for chunking in ([60], [1], [7]):
            _assert_time_equivalence(TIME_BUILDERS[name], list(ids), gaps, chunking)

    @pytest.mark.parametrize("name", sorted(COUNT_BUILDERS))
    def test_duplicate_ids_within_one_chunk_first_writer_wins(self, name):
        # The same identifier many times inside one batch: the first
        # occurrence inserts (first-writer semantics in the scatter
        # resolution), every later one is a duplicate — matching the
        # scalar loop and leaving identical state.
        ids = [3, 3, 3, 5, 3, 5, 9, 5, 3]
        _assert_count_equivalence(COUNT_BUILDERS[name], ids, [len(ids)])
        detector = COUNT_BUILDERS[name]()
        verdicts = detector.process_batch(np.array(ids, dtype=np.uint64))
        assert not verdicts[0] and not verdicts[3] and not verdicts[6]
        assert bool(verdicts[1]) and bool(verdicts[2]) and bool(verdicts[4])

    @pytest.mark.parametrize("name", sorted(TIME_BUILDERS))
    def test_duplicate_ids_within_one_segment(self, name):
        # Same, but all inside one fused time segment (identical
        # timestamps keep every element in the first segment).
        ids = [3, 3, 5, 3, 5, 9]
        gaps = [0.0] * len(ids)
        _assert_time_equivalence(TIME_BUILDERS[name], ids, gaps, [len(ids)])
        detector = TIME_BUILDERS[name]()
        verdicts = detector.process_batch_at(
            np.array(ids, dtype=np.uint64), np.zeros(len(ids), dtype=np.float64)
        )
        assert not verdicts[0] and not verdicts[2] and not verdicts[5]
        assert bool(verdicts[1]) and bool(verdicts[3]) and bool(verdicts[4])


class TestShardedEquivalence:
    @SETTINGS
    @given(ids=identifiers, chunking=chunkings)
    def test_sharded_tbf(self, ids, chunking):
        def build():
            return ShardedDetector(
                [TBFDetector(24, 53, 3, seed=shard) for shard in range(3)]
            )

        scalar = build()
        batch = build()
        array = np.array(ids, dtype=np.uint64)
        expected = np.array([scalar.process(int(x)) for x in ids], dtype=bool)
        got = np.empty(len(ids), dtype=bool)
        for start, stop in _slices(len(ids), chunking):
            got[start:stop] = batch.process_batch(array[start:stop])
        assert np.array_equal(expected, got)
        assert save_detector(scalar) == save_detector(batch)
        assert scalar.shard_arrivals() == batch.shard_arrivals()
