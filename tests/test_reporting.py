"""Edge-case coverage for the plain-text reporting helpers.

The happy paths are exercised constantly by the experiment harness; what
breaks in practice is the degenerate input — no rows, mixed cell types,
ragged value magnitudes — so those cases get explicit tests here.
"""

import pytest

from repro.metrics.reporting import (
    format_cell,
    render_series,
    render_table,
    to_csv,
)


class TestFormatCell:
    def test_bool_is_not_formatted_as_int(self):
        assert format_cell(True) == "True"
        assert format_cell(False) == "False"

    def test_int_passthrough(self):
        assert format_cell(123456789) == "123456789"

    def test_small_float_switches_to_scientific(self):
        assert format_cell(0.00001234) == "1.234e-05"

    def test_large_float_switches_to_scientific(self):
        assert format_cell(12345678.0) == "1.235e+07"

    def test_zero_stays_plain(self):
        assert format_cell(0.0) == "0"

    def test_precision_respected(self):
        assert format_cell(0.123456789, precision=3) == "0.123"

    def test_string_passthrough(self):
        assert format_cell("n/a") == "n/a"


class TestRenderTableEdges:
    def test_empty_rows_renders_header_and_separator_only(self):
        text = render_table(["a", "bb"], [])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].split(" | ") == ["a", "bb"]
        assert set(lines[1]) <= {"-", "+"}

    def test_empty_rows_with_title(self):
        text = render_table(["x"], [], title="Empty")
        assert text.splitlines()[0] == "Empty"
        assert len(text.splitlines()) == 3

    def test_mixed_cell_types_align(self):
        text = render_table(
            ["name", "count", "rate", "ok"],
            [["alpha", 10, 0.5, True], ["b", 123456, 1.25e-9, False]],
        )
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width
        assert "1.250e-09" in text
        assert "True" in text and "False" in text

    def test_wide_cell_grows_column(self):
        text = render_table(["x"], [["wider-than-header"]])
        header, _, row = text.splitlines()
        assert len(header) == len(row) == len("wider-than-header")


class TestRenderSeriesEdges:
    def test_empty_x_values(self):
        text = render_series("k", [], [("fp", [])])
        assert len(text.splitlines()) == 2  # header + separator, no rows

    def test_mismatched_series_length_raises(self):
        with pytest.raises(IndexError):
            render_series("k", [1, 2], [("fp", [0.1])])


class TestToCsvEdges:
    def test_empty_rows(self):
        assert to_csv(["a", "b"], []) == "a,b\n"

    def test_mixed_types(self):
        csv_text = to_csv(["n", "v", "flag"], [["x", 2.5, True], [0, 1e-12, False]])
        lines = csv_text.splitlines()
        assert lines[1] == "x,2.5,True"
        assert lines[2] == "0,1.000e-12,False"

    def test_trailing_newline(self):
        assert to_csv(["a"], [[1]]).endswith("\n")
