"""Integration tests for detector/pipeline/supervisor instrumentation.

The tentpole invariants:

* every detector's live ``estimated_fp_rate`` gauge equals the
  closed-form value from :mod:`repro.bloom.params` for the same
  measured fill state (property-tested, exact float equality);
* the ``duplicates`` total survives checkpoint save/load for every
  variant;
* instrument counters are delta-incremented, so collect() twice and a
  checkpoint restore never double-count;
* a supervised crash + resume leaves the telemetry counters exactly
  where an uninterrupted run would (the journal is bit-identical).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.params import false_positive_rate, false_positive_rate_from_fill
from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
    load_detector,
    save_detector,
)
from repro.core.checkpoint import unpack_frame
from repro.detection import DetectionPipeline
from repro.detection.sharded import FailoverPolicy, ShardedDetector
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    InjectedCrash,
    SupervisedPipeline,
)
from repro.streams.click import Click
from repro.telemetry import (
    DetectorInstrument,
    MetricsRegistry,
    TelemetrySession,
    theoretical_fp_bound,
)

DETECTOR_VARIANTS = [
    ("gbf", lambda: GBFDetector(64, 8, 1024, 4, seed=3)),
    ("tbf", lambda: TBFDetector(64, 2048, 4, seed=3)),
    ("tbf-jumping", lambda: TBFJumpingDetector(64, 8, 2048, 4, seed=3)),
    (
        "gbf-time",
        lambda: TimeBasedGBFDetector(
            24.0, 4, 1024, 4, units_per_subwindow=4, seed=3
        ),
    ),
    ("tbf-time", lambda: TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)),
]


def drive(detector, identifiers):
    """Feed a stream through either detector protocol."""
    process = getattr(detector, "process", None)
    if process is not None:
        return [process(identifier) for identifier in identifiers]
    return [
        detector.process_at(identifier, 0.5 * index)
        for index, identifier in enumerate(identifiers)
    ]


def closed_form_fp(detector) -> float:
    """The paper's FP formula applied to the detector's measured fills.

    Recomposed here independently of ``estimated_fp_rate`` so the test
    checks the detector against :mod:`repro.bloom.params` rather than
    against itself.
    """
    if hasattr(detector, "active_lanes"):  # GBF family (Theorem 1 form)
        product = 1.0
        for lane in detector.active_lanes():
            fill = detector.lane_bits_set(lane) / detector.bits_per_filter
            product *= 1.0 - false_positive_rate_from_fill(
                fill, detector.num_hashes
            )
        return 1.0 - product
    # TBF family (Theorem 2 form)
    return false_positive_rate_from_fill(
        detector.active_entries() / detector.num_entries, detector.num_hashes
    )


class TestTheoreticalBounds:
    def test_gbf_bound_is_theorem_1(self):
        detector = GBFDetector(64, 8, 1024, 4, seed=3)
        f_sub = false_positive_rate(1024, 8, 4)
        assert theoretical_fp_bound(detector) == pytest.approx(
            1.0 - (1.0 - f_sub) ** 9
        )

    def test_tbf_bound_is_theorem_2(self):
        detector = TBFDetector(64, 2048, 4, seed=3)
        assert theoretical_fp_bound(detector) == false_positive_rate(2048, 64, 4)

    def test_tbf_jumping_bound_covers_partial_subwindow(self):
        detector = TBFJumpingDetector(64, 8, 2048, 4, seed=3)
        assert theoretical_fp_bound(detector) == false_positive_rate(2048, 72, 4)

    def test_time_based_variants_have_no_a_priori_bound(self):
        assert theoretical_fp_bound(
            TimeBasedTBFDetector(24.0, 8, 2048, 4, seed=3)
        ) is None

    def test_sharded_bound_is_worst_shard(self):
        detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
        shard_bounds = [theoretical_fp_bound(shard) for shard in detector.shards]
        assert theoretical_fp_bound(detector) == max(shard_bounds)


class TestLiveFpGauge:
    @pytest.mark.parametrize("name,factory", DETECTOR_VARIANTS)
    @given(stream=st.lists(st.integers(0, 40), max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_estimate_matches_closed_form_exactly(self, name, factory, stream):
        detector = factory()
        drive(detector, stream)
        expected = closed_form_fp(detector)
        assert detector.estimated_fp_rate() == expected  # exact, not approx
        assert detector.telemetry_snapshot()["gauges"]["estimated_fp_rate"] == expected

    @pytest.mark.parametrize("name,factory", DETECTOR_VARIANTS)
    def test_gauge_lands_in_registry(self, name, factory):
        detector = factory()
        drive(detector, list(range(30)) * 2)
        registry = MetricsRegistry()
        instrument = DetectorInstrument(detector, registry)
        instrument.collect()
        series = registry.state_dict()["gauges"]
        key = f"repro_detector_estimated_fp_rate{{detector={type(detector).__name__}}}"
        assert series[key] == closed_form_fp(detector)


class TestDuplicatesPersistence:
    @pytest.mark.parametrize("name,factory", DETECTOR_VARIANTS)
    def test_duplicates_survive_checkpoint(self, name, factory):
        detector = factory()
        verdicts = drive(detector, [1, 2, 3, 1, 2, 3, 4, 4])
        assert detector.duplicates == sum(verdicts) > 0
        restored = load_detector(save_detector(detector))
        assert restored.duplicates == detector.duplicates
        # observed_duplicate_rate intentionally resets: the operation counter
        # is measurement state, not sketch state, and checkpoints only carry
        # the sketch.  Continuity of rates across restarts comes from the
        # journaled registry, exercised in TestSupervisedTelemetry.


class TestDetectorInstrument:
    def test_counters_are_delta_incremented(self):
        detector = GBFDetector(64, 8, 1024, 4, seed=3)
        registry = MetricsRegistry()
        instrument = DetectorInstrument(detector, registry)
        drive(detector, [1, 2, 1])
        instrument.collect()
        instrument.collect()  # second collect with no new clicks: no-op
        counters = registry.state_dict()["counters"]
        assert counters[
            "repro_detector_events_total{detector=GBFDetector,key=elements}"
        ] == 3
        assert counters[
            "repro_detector_events_total{detector=GBFDetector,key=duplicates}"
        ] == 1

    def test_new_instrument_baselines_at_current_totals(self):
        # A restored registry already carries the journaled totals; a
        # fresh instrument on a restored detector must not replay them.
        detector = GBFDetector(64, 8, 1024, 4, seed=3)
        drive(detector, [1, 2, 1])
        registry = MetricsRegistry()
        instrument = DetectorInstrument(detector, registry)
        instrument.collect()
        counters = registry.state_dict().get("counters", {})
        assert (
            "repro_detector_events_total{detector=GBFDetector,key=elements}"
            not in counters
        )
        drive(detector, [7])
        instrument.collect()
        assert registry.state_dict()["counters"][
            "repro_detector_events_total{detector=GBFDetector,key=elements}"
        ] == 1

    def test_breach_counter_fires_past_margin(self):
        detector = TBFDetector(64, 128, 2, seed=3)  # undersized: high fill
        registry = MetricsRegistry()
        instrument = DetectorInstrument(detector, registry, fp_margin=1e-12)
        drive(detector, range(60))
        instrument.collect()
        assert registry.state_dict()["counters"][
            "repro_fp_bound_breaches_total{detector=TBFDetector}"
        ] >= 1

    def test_no_breach_inside_bound(self):
        detector = TBFDetector(64, 4096, 4, seed=3)  # generously sized
        registry = MetricsRegistry()
        instrument = DetectorInstrument(detector, registry, fp_margin=2.0)
        drive(detector, range(20))
        instrument.collect()
        # The series exists (pre-registered by the instrument) but never fires.
        counters = registry.state_dict()["counters"]
        assert (
            counters.get("repro_fp_bound_breaches_total{detector=TBFDetector}", 0)
            == 0
        )


class TestShardedTelemetry:
    def test_snapshot_reports_per_shard_health(self):
        detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
        drive(detector, list(range(40)) * 2)
        detector.fail_shard(2, FailoverPolicy.FAIL_OPEN)
        snapshot = detector.telemetry_snapshot()
        assert snapshot["gauges"]["degraded_shards"] == 1
        assert "load_imbalance" in snapshot["gauges"]
        assert set(snapshot["shards"]) == {"0", "1", "2", "3"}
        assert snapshot["shards"]["2"]["degraded"] == 1.0
        assert snapshot["shards"]["0"]["degraded"] == 0.0
        assert snapshot["counters"]["elements"] == 80
        assert snapshot["gauges"]["estimated_fp_rate"] == detector.estimated_fp_rate()

    def test_failover_transitions_counted(self):
        detector = ShardedDetector._of_tbf(64, 4, 4096, seed=1)
        registry = MetricsRegistry()
        DetectorInstrument(detector, registry)  # attaches failover counters
        blob = detector.checkpoint_shard(1)
        detector.fail_shard(1, FailoverPolicy.FAIL_OPEN)
        detector.fail_shard(3, "fail-closed")
        detector.restore_shard(1, blob)
        counters = registry.state_dict()["counters"]
        assert counters["repro_shard_failovers_total{policy=fail-open}"] == 1
        assert counters["repro_shard_failovers_total{policy=fail-closed}"] == 1
        assert counters["repro_shard_restores_total"] == 1


def make_clicks(count=200, universe=40, seed=11):
    import random

    rng = random.Random(seed)
    return [
        Click(
            timestamp=float(index),
            source_ip=rng.randrange(universe),
            cookie=rng.randrange(universe),
            ad_id=rng.randrange(4),
            publisher_id=rng.randrange(3),
            advertiser_id=rng.randrange(3),
        )
        for index in range(count)
    ]


def pipeline_series(registry):
    """The continuous-across-restore counter series."""
    return {
        series: value
        for series, value in registry.state_dict()["counters"].items()
        if series.startswith(("repro_pipeline_", "repro_detector_events_total"))
    }


class TestPipelineTelemetry:
    def test_run_and_run_batch_record_identical_totals(self):
        clicks = make_clicks()
        totals = []
        for method in ("run", "run_batch"):
            session = TelemetrySession(snapshot_every=50)
            pipeline = DetectionPipeline(
                GBFDetector(64, 8, 1024, 4, seed=3), telemetry=session
            )
            result = getattr(pipeline, method)(clicks)
            counters = registry_counters = session.registry.state_dict()["counters"]
            assert counters["repro_pipeline_clicks_total"] == result.processed
            assert counters["repro_pipeline_duplicates_total"] == result.duplicates
            assert counters["repro_pipeline_valid_total"] == result.valid
            totals.append(pipeline_series(session.registry))
        assert totals[0] == totals[1]

    def test_spans_cover_batch_chunks(self):
        session = TelemetrySession()
        pipeline = DetectionPipeline(
            TBFDetector(64, 2048, 4, seed=3), telemetry=session
        )
        pipeline.run_batch(make_clicks(130), chunk_size=50)
        chunk_spans = [
            span for span in session.tracer.spans()
            if span.name == "pipeline.run_batch.chunk"
        ]
        assert [span.attributes["size"] for span in chunk_spans] == [50, 50, 30]

    def test_disabled_pipeline_records_nothing(self):
        pipeline = DetectionPipeline(TBFDetector(64, 2048, 4, seed=3))
        pipeline.run(make_clicks(50))
        assert pipeline.telemetry.enabled is False
        assert pipeline.telemetry.registry.to_prometheus() == ""
        assert pipeline.telemetry.tracer.spans() == []


def make_supervised(store_dir, snapshot_every=10, checkpoint_every=20):
    session = TelemetrySession(snapshot_every=snapshot_every)
    pipeline = DetectionPipeline(
        GBFDetector(64, 8, 1024, 4, seed=3), telemetry=session
    )
    supervisor = SupervisedPipeline(
        pipeline, CheckpointStore(store_dir), checkpoint_every=checkpoint_every
    )
    return session, supervisor


class TestSupervisedTelemetry:
    def test_checkpoint_journals_registry_state(self, tmp_path):
        session, supervisor = make_supervised(tmp_path / "store")
        supervisor.run(make_clicks(100))
        header, _ = unpack_frame(supervisor.store.latest.read_bytes())
        journaled = header["telemetry"]
        # Bit-identical: the journal IS the registry state at write time.
        assert journaled["counters"]["repro_pipeline_clicks_total"] == 100
        fresh = MetricsRegistry()
        fresh.load_state(json.loads(json.dumps(journaled)))
        fresh.counter("repro_pipeline_clicks_total")._default()
        assert (
            fresh.state_dict()["counters"]["repro_pipeline_clicks_total"] == 100
        )
        # The journal is captured before the write is acknowledged, so the
        # self-referential written-counter is one behind the live registry;
        # everything else matches bit-for-bit.
        live = dict(session.registry.state_dict()["counters"])
        snap = dict(journaled["counters"])
        assert live.pop("repro_checkpoints_written_total") == (
            snap.pop("repro_checkpoints_written_total") + 1
        )
        assert live == snap

    def test_journal_is_current_when_cadence_misaligns(self, tmp_path):
        # snapshot_every=7 never lands on a checkpoint offset, so a journal
        # that only carried the last periodic collect would be stale by up
        # to 6 clicks.  state_dict() must refresh instruments at write time.
        session, supervisor = make_supervised(tmp_path / "store", snapshot_every=7)
        supervisor.run(make_clicks(100))
        header, _ = unpack_frame(supervisor.store.latest.read_bytes())
        journaled = header["telemetry"]["counters"]
        assert journaled[
            "repro_detector_events_total{detector=GBFDetector,key=elements}"
        ] == journaled["repro_pipeline_clicks_total"] == 100

    def test_disabled_telemetry_keeps_headers_clean(self, tmp_path):
        pipeline = DetectionPipeline(GBFDetector(64, 8, 1024, 4, seed=3))
        supervisor = SupervisedPipeline(
            pipeline, CheckpointStore(tmp_path / "store"), checkpoint_every=20
        )
        supervisor.run(make_clicks(60))
        header, _ = unpack_frame(supervisor.store.latest.read_bytes())
        assert "telemetry" not in header

    def test_crash_resume_counters_match_uninterrupted_run(self, tmp_path):
        clicks = make_clicks(200)

        baseline_session, baseline = make_supervised(tmp_path / "base")
        baseline.run(clicks)

        crashed_session, crashed = make_supervised(tmp_path / "crash")
        injector = FaultInjector(seed=5)
        with pytest.raises(InjectedCrash):
            crashed.run(injector.crash_stream(clicks, 50))

        # Fresh process: new session, pipeline, supervisor on the store.
        resumed_session, resumed = make_supervised(tmp_path / "crash")
        result = resumed.run(clicks)

        # `processed` is cumulative across the restore (journaled totals),
        # so the resumed run reports the full stream.
        assert result.processed == len(clicks)
        assert result.start_offset > 0
        assert pipeline_series(resumed_session.registry) == pipeline_series(
            baseline_session.registry
        )
        # Restore latency was observed without perturbing the counters.
        histograms = resumed_session.registry.state_dict()["histograms"]
        assert histograms["repro_checkpoint_restore_seconds"]["count"] >= 1
        assert histograms["repro_checkpoint_write_seconds"]["count"] >= 1

    def test_dead_letters_counted_by_reason(self, tmp_path):
        session, supervisor = make_supervised(tmp_path / "store")
        clicks = make_clicks(30)
        clicks[5] = Click(
            timestamp=float("nan"), source_ip=1, cookie=1, ad_id=0,
            publisher_id=0, advertiser_id=0,
        )
        supervisor.run(clicks)
        assert session.registry.state_dict()["counters"][
            "repro_dead_letters_total{reason=bad-timestamp}"
        ] == 1


class TestFaultCounters:
    def test_injected_faults_are_counted(self):
        registry = MetricsRegistry()
        injector = FaultInjector(seed=5, registry=registry)
        clicks = make_clicks(40)
        with pytest.raises(InjectedCrash):
            list(injector.crash_stream(clicks, 10))
        injector.corrupt(b"some checkpoint bytes" * 4)
        list(injector.reorder_stream(clicks, 6))
        list(injector.delay_stream(clicks, 2, probability=0.5))
        counters = registry.state_dict()["counters"]
        assert counters["repro_faults_injected_total{kind=crash}"] == 1
        assert counters["repro_faults_injected_total{kind=corrupt}"] == 1
        assert counters["repro_faults_injected_total{kind=reorder}"] >= 1
        assert counters["repro_faults_injected_total{kind=delay}"] >= 1


class TestMonitorCli:
    def test_monitor_smoke(self, tmp_path, capsys):
        from repro.cli import main
        from repro.streams import write_clicks_jsonl

        stream_path = tmp_path / "clicks.jsonl"
        write_clicks_jsonl(stream_path, make_clicks(300))
        code = main([
            "monitor", str(stream_path),
            "--algorithm", "gbf", "--window", "64",
            "--every", "100", "--chunk-size", "50",
            "--prometheus",
            "--trace-out", str(tmp_path / "trace.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_detector_estimated_fp_rate" in out
        assert "duplicates" in out
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert any(
            event["name"] == "pipeline.run_batch.chunk"
            for event in trace["traceEvents"]
        )
