"""Unit tests for click streams: generators, attacks, arrivals, I/O."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamError
from repro.streams import (
    BotnetCampaign,
    BurstyArrivals,
    Click,
    CrawlerTraffic,
    DiurnalArrivals,
    DuplicateSpec,
    HitInflationCampaign,
    IdentifierScheme,
    PoissonArrivals,
    SingleAttackerCampaign,
    TrafficClass,
    ZipfSampler,
    adversarial_burst_stream,
    combine_fields,
    distinct_stream,
    duplicated_stream,
    interleave_batches,
    load_clicks,
    merge_streams,
    read_clicks_csv,
    write_clicks_csv,
    write_clicks_jsonl,
    read_clicks_jsonl,
)


class TestGenerators:
    def test_distinct_stream_is_distinct(self):
        stream = distinct_stream(100_000, seed=1)
        assert len(np.unique(stream)) == 100_000

    def test_distinct_stream_seeded(self):
        assert (distinct_stream(100, 5) == distinct_stream(100, 5)).all()
        assert (distinct_stream(100, 5) != distinct_stream(100, 6)).any()

    def test_distinct_stream_empty(self):
        assert len(distinct_stream(0)) == 0
        with pytest.raises(ConfigurationError):
            distinct_stream(-1)

    def test_duplicated_stream_rate(self):
        spec = DuplicateSpec(rate=0.3, max_lag=50)
        stream = duplicated_stream(20_000, spec, seed=2)
        distinct = len(np.unique(stream))
        duplicates = 20_000 - distinct
        assert duplicates == pytest.approx(0.3 * 20_000, rel=0.1)

    def test_duplicated_stream_lag_bound(self):
        spec = DuplicateSpec(rate=0.5, max_lag=8)
        stream = duplicated_stream(5000, spec, seed=3)
        last_seen = {}
        for position, identifier in enumerate(map(int, stream)):
            if identifier in last_seen:
                assert position - last_seen[identifier] <= 8
            last_seen[identifier] = position

    def test_duplicate_spec_validation(self):
        with pytest.raises(ConfigurationError):
            DuplicateSpec(rate=1.5)
        with pytest.raises(ConfigurationError):
            DuplicateSpec(max_lag=0)

    def test_adversarial_burst(self):
        stream = adversarial_burst_stream(100, burst_identifier=7, burst_every=10, seed=1)
        assert all(int(stream[i]) == 7 for i in range(0, 100, 10))
        others = [int(x) for i, x in enumerate(stream) if i % 10 != 0]
        assert 7 not in others


class TestIdentifiers:
    def test_combine_fields_stable(self):
        assert combine_fields(1, 2, 3) == combine_fields(1, 2, 3)
        assert combine_fields(1, 2, 3) != combine_fields(3, 2, 1)

    def test_schemes_distinguish_policies(self):
        a = Click(0.0, source_ip=1, cookie=2, ad_id=3, publisher_id=0, advertiser_id=0)
        b = Click(0.0, source_ip=1, cookie=2, ad_id=4, publisher_id=0, advertiser_id=0)
        assert IdentifierScheme.IP.identify(a) == IdentifierScheme.IP.identify(b)
        assert IdentifierScheme.IP_AD.identify(a) != IdentifierScheme.IP_AD.identify(b)
        assert IdentifierScheme.IP_COOKIE_AD.identify(a) != IdentifierScheme.COOKIE_AD.identify(b)

    def test_traffic_class_fraud_labels(self):
        assert TrafficClass.BOTNET.is_fraud
        assert TrafficClass.HIT_INFLATION.is_fraud
        assert not TrafficClass.LEGITIMATE.is_fraud
        assert not TrafficClass.REPEAT_VISITOR.is_fraud
        assert not TrafficClass.CRAWLER.is_fraud


class TestZipf:
    def test_uniform_degenerate(self):
        sampler = ZipfSampler(10, exponent=0.0, seed=1)
        samples = sampler.sample(50_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 4000

    def test_skew_concentrates_low_ranks(self):
        sampler = ZipfSampler(1000, exponent=1.2, seed=2)
        samples = sampler.sample(20_000)
        top_share = (samples < 10).mean()
        assert top_share > 0.3

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, exponent=1.0)
        total = sum(sampler.probability(rank) for rank in range(50))
        assert total == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, exponent=-1)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10).probability(10)


class TestArrivals:
    def test_poisson_monotone_and_rate(self):
        timestamps = PoissonArrivals(rate=100.0, seed=1).take(10_000)
        assert (np.diff(timestamps) >= 0).all()
        assert timestamps[-1] == pytest.approx(100.0, rel=0.1)

    def test_bursty_monotone(self):
        arrivals = BurstyArrivals(1.0, 100.0, mean_quiet=5.0, mean_burst=1.0, seed=2)
        timestamps = arrivals.take(5000)
        assert (np.diff(timestamps) >= 0).all()

    def test_diurnal_monotone_and_modulated(self):
        arrivals = DiurnalArrivals(mean_rate=10.0, amplitude=0.9, period=100.0, seed=3)
        timestamps = arrivals.take(20_000)
        assert (np.diff(timestamps) >= 0).all()
        # Peak quarter of the cycle should collect visibly more arrivals
        # than the trough quarter.
        phases = (timestamps % 100.0) / 100.0
        peak = ((phases > 0.15) & (phases < 0.35)).sum()   # sin peak ~0.25
        trough = ((phases > 0.65) & (phases < 0.85)).sum()  # sin trough ~0.75
        assert peak > trough * 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, amplitude=1.5)


class TestAttacks:
    def test_botnet_shape(self):
        campaign = BotnetCampaign([1, 2], publisher_id=0, advertiser_id=0,
                                  num_bots=5, mean_interval=10.0, seed=1)
        clicks = campaign.generate(0.0, 500.0)
        assert clicks
        assert all(click.traffic_class is TrafficClass.BOTNET for click in clicks)
        assert all(0.0 <= click.timestamp < 500.0 for click in clicks)
        timestamps = [click.timestamp for click in clicks]
        assert timestamps == sorted(timestamps)
        ips = {click.source_ip for click in clicks}
        assert len(ips) == 5  # one identity per bot

    def test_botnet_repeats_per_bot(self):
        campaign = BotnetCampaign([1], publisher_id=0, advertiser_id=0,
                                  num_bots=2, mean_interval=5.0, seed=2)
        clicks = campaign.generate(0.0, 200.0)
        per_bot = {}
        for click in clicks:
            per_bot.setdefault(click.source_ip, 0)
            per_bot[click.source_ip] += 1
        assert all(count > 5 for count in per_bot.values())

    def test_single_attacker(self):
        campaign = SingleAttackerCampaign(1, 0, 0, source_ip=9, cookie=9,
                                          mean_interval=2.0, seed=3)
        clicks = campaign.generate(0.0, 100.0)
        assert len(clicks) > 10
        assert len({click.source_ip for click in clicks}) == 1

    def test_hit_inflation_identities_all_fresh(self):
        campaign = HitInflationCampaign([1, 2], 0, 0, rate=5.0, seed=4)
        clicks = campaign.generate(0.0, 100.0)
        identities = [(click.source_ip, click.cookie) for click in clicks]
        assert len(set(identities)) == len(identities)

    def test_crawler_refetches_every_ad(self):
        campaign = CrawlerTraffic([1, 2, 3], 0, 0, source_ip=5,
                                  revisit_interval=10.0, seed=5)
        clicks = campaign.generate(0.0, 95.0)
        per_ad = {}
        for click in clicks:
            per_ad.setdefault(click.ad_id, 0)
            per_ad[click.ad_id] += 1
        assert set(per_ad) == {1, 2, 3}
        assert all(count >= 9 for count in per_ad.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BotnetCampaign([], 0, 0, num_bots=5, mean_interval=1.0)
        with pytest.raises(ConfigurationError):
            BotnetCampaign([1], 0, 0, num_bots=0, mean_interval=1.0)
        with pytest.raises(ConfigurationError):
            SingleAttackerCampaign(1, 0, 0, 1, 1, mean_interval=0.0)


class TestIOAndMerge:
    def _sample_clicks(self):
        return [
            Click(1.0, 10, 20, 3, 0, 1, cost=0.5,
                  traffic_class=TrafficClass.LEGITIMATE),
            Click(2.5, 11, 21, 4, 1, 0, cost=1.25,
                  traffic_class=TrafficClass.BOTNET),
        ]

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "clicks.csv"
        originals = self._sample_clicks()
        assert write_clicks_csv(path, originals) == 2
        loaded = list(read_clicks_csv(path))
        assert loaded == originals

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "clicks.jsonl"
        originals = self._sample_clicks()
        assert write_clicks_jsonl(path, originals) == 2
        assert list(read_clicks_jsonl(path)) == originals

    def test_load_clicks_dispatch(self, tmp_path):
        path = tmp_path / "clicks.csv"
        write_clicks_csv(path, self._sample_clicks())
        assert len(load_clicks(path)) == 2
        with pytest.raises(StreamError):
            load_clicks(tmp_path / "clicks.parquet")

    def test_csv_rejects_corrupt_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        write_clicks_csv(path, self._sample_clicks())
        with open(path, "a") as handle:
            handle.write("not,a,click\n")
        with pytest.raises(StreamError):
            list(read_clicks_csv(path))

    def test_merge_streams_ordered(self):
        a = [Click(t, 1, 1, 1, 0, 0) for t in (1.0, 3.0, 5.0)]
        b = [Click(t, 2, 2, 2, 0, 0) for t in (2.0, 4.0)]
        merged = list(merge_streams(a, b))
        assert [click.timestamp for click in merged] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_merge_streams_detects_disorder(self):
        bad = [Click(5.0, 1, 1, 1, 0, 0), Click(1.0, 1, 1, 1, 0, 0)]
        good = [Click(2.0, 2, 2, 2, 0, 0)]
        with pytest.raises(StreamError):
            list(merge_streams(bad, good))

    def test_interleave_batches(self):
        a = [Click(3.0, 1, 1, 1, 0, 0)]
        b = [Click(1.0, 2, 2, 2, 0, 0), Click(2.0, 2, 2, 2, 0, 0)]
        merged = interleave_batches([a, b])
        assert [click.timestamp for click in merged] == [1.0, 2.0, 3.0]


class TestRotatingIdentityCampaign:
    def test_identities_cycle_through_pool(self):
        from repro.streams import RotatingIdentityCampaign

        campaign = RotatingIdentityCampaign(
            ad_ids=[1], publisher_id=0, advertiser_id=0,
            pool_size=10, rate=5.0, seed=1,
        )
        clicks = campaign.generate(0.0, 100.0)
        assert len(clicks) > 100
        identities = [click.source_ip for click in clicks]
        assert len(set(identities)) == 10
        # Round-robin: any identity's consecutive uses are exactly
        # pool_size clicks apart.
        positions = [i for i, ip in enumerate(identities) if ip == identities[0]]
        assert all(b - a == 10 for a, b in zip(positions, positions[1:]))

    def test_validation(self):
        from repro.streams import RotatingIdentityCampaign

        with pytest.raises(ConfigurationError):
            RotatingIdentityCampaign([1], 0, 0, pool_size=0, rate=1.0)
        with pytest.raises(ConfigurationError):
            RotatingIdentityCampaign([], 0, 0, pool_size=5, rate=1.0)
        with pytest.raises(ConfigurationError):
            RotatingIdentityCampaign([1], 0, 0, pool_size=5, rate=0.0)

    def test_evades_dedup_when_pool_exceeds_window(self):
        from repro.core import TBFDetector
        from repro.streams import RotatingIdentityCampaign
        from repro.streams.click import IdentifierScheme

        campaign = RotatingIdentityCampaign(
            ad_ids=[1], publisher_id=0, advertiser_id=0,
            pool_size=200, rate=10.0, seed=2,
        )
        clicks = campaign.generate(0.0, 200.0)
        detector = TBFDetector(128, 1 << 14, 6, seed=1)  # window < pool
        rejected = sum(
            detector.process(IdentifierScheme.IP_COOKIE_AD.identify(click))
            for click in clicks
        )
        assert rejected < len(clicks) * 0.02

    def test_caught_when_pool_fits_window(self):
        from repro.core import TBFDetector
        from repro.streams import RotatingIdentityCampaign
        from repro.streams.click import IdentifierScheme

        campaign = RotatingIdentityCampaign(
            ad_ids=[1], publisher_id=0, advertiser_id=0,
            pool_size=20, rate=10.0, seed=2,
        )
        clicks = campaign.generate(0.0, 200.0)
        detector = TBFDetector(512, 1 << 14, 6, seed=1)  # window >> pool
        rejected = sum(
            detector.process(IdentifierScheme.IP_COOKIE_AD.identify(click))
            for click in clicks
        )
        # All but ~one click per identity per window rejected.
        assert rejected > len(clicks) * 0.9


class TestReadBatchesContract:
    """The batch-shape contract shared with the serve coalescer's flush."""

    def _write(self, tmp_path, count):
        clicks = [Click(float(i), i, i, 1, 0, 0) for i in range(count)]
        path = tmp_path / "stream.jsonl"
        write_clicks_jsonl(path, clicks)
        return path, clicks

    def test_final_short_batch_is_leftovers_as_is(self, tmp_path):
        from repro.streams import read_batches

        path, clicks = self._write(tmp_path, 25)
        batches = list(read_batches(path, 10))
        assert [len(b) for b in batches] == [10, 10, 5]
        flattened = [c for batch in batches for c in batch]
        assert [c.timestamp for c in flattened] == [c.timestamp for c in clicks]

    def test_exact_multiple_has_no_trailing_batch(self, tmp_path):
        from repro.streams import read_batches

        path, _ = self._write(tmp_path, 30)
        assert [len(b) for b in list(read_batches(path, 10))] == [10, 10, 10]

    def test_empty_stream_yields_nothing(self, tmp_path):
        from repro.streams import read_batches

        path, _ = self._write(tmp_path, 0)
        assert list(read_batches(path, 10)) == []

    def test_batch_size_one_and_validation(self, tmp_path):
        from repro.streams import read_batches

        path, _ = self._write(tmp_path, 3)
        assert [len(b) for b in read_batches(path, 1)] == [1, 1, 1]
        with pytest.raises(StreamError):
            list(read_batches(path, 0))


class TestVectorizedIdentify:
    """identify_batch/combine_fields_batch are bit-identical to scalar."""

    def test_combine_fields_batch_matches_scalar(self):
        from repro.streams import combine_fields_batch

        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        b = rng.integers(0, 1 << 20, size=500, dtype=np.uint64)
        batch = combine_fields_batch(a, b)
        scalar = [combine_fields(int(x), int(y)) for x, y in zip(a, b)]
        assert batch.dtype == np.uint64
        assert [int(v) for v in batch] == scalar

    @pytest.mark.parametrize("scheme", list(IdentifierScheme))
    def test_identify_batch_matches_identify(self, scheme):
        rng = np.random.default_rng(1)
        clicks = [
            Click(float(i), int(rng.integers(1 << 32)),
                  int(rng.integers(1 << 32)), int(rng.integers(64)), 0, 0)
            for i in range(300)
        ]
        batch = scheme.identify_batch(clicks)
        assert [int(v) for v in batch] == [scheme.identify(c) for c in clicks]
