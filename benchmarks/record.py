"""Record scalar vs batch detector throughput to BENCH_throughput.json.

Runs the same comparison as ``test_batch_throughput.py`` — warm-up, one
timed window sweep per path, bit-identity checks — for every detector,
and writes the clicks/sec numbers to a JSON file at the repo root so the
current machine's numbers are versioned alongside the code:

    PYTHONPATH=src python benchmarks/record.py            # full run
    PYTHONPATH=src python benchmarks/record.py --quick    # CI smoke

See docs/performance.md for how to read and refresh the file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from test_adaptive_quality import (  # noqa: E402
    run_quality_sweep,
)
from test_batch_throughput import (  # noqa: E402
    CHUNK,
    MEMORY_BITS,
    NAMES,
    NUM_HASHES,
    SUBWINDOWS,
    WINDOW,
    compare_paths,
)
from test_cluster_throughput import (  # noqa: E402
    NODE_COUNTS,
    run_cluster_sweep,
)
from test_parallel_throughput import (  # noqa: E402
    WORKER_COUNTS,
    run_parallel_sweep,
)
from test_serve_throughput import (  # noqa: E402
    BATCH,
    WINDOW_DEPTH,
    run_latency_bench,
    run_serve_bench,
)
from test_telemetry_overhead import (  # noqa: E402
    TIMED as TELEMETRY_TIMED,
    measure_overheads,
)

#: Bump when the report's shape changes (keys added/renamed/removed or
#: their meaning shifts).  ``record.py`` refuses to overwrite a BENCH
#: file written under a different schema unless ``--force`` is given,
#: so a stale checkout cannot silently clobber numbers a newer layout
#: already recorded (or vice versa).
#:
#: Schema 4: multi-worker/multi-node sweeps only run counts the host
#: can parallelize — counts past ``os.cpu_count()`` are recorded as
#: tagged skips instead of timings that could only show fake slowdown —
#: and a ``cluster`` scatter/gather section joins the report.
#:
#: Schema 5: an ``adaptive`` quality section joins the report — per
#: variant (GBF/TBF/APBF/TLBF at one window + target-FP point) the
#: memory, bits-per-click, and measured-vs-design FP rate from
#: ``test_adaptive_quality.py``.  Unlike the throughput sections these
#: numbers are fully deterministic (seeded streams, no timing), so
#: ``check_regression.py`` gates them tightly across hosts.
SCHEMA_VERSION = 5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="time one window instead of four (CI smoke; numbers are noisier)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_throughput.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite the output even if it was written under a "
        "different schema_version",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="detector timing trials; the best per path is recorded "
        "(suppresses scheduler noise, standard for throughput numbers)",
    )
    args = parser.parse_args(argv)

    if args.output.exists() and not args.force:
        try:
            existing = json.loads(args.output.read_text())
        except ValueError:
            existing = None
        old_schema = (
            existing.get("schema_version") if isinstance(existing, dict) else None
        )
        if old_schema != SCHEMA_VERSION:
            parser.error(
                f"{args.output} holds schema {old_schema!r} but this writer "
                f"emits schema {SCHEMA_VERSION}; pass --force to overwrite"
            )

    timed = WINDOW if args.quick else 4 * WINDOW
    trials = 1 if args.quick else max(1, args.trials)
    detectors = {}
    for name in NAMES:
        scalar_result, batch_result = compare_paths(name, timed=timed)
        for _ in range(trials - 1):
            scalar_again, batch_again = compare_paths(name, timed=timed)
            if scalar_again.seconds < scalar_result.seconds:
                scalar_result = scalar_again
            if batch_again.seconds < batch_result.seconds:
                batch_result = batch_again
        detectors[name] = {
            "scalar_clicks_per_sec": round(scalar_result.elements_per_second, 1),
            "batch_clicks_per_sec": round(batch_result.elements_per_second, 1),
            "speedup": round(
                scalar_result.seconds / batch_result.seconds, 2
            ),
        }
        print(
            f"{name:>12}: scalar {scalar_result.elements_per_second:>12,.0f}"
            f"  batch {batch_result.elements_per_second:>12,.0f}"
            f"  ({detectors[name]['speedup']}x)"
        )

    telemetry = {}
    for name in ("gbf", "tbf"):
        best = measure_overheads(name)
        telemetry[name] = {
            "bare_clicks_per_sec": round(TELEMETRY_TIMED / best["bare"], 1),
            # Clamped at 0: the no-op path cannot actually be faster
            # than the bare one, so a negative measured overhead is
            # scheduler/cache noise — recording it as a speedup would
            # mislead BENCH diffs (see test_telemetry_overhead.py).
            "noop_overhead_pct": round(
                max(0.0, 100 * (best["noop"] / best["bare"] - 1)), 2
            ),
            "enabled_overhead_pct": round(
                100 * (best["enabled"] / best["bare"] - 1), 2
            ),
        }
        print(
            f"{name:>12}: telemetry noop "
            f"{telemetry[name]['noop_overhead_pct']:+.2f}%"
            f"  enabled {telemetry[name]['enabled_overhead_pct']:+.2f}%"
        )

    # Worker/node counts past the physical cores cannot speed anything
    # up — timing them records a "0.33 efficiency" that reads as a
    # scaling bug when it is only the host being small.  Run what the
    # host can parallelize and tag the rest as skipped so a BENCH diff
    # distinguishes "slower" from "never measured here".
    cpu_count = os.cpu_count() or 1

    def _skip_tag(counts):
        return {
            str(count): {"skipped": f"host has {cpu_count} CPUs, not {count}"}
            for count in counts
            if count > cpu_count
        }

    worker_counts = [c for c in WORKER_COUNTS if c <= cpu_count] or [1]
    sweep = run_parallel_sweep(worker_counts)
    base_seconds = sweep[worker_counts[0]].seconds
    parallel = {
        "cpu_count": cpu_count,
        "workers": _skip_tag(WORKER_COUNTS),
    }
    for workers, result in sweep.items():
        speedup = base_seconds / result.seconds
        parallel["workers"][str(workers)] = {
            "clicks_per_sec": round(result.elements_per_second, 1),
            "speedup_vs_1_worker": round(speedup, 2),
            "scaling_efficiency": round(speedup / workers, 2),
        }
        print(
            f"{'parallel x' + str(workers):>12}:"
            f" {result.elements_per_second:>12,.0f} clicks/s"
            f"  ({speedup:.2f}x vs 1 worker)"
        )
    for count in sorted(WORKER_COUNTS):
        if count > cpu_count:
            print(f"{'parallel x' + str(count):>12}: skipped ({cpu_count} CPUs)")

    node_counts = [c for c in NODE_COUNTS if c <= cpu_count] or [1]
    cluster_sweep = run_cluster_sweep(
        node_counts, clicks=(1 << 16) if args.quick else (1 << 18)
    )
    cluster_base = cluster_sweep[node_counts[0]].seconds
    cluster = {
        "cpu_count": cpu_count,
        "nodes": _skip_tag(NODE_COUNTS),
    }
    for nodes, result in cluster_sweep.items():
        speedup = cluster_base / result.seconds
        cluster["nodes"][str(nodes)] = {
            "clicks_per_sec": round(result.elements_per_second, 1),
            "speedup_vs_1_node": round(speedup, 2),
        }
        print(
            f"{'cluster x' + str(nodes):>12}:"
            f" {result.elements_per_second:>12,.0f} clicks/s"
            f"  ({speedup:.2f}x vs 1 node)"
        )
    for count in sorted(NODE_COUNTS):
        if count > cpu_count:
            print(f"{'cluster x' + str(count):>12}: skipped ({cpu_count} CPUs)")

    adaptive = run_quality_sweep()
    for name, entry in adaptive.items():
        print(
            f"{name:>12}: {entry['bits_per_click']:>7.1f} bits/click"
            f"  measured FP {entry['measured_fp_rate']:.4f}"
            f"  ({entry['bound_kind']} bound {entry['design_fp_bound']:.4f})"
        )

    serve_result = run_serve_bench(clicks=(1 << 16) if args.quick else (1 << 18))
    serve = {
        "clicks_per_sec": round(serve_result.elements_per_second, 1),
        "batch": BATCH,
        "pipeline_depth": WINDOW_DEPTH,
        "clicks": serve_result.elements,
        # The binary ingest path decodes straight into array views over
        # the wire bytes (docs/performance.md); recorded so a BENCH
        # diff shows which decode the number was taken under.
        "decode": "zero-copy",
    }
    print(
        f"{'serve':>12}: {serve_result.elements_per_second:>12,.0f} clicks/s"
        f"  (TCP, batch={BATCH}, depth={WINDOW_DEPTH})"
    )

    rtt = run_latency_bench(clicks=(1 << 15) if args.quick else (1 << 17))
    # ``run_load`` reports ``latency: None`` when no batch completed a
    # round trip; don't let the recorder crash indexing into it.
    if rtt is None:
        latency = None
        print(f"{'latency':>12}: no completed batches; section omitted")
    else:
        latency = {
            "batch": BATCH,
            "pipeline_depth": WINDOW_DEPTH,
            "batches": rtt["batches"],
            "p50_ms": round(rtt["p50_s"] * 1000, 3),
            "p95_ms": round(rtt["p95_s"] * 1000, 3),
            "p99_ms": round(rtt["p99_s"] * 1000, 3),
            "max_ms": round(rtt["max_s"] * 1000, 3),
        }
        print(
            f"{'latency':>12}: p50 {latency['p50_ms']:.2f}ms"
            f"  p95 {latency['p95_ms']:.2f}ms"
            f"  p99 {latency['p99_ms']:.2f}ms"
            f"  (batch RTT over {latency['batches']} batches)"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "window": WINDOW,
            "subwindows": SUBWINDOWS,
            "memory_bits": MEMORY_BITS,
            "num_hashes": NUM_HASHES,
            "chunk_size": CHUNK,
            "timed_elements": timed,
            "quick": args.quick,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "detectors": detectors,
        "telemetry": telemetry,
        "parallel": parallel,
        "cluster": cluster,
        "adaptive": adaptive,
        "serve": serve,
        "latency": latency,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
