"""Ablation A4: is the FP rate sensitive to the hash family?

The paper's analysis assumes "k independent uniform hash functions".
This bench runs the Figure 2(b) protocol with each implemented family —
from the formally 2-universal Carter-Wegman construction to the
heuristic splitmix mixer and the Kirsch-Mitzenmacher two-function
derivation — and shows the measured FP rate matches the uniform-hash
theory for all of them, i.e. the reproduction's default (splitmix) is
not flattering the results.
"""

from repro.analysis import tbf_fp
from repro.core import TBFDetector
from repro.experiments import FPExperimentConfig, run_distinct_stream_fp
from repro.experiments.config import scaled_fig2b_entries
from repro.hashing import make_family
from repro.metrics import render_table

FAMILIES = ["splitmix", "carter-wegman", "tabulation", "double"]
SCALE = 256  # N = 4096: Carter-Wegman has no fast batch path
NUM_HASHES = 6


def _run_all():
    config = FPExperimentConfig.scaled(SCALE, seed=11)
    num_entries = scaled_fig2b_entries(SCALE)
    theory = tbf_fp(config.window_size, num_entries, NUM_HASHES)
    rows = []
    for kind in FAMILIES:
        family = make_family(NUM_HASHES, num_entries, seed=11, kind=kind)
        detector = TBFDetector(config.window_size, num_entries, family=family)
        measurement = run_distinct_stream_fp(detector, config)
        rows.append([kind, measurement.rate, theory,
                     round(measurement.rate / theory, 3) if theory else 0.0])
    return rows, theory


def test_fp_rate_family_insensitive(benchmark, report):
    rows, theory = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    text = render_table(
        ["hash family", "measured_fp", "uniform theory", "ratio"],
        rows,
        title=f"Ablation A4 - hash-family sensitivity (Fig. 2(b) protocol, k={NUM_HASHES})",
    )
    report("ablation_hash_family", text)
    for kind, measured, _, ratio in rows:
        assert 0.6 <= ratio <= 1.6, (kind, measured, theory)
