"""Fail if batch throughput regressed against BENCH_throughput.json.

A quick sweep of the count-based detectors' batch path, compared with
the committed numbers.  Run after a perf-sensitive change:

    PYTHONPATH=src python benchmarks/check_regression.py

Exits non-zero when any checked detector's measured batch clicks/sec
falls below ``REPRO_BENCH_REGRESSION_FLOOR`` times the committed value
(default 0.8 — a regression of more than 20%).  CI smoke runners are
slower and noisier than the recording host, so the workflow relaxes
the floor through the same env-knob convention as the other
``REPRO_BENCH_*`` gates instead of trusting absolute numbers
cross-machine; a floor of 0 turns the check into a report.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_batch_throughput import WINDOW, compare_paths  # noqa: E402

#: Count-based detectors: the pure-throughput workhorses whose numbers
#: are stable enough to gate on.  Time-based variants ride along in the
#: report but never gate — their segment shapes make quick runs noisy.
GATED = ("gbf", "tbf")
REPORTED = ("gbf", "tbf", "tbf-jumping", "gbf-time", "tbf-time")

FLOOR = float(os.environ.get("REPRO_BENCH_REGRESSION_FLOOR", "0.8"))


def main() -> int:
    bench_path = REPO_ROOT / "BENCH_throughput.json"
    committed = json.loads(bench_path.read_text())
    detectors = committed["detectors"]
    failures = []
    for name in REPORTED:
        _scalar, batch = compare_paths(name, timed=WINDOW)
        measured = batch.elements_per_second
        recorded = detectors[name]["batch_clicks_per_sec"]
        ratio = measured / recorded if recorded else float("inf")
        gated = name in GATED and FLOOR > 0
        verdict = "ok"
        if gated and ratio < FLOOR:
            verdict = "REGRESSED"
            failures.append(name)
        print(
            f"{name:>12}: measured {measured:>12,.0f} clicks/s"
            f"  committed {recorded:>12,.0f}"
            f"  ratio {ratio:.2f}"
            f"  ({'gate ' + format(FLOOR, '.2f') if gated else 'report only'})"
            f"  {verdict}"
        )
    if failures:
        print(
            f"regression: {', '.join(failures)} below "
            f"{FLOOR:.0%} of committed batch throughput",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
