"""Fail if batch throughput regressed against BENCH_throughput.json.

A quick sweep of the count-based detectors' batch path, compared with
the committed numbers.  Run after a perf-sensitive change:

    PYTHONPATH=src python benchmarks/check_regression.py

Exits non-zero when any checked detector's measured batch clicks/sec
falls below ``REPRO_BENCH_REGRESSION_FLOOR`` times the committed value
(default 0.8 — a regression of more than 20%).  CI smoke runners are
slower and noisier than the recording host, so the workflow relaxes
the floor through the same env-knob convention as the other
``REPRO_BENCH_*`` gates instead of trusting absolute numbers
cross-machine; a floor of 0 turns the check into a report.

When the committed BENCH file carries a ``latency`` section (schema 3),
the serve path's client-observed batch-RTT p99 is also measured and
gated: it must stay below ``REPRO_BENCH_LATENCY_CEILING`` times the
committed p99 (default 10 — latency quantiles are far noisier than
throughput across hosts, so the ceiling is generous by design; 0
disables the gate).

When it carries an ``adaptive`` section (schema 5), the portfolio's
FP-per-bit quality sweep is re-run and gated *tightly*: the sweep is
fully deterministic (seeded streams and hash families, no timing), so
each variant's measured FP rate and memory must match the committed
numbers exactly on any host.  ``REPRO_BENCH_ADAPTIVE_GATE=0`` turns
that check into a report.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_batch_throughput import WINDOW, compare_paths  # noqa: E402

#: Count-based detectors: the pure-throughput workhorses whose numbers
#: are stable enough to gate on.  Time-based variants ride along in the
#: report but never gate — their segment shapes make quick runs noisy.
GATED = ("gbf", "tbf")
REPORTED = ("gbf", "tbf", "tbf-jumping", "gbf-time", "tbf-time")

FLOOR = float(os.environ.get("REPRO_BENCH_REGRESSION_FLOOR", "0.8"))
LATENCY_CEILING = float(os.environ.get("REPRO_BENCH_LATENCY_CEILING", "10"))
ADAPTIVE_GATE = os.environ.get("REPRO_BENCH_ADAPTIVE_GATE", "1") != "0"


def check_latency(committed: dict, failures: list) -> None:
    """Gate the serve path's batch-RTT p99 against the committed number."""
    recorded = committed.get("latency")
    if not recorded:
        return  # pre-schema-3 BENCH file: nothing to gate against
    from test_serve_throughput import run_latency_bench

    measured = run_latency_bench(clicks=1 << 15)
    p99_ms = measured["p99_s"] * 1000
    ratio = p99_ms / recorded["p99_ms"] if recorded["p99_ms"] else 0.0
    gated = LATENCY_CEILING > 0
    verdict = "ok"
    if gated and ratio > LATENCY_CEILING:
        verdict = "REGRESSED"
        failures.append("latency-p99")
    print(
        f"{'latency p99':>12}: measured {p99_ms:>10.2f} ms    "
        f"  committed {recorded['p99_ms']:>10.2f} ms"
        f"  ratio {ratio:.2f}"
        f"  ({'ceiling ' + format(LATENCY_CEILING, '.1f') if gated else 'report only'})"
        f"  {verdict}"
    )


def check_adaptive(committed: dict, failures: list) -> None:
    """Gate the portfolio's deterministic FP-per-bit sweep exactly.

    A drifted measured FP means the hashing, slicing, or aging logic
    changed behaviour; a drifted memory means the sizing planner moved.
    Both must be deliberate, recorded changes — so the gate is equality,
    not a ratio band.
    """
    recorded = committed.get("adaptive")
    if not recorded:
        return  # pre-schema-5 BENCH file: nothing to gate against
    from test_adaptive_quality import run_quality_sweep

    measured = run_quality_sweep()
    for name, entry in sorted(recorded.items()):
        got = measured.get(name)
        verdict = "ok"
        if got is None:
            verdict = "MISSING"
        elif (
            got["measured_fp_rate"] != entry["measured_fp_rate"]
            or got["memory_bits"] != entry["memory_bits"]
        ):
            verdict = "DRIFTED"
        if verdict != "ok" and ADAPTIVE_GATE:
            failures.append(f"adaptive-{name}")
        shown = got or {"measured_fp_rate": float("nan"), "memory_bits": 0}
        print(
            f"{name:>12}: measured FP {shown['measured_fp_rate']:.6f}"
            f" / {shown['memory_bits']:>8,d} bits"
            f"  committed {entry['measured_fp_rate']:.6f}"
            f" / {entry['memory_bits']:>8,d}"
            f"  ({'exact gate' if ADAPTIVE_GATE else 'report only'})"
            f"  {verdict}"
        )


def report_scaling(committed: dict) -> None:
    """Echo the committed multi-process scaling numbers, tolerantly.

    The ``parallel`` and ``cluster`` sections are host-shaped: absent in
    pre-schema BENCH files, and (since schema 4) individual counts are
    recorded as tagged skips on hosts with fewer cores than the sweep.
    They are never gated here — re-running a multi-process sweep inside
    the regression check would dwarf it — but the check must not crash
    on any of those shapes.
    """
    for section, key in (("parallel", "workers"), ("cluster", "nodes")):
        recorded = committed.get(section)
        if not isinstance(recorded, dict):
            continue  # older BENCH file: nothing to echo
        parts = []
        entries = recorded.get(key) or {}
        for count, entry in sorted(entries.items(), key=lambda kv: int(kv[0])):
            if not isinstance(entry, dict) or "clicks_per_sec" not in entry:
                parts.append(f"x{count} skipped")
            else:
                parts.append(f"x{count} {entry['clicks_per_sec']:,.0f}/s")
        print(
            f"{section:>12}: committed {'  '.join(parts) or 'none'}"
            f"  (report only; cpu_count {recorded.get('cpu_count', '?')})"
        )


def main() -> int:
    bench_path = REPO_ROOT / "BENCH_throughput.json"
    committed = json.loads(bench_path.read_text())
    detectors = committed["detectors"]
    failures = []
    for name in REPORTED:
        _scalar, batch = compare_paths(name, timed=WINDOW)
        measured = batch.elements_per_second
        recorded = detectors[name]["batch_clicks_per_sec"]
        ratio = measured / recorded if recorded else float("inf")
        gated = name in GATED and FLOOR > 0
        verdict = "ok"
        if gated and ratio < FLOOR:
            verdict = "REGRESSED"
            failures.append(name)
        print(
            f"{name:>12}: measured {measured:>12,.0f} clicks/s"
            f"  committed {recorded:>12,.0f}"
            f"  ratio {ratio:.2f}"
            f"  ({'gate ' + format(FLOOR, '.2f') if gated else 'report only'})"
            f"  {verdict}"
        )
    check_latency(committed, failures)
    check_adaptive(committed, failures)
    report_scaling(committed)
    if failures:
        print(
            f"regression: {', '.join(failures)} outside the committed "
            "BENCH envelope",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
