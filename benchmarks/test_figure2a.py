"""Reproduces Figure 2(a): GBF false-positive rate vs hash count k.

Paper protocol (§5): jumping window N = 2^20, Q = 8, m = 1,876,246 bits
per lane; 20N distinct identifiers; FPs counted over the last 10N.
Headline: FP ~ 0.001 at k = 10 (the per-lane figure; the measured
query-level rate is ~Q x higher — both curves are printed).

Run at the scaled size (REPRO_SCALE, default 64); all ratios that the
FP rate depends on are preserved.
"""

from repro.experiments import run_figure2a
from repro.experiments.figure2a import DEFAULT_K_VALUES


def test_figure2a_fp_vs_k(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure2a(k_values=DEFAULT_K_VALUES, seed=42),
        rounds=1,
        iterations=1,
    )
    report("figure2a", result.render())
    benchmark.extra_info["window_size"] = result.window_size
    benchmark.extra_info["measured"] = result.measured
    benchmark.extra_info["theory_query"] = result.theory_query

    # The paper's qualitative claims must hold at any scale:
    # experimental results track the theory curve ...
    for measured, theory in zip(result.measured, result.theory_query):
        assert measured <= max(2.5 * theory, theory + 0.005)
        assert measured >= min(0.4 * theory, theory - 0.005)
    # ... and the rate at the optimal k (10) is small.
    at_k10 = result.measured[result.k_values.index(10)]
    assert at_k10 < 0.02
