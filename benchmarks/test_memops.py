"""Word-operation counts per element: measured vs Theorems 1.3 / 2.3.

The paper's cost claims are stated in D-bit word operations, which the
detectors' built-in counters measure exactly; this bench prints the
measured-vs-predicted table for all algorithms under one memory budget.
"""

from repro.baselines import MetwallyCBFDetector, NaiveSubwindowBloomDetector
from repro.core import (
    GBFDetector,
    TBFDetector,
    gbf_cost,
    metwally_cbf_cost,
    naive_subwindow_bloom_cost,
    tbf_cost,
)
from repro.metrics import measure_ops, render_table
from repro.streams import distinct_stream

WINDOW = 1 << 12
SUBWINDOWS = 16
MEMORY_BITS = 1 << 19
NUM_HASHES = 6
WORD_BITS = 64


def _run_table():
    bits_per_filter = MEMORY_BITS // (SUBWINDOWS + 1)
    entry_bits = 14  # ceil(log2(2N + 2)) for N = 2^12
    rows = []
    configs = [
        (
            "gbf",
            GBFDetector(WINDOW, SUBWINDOWS, bits_per_filter, NUM_HASHES,
                        word_bits=WORD_BITS, seed=1),
            gbf_cost(WINDOW, SUBWINDOWS, bits_per_filter, NUM_HASHES, WORD_BITS),
        ),
        (
            "tbf",
            TBFDetector(WINDOW, MEMORY_BITS // entry_bits, NUM_HASHES, seed=1),
            tbf_cost(WINDOW, MEMORY_BITS // entry_bits, NUM_HASHES),
        ),
        (
            "naive-bloom",
            NaiveSubwindowBloomDetector(WINDOW, SUBWINDOWS, bits_per_filter,
                                        NUM_HASHES, seed=1),
            naive_subwindow_bloom_cost(WINDOW, SUBWINDOWS, bits_per_filter,
                                       NUM_HASHES, WORD_BITS),
        ),
        (
            "metwally-cbf",
            MetwallyCBFDetector(WINDOW, SUBWINDOWS,
                                MEMORY_BITS // ((SUBWINDOWS + 1) * 8),
                                NUM_HASHES, counter_bits=8, seed=1),
            metwally_cbf_cost(WINDOW, SUBWINDOWS,
                              MEMORY_BITS // ((SUBWINDOWS + 1) * 8), NUM_HASHES),
        ),
    ]
    warmup = [int(x) for x in distinct_stream(2 * WINDOW, seed=3)]
    segment = [int(x) for x in distinct_stream(WINDOW, seed=4)]
    for name, detector, predicted in configs:
        for identifier in warmup:
            detector.process(identifier)
        measurement = measure_ops(detector, segment)
        rows.append(
            [
                name,
                round(measurement.words_per_element, 2),
                round(predicted.total, 2),
                round(measurement.rates.word_reads, 2),
                round(measurement.rates.word_writes, 2),
            ]
        )
    return rows


def test_word_ops_vs_theorems(benchmark, report):
    rows = benchmark.pedantic(_run_table, rounds=1, iterations=1)
    text = render_table(
        ["algorithm", "words/elem (meas)", "words/elem (pred)", "reads", "writes"],
        rows,
        title=(
            f"Word operations per element (N={WINDOW}, Q={SUBWINDOWS}, "
            f"M={MEMORY_BITS} bits, k={NUM_HASHES}, D={WORD_BITS})"
        ),
    )
    report("memops", text)

    by_name = {row[0]: row for row in rows}
    # Measured within 2x of the model everywhere (cleaning writes are
    # data-dependent; the model charges worst case).
    for name, row in by_name.items():
        assert row[1] <= 2.0 * row[2] + 1, name
    # The paper's ordering: GBF beats the naive layout; TBF is cheap.
    assert by_name["gbf"][1] < by_name["naive-bloom"][1]
    assert by_name["tbf"][1] < by_name["naive-bloom"][1]
