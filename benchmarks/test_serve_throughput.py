"""Network ingest throughput: the TCP serve path must sustain the floor.

Streams one synthetic click stream through a live ``ClickIngestServer``
over a real TCP socket — batches pipelined ``WINDOW_DEPTH`` deep, the
way the load generator drives it — and verifies on the exact stream it
timed that the served verdicts are bit-identical to the offline
``DetectionPipeline`` run.  The throughput floor defaults to 100k
clicks/s end-to-end (framing, socket hops, coalescing, detection, and
verdict decode all included) and can be tuned for weaker hosts via
``REPRO_BENCH_SERVE_FLOOR``.
"""

import os
import time
from collections import deque

import numpy as np

from repro.detection import DetectorSpec, WindowSpec, create_detector
from repro.detection.pipeline import DetectionPipeline
from repro.metrics.throughput import ThroughputResult
from repro.serve import ServeClient, ServerThread

WINDOW = 1 << 14
TOTAL_CLICKS = 1 << 18
BATCH = 4096
WINDOW_DEPTH = 32
SERVE_FLOOR = float(os.environ.get("REPRO_BENCH_SERVE_FLOOR", "100000"))

SPEC = DetectorSpec(
    algorithm="tbf", window=WindowSpec("sliding", WINDOW), target_fp=0.001
)


def _stream(count, seed=13):
    rng = np.random.default_rng(seed)
    # Universe sized to the window so a realistic share of clicks are
    # duplicates and the detector does real insert + expiry work.
    return rng.integers(0, WINDOW, size=count, dtype=np.uint64)


def run_serve_bench(clicks=TOTAL_CLICKS, batch=BATCH, depth=WINDOW_DEPTH):
    """Time one pipelined TCP run; verify bit-identity against offline.

    Returns a ``ThroughputResult``.  Shared with ``benchmarks/record.py``
    so BENCH_throughput.json quotes the same measurement this bench
    asserts on.
    """
    identifiers = _stream(clicks)
    expected = DetectionPipeline(
        create_detector(SPEC), score_sources=False
    ).run_identified_batch(identifiers)

    chunks = [
        identifiers[offset : offset + batch]
        for offset in range(0, clicks, batch)
    ]
    verdicts = [None] * len(chunks)
    with ServerThread(create_detector(SPEC)) as thread:
        with ServeClient("127.0.0.1", thread.port) as client:
            inflight = deque()
            start = time.perf_counter()
            for index, chunk in enumerate(chunks):
                while len(inflight) >= depth:
                    verdicts[inflight.popleft()] = client.collect()
                client.submit(chunk)
                inflight.append(index)
            while inflight:
                verdicts[inflight.popleft()] = client.collect()
            elapsed = time.perf_counter() - start
    served = np.concatenate(verdicts)
    assert served.shape[0] == clicks
    assert np.array_equal(served, expected)
    return ThroughputResult(elements=clicks, seconds=elapsed)


def run_latency_bench(clicks=1 << 16, batch=BATCH, depth=WINDOW_DEPTH):
    """Client-observed RTT percentiles through the TCP serve path.

    Drives :func:`repro.serve.client.run_load` (which times every
    batch's submit → verdict round trip) against a fresh server and
    returns its ``latency`` dict — seconds, keys ``p50_s``/``p95_s``/
    ``p99_s``/``max_s``/``batches``.  Shared with ``benchmarks/
    record.py`` so the BENCH file's latency section quotes the same
    measurement path the load generator prints.
    """
    from repro.serve.client import run_load

    identifiers = _stream(clicks, seed=17)
    batches = [
        (identifiers[offset : offset + batch], None)
        for offset in range(0, clicks, batch)
    ]
    with ServerThread(create_detector(SPEC)) as thread:
        stats = run_load("127.0.0.1", thread.port, batches, window=depth)
    assert stats["errors"] == 0
    return stats["latency"]


def test_serve_throughput(benchmark, report):
    result = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    benchmark.extra_info["serve_cps"] = result.elements_per_second
    report(
        "serve_throughput",
        f"serve (TCP, batch={BATCH}, depth={WINDOW_DEPTH}):"
        f" {result.elements_per_second:>12,.0f} clicks/s"
        f"  ({result.elements:,} clicks in {result.seconds:.2f}s,"
        " verdicts bit-identical to offline)\n",
    )
    assert result.elements_per_second >= SERVE_FLOOR, (
        f"serve path sustained {result.elements_per_second:,.0f} clicks/s "
        f"(floor {SERVE_FLOOR:,.0f}; override REPRO_BENCH_SERVE_FLOOR)"
    )
