"""Ablation A1: the TBF cleanup-slack trade-off (§4.1).

"A smaller C means less space requirement and larger operation time,
and a larger C means larger space requirement and less operation time."
Sweeps C and reports entry width, per-element sweep cost, memory, and
the (C-independent) false-positive rate.
"""

from repro.experiments import run_tbf_slack_ablation


def test_tbf_cleanup_slack_tradeoff(benchmark, report):
    # Scale 512 here regardless of REPRO_SCALE: the smallest-C point
    # costs ~N/C entry scans per element, which dominates the budget.
    result = benchmark.pedantic(
        lambda: run_tbf_slack_ablation(
            scale=512, slack_fractions=(1 / 16, 1 / 4, 1.0, 4.0),
            num_hashes=10, seed=42,
        ),
        rounds=1,
        iterations=1,
    )
    report("ablation_tbf_c", result.render())
    rows = result.rows
    benchmark.extra_info["rows"] = [
        (row.cleanup_slack, row.entry_bits, row.scan_per_element, row.measured_fp)
        for row in rows
    ]

    # The §4.1 trade-off, monotone in C:
    for earlier, later in zip(rows, rows[1:]):
        assert earlier.entry_bits <= later.entry_bits          # space up
        assert earlier.scan_per_element >= later.scan_per_element  # time down
        assert earlier.memory_bits <= later.memory_bits
    # Error rate is a pure function of (m, N, k): C must not affect it.
    for row in rows:
        assert abs(row.measured_fp - rows[0].measured_fp) < 0.005
