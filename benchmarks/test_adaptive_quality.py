"""FP-per-bit quality of the adaptive portfolio vs the paper's designs.

The adaptive PR's headline claim is *quality per bit*: for the same
sliding window and target FP, an age-partitioned Bloom filter (APBF)
needs a fraction of the memory the paper's TBF spends, and the
time-limited BF (TLBF) does the same against the time-based TBF.  This
bench sizes all four sliding-window designs at an identical
(window, target FP) point through ``DetectorSpec``, drives the same
all-distinct stream through each — on distinct traffic every duplicate
verdict is a false positive — and records measured FP, memory, and
bits-per-click.  ``record.py`` imports :func:`run_quality_sweep` to
write the numbers into BENCH_throughput.json's ``adaptive`` section
(schema 5), and ``check_regression.py`` gates measured FP against each
design's committed bound.

Everything here is deterministic: seeded streams, seeded hash families,
no timing in the gated numbers — so unlike the throughput sections the
quality numbers are comparable across hosts.
"""

import numpy as np
import pytest

from repro.detection import DetectorSpec, WindowSpec, create_detector, is_timed
from repro.telemetry import theoretical_fp_bound

WINDOW = 4096
RESOLUTION = 16
TARGET_FP = 0.01
CLICKS = 16 * WINDOW
CHUNK = 4096
SEED = 17

#: The four sliding-window designs at one (window, target FP) point.
#: GBF rides along for context even though its jumping window answers a
#: weaker question than the sliding four.
QUALITY_SPECS = {
    "gbf": DetectorSpec(
        algorithm="gbf", window=WindowSpec("jumping", WINDOW, 8),
        target_fp=TARGET_FP,
    ),
    "tbf": DetectorSpec(
        algorithm="tbf", window=WindowSpec("sliding", WINDOW),
        target_fp=TARGET_FP,
    ),
    "apbf": DetectorSpec(
        algorithm="apbf", window=WindowSpec("sliding", WINDOW),
        target_fp=TARGET_FP,
    ),
    "tbf-time": DetectorSpec(
        algorithm="tbf-time", window=WindowSpec("sliding", WINDOW),
        target_fp=TARGET_FP, duration=float(WINDOW), resolution=RESOLUTION,
    ),
    "time-limited-bf": DetectorSpec(
        algorithm="time-limited-bf", window=WindowSpec("sliding", WINDOW),
        target_fp=TARGET_FP, duration=float(WINDOW), resolution=RESOLUTION,
    ),
}


def measure_variant(name: str, clicks: int = CLICKS) -> dict:
    """Measured FP + sizing for one variant on an all-distinct stream."""
    from repro.streams import distinct_stream

    detector = create_detector(QUALITY_SPECS[name])
    identifiers = distinct_stream(clicks, seed=SEED)
    timestamps = np.arange(clicks, dtype=np.float64)  # one click per unit
    false_positives = 0
    for start in range(0, clicks, CHUNK):
        ids = identifiers[start:start + CHUNK]
        if is_timed(detector):
            verdicts = detector.process_batch_at(
                ids, timestamps[start:start + CHUNK]
            )
        else:
            verdicts = detector.process_batch(ids)
        false_positives += int(np.count_nonzero(verdicts))
    bound = theoretical_fp_bound(detector)
    return {
        "memory_bits": int(detector.memory_bits),
        "bits_per_click": round(detector.memory_bits / WINDOW, 2),
        "measured_fp_rate": round(false_positives / clicks, 6),
        # Time-based designs have no a-priori bound; the target they
        # were sized for is the committed reference instead.
        "design_fp_bound": round(bound if bound is not None else TARGET_FP, 6),
        "bound_kind": "theoretical" if bound is not None else "design-target",
    }


def run_quality_sweep(clicks: int = CLICKS) -> dict:
    """All variants; the shape written into BENCH_throughput.json."""
    return {name: measure_variant(name, clicks) for name in QUALITY_SPECS}


@pytest.fixture(scope="module")
def sweep():
    return run_quality_sweep()


@pytest.mark.parametrize("name", sorted(QUALITY_SPECS))
def test_measured_fp_within_design_bound(sweep, name):
    entry = sweep[name]
    # 2x headroom plus an absolute floor: FP counting over 64k distinct
    # clicks has binomial noise even with seeded streams.
    assert entry["measured_fp_rate"] <= max(
        2.0 * entry["design_fp_bound"], 0.002
    ), entry


def test_apbf_beats_tbf_per_bit(sweep):
    # The headline: same sliding window, same target FP, APBF spends a
    # fraction of TBF's bits (TBF carries a full timestamp counter per
    # cell; APBF carries one bit per slice row).
    assert sweep["apbf"]["memory_bits"] < 0.5 * sweep["tbf"]["memory_bits"], sweep


def test_tlbf_beats_time_based_tbf_per_bit(sweep):
    assert (
        sweep["time-limited-bf"]["memory_bits"]
        < 0.5 * sweep["tbf-time"]["memory_bits"]
    ), sweep


def test_sweep_is_deterministic():
    # The gate in check_regression.py relies on cross-host stability:
    # same seeds, same specs, same counts.
    first = measure_variant("apbf", clicks=4 * WINDOW)
    second = measure_variant("apbf", clicks=4 * WINDOW)
    assert first == second
