"""Scalar vs vectorized batch throughput for all five detectors.

The batch path (``process_batch`` / ``process_batch_at``) is required to
be *bit-identical* to the scalar loop — same verdicts, same checkpoint
bytes, same operation counts — so this bench both times the two paths
and asserts the equivalence on the exact stream it timed.  For the
paper's two headline detectors (GBF and TBF) it additionally asserts the
batch path clears a speedup floor on distinct traffic: 5x by default,
overridable via ``REPRO_BENCH_SPEEDUP_FLOOR`` so CI smoke runs on noisy
shared runners don't flap.
"""

import os
import time

import numpy as np
import pytest

from repro.core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
    save_detector,
)
from repro.metrics.throughput import ThroughputResult
from repro.streams import distinct_stream

WINDOW = 1 << 12
SUBWINDOWS = 8
MEMORY_BITS = 1 << 18
NUM_HASHES = 6
CHUNK = 4096
TIMED = 4 * WINDOW
DURATION = float(WINDOW)  # time-based twins: one click per second

SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "5"))
FLOOR_NAMES = {"gbf", "tbf"}

NAMES = ["gbf", "tbf", "tbf-jumping", "gbf-time", "tbf-time"]


def build_detector(name: str):
    bits_per_filter = MEMORY_BITS // (SUBWINDOWS + 1)
    if name == "gbf":
        return GBFDetector(WINDOW, SUBWINDOWS, bits_per_filter, NUM_HASHES, seed=1)
    if name == "tbf":
        return TBFDetector(WINDOW, MEMORY_BITS // 14, NUM_HASHES, seed=1)
    if name == "tbf-jumping":
        return TBFJumpingDetector(
            WINDOW, SUBWINDOWS, MEMORY_BITS // 5, NUM_HASHES, seed=1
        )
    if name == "gbf-time":
        return TimeBasedGBFDetector(
            DURATION, SUBWINDOWS, bits_per_filter, NUM_HASHES, seed=1
        )
    if name == "tbf-time":
        return TimeBasedTBFDetector(
            DURATION, SUBWINDOWS * 16, MEMORY_BITS // 14, NUM_HASHES, seed=1
        )
    raise ValueError(name)


def run_scalar(detector, identifiers, timestamps=None):
    """Scalar loop over the segment; returns (verdicts, timing)."""
    ids = [int(x) for x in identifiers]
    verdicts = np.empty(len(ids), dtype=bool)
    if timestamps is None:
        process = detector.process
        start = time.perf_counter()
        for position, identifier in enumerate(ids):
            verdicts[position] = process(identifier)
        elapsed = time.perf_counter() - start
    else:
        stamps = [float(t) for t in timestamps]
        process_at = detector.process_at
        start = time.perf_counter()
        for position, identifier in enumerate(ids):
            verdicts[position] = process_at(identifier, stamps[position])
        elapsed = time.perf_counter() - start
    return verdicts, ThroughputResult(elements=len(ids), seconds=elapsed)


def run_batch(detector, identifiers, timestamps=None, chunk=CHUNK):
    """Batch path over the segment in ``chunk``-sized calls."""
    n = identifiers.shape[0]
    verdicts = np.empty(n, dtype=bool)
    if timestamps is None:
        process_batch = detector.process_batch
        start = time.perf_counter()
        for s in range(0, n, chunk):
            verdicts[s : s + chunk] = process_batch(identifiers[s : s + chunk])
        elapsed = time.perf_counter() - start
    else:
        process_batch_at = detector.process_batch_at
        start = time.perf_counter()
        for s in range(0, n, chunk):
            verdicts[s : s + chunk] = process_batch_at(
                identifiers[s : s + chunk], timestamps[s : s + chunk]
            )
        elapsed = time.perf_counter() - start
    return verdicts, ThroughputResult(elements=n, seconds=elapsed)


def compare_paths(name: str, timed: int = TIMED, chunk: int = CHUNK):
    """Warm up, time scalar vs batch on one stream, verify equivalence.

    Returns ``(scalar_result, batch_result)``; raises AssertionError if
    the two paths diverge in verdicts, state, or operation counts.
    """
    scalar_detector = build_detector(name)
    batch_detector = build_detector(name)
    timebased = name.endswith("-time")

    warmup = distinct_stream(2 * WINDOW, seed=7).astype(np.uint64)
    segment = distinct_stream(timed, seed=8).astype(np.uint64)
    if timebased:
        warm_ts = np.arange(warmup.shape[0], dtype=np.float64)
        seg_ts = warm_ts[-1] + 1.0 + np.arange(timed, dtype=np.float64)
    else:
        warm_ts = seg_ts = None

    run_scalar(scalar_detector, warmup, warm_ts)
    run_batch(batch_detector, warmup, warm_ts, chunk)

    scalar_verdicts, scalar_result = run_scalar(scalar_detector, segment, seg_ts)
    batch_verdicts, batch_result = run_batch(batch_detector, segment, seg_ts, chunk)

    assert np.array_equal(scalar_verdicts, batch_verdicts), name
    assert save_detector(scalar_detector) == save_detector(batch_detector), name
    assert scalar_detector.counter == batch_detector.counter, name
    return scalar_result, batch_result


@pytest.mark.parametrize("name", NAMES)
def test_batch_throughput(benchmark, report, name):
    scalar_result, batch_result = benchmark.pedantic(
        lambda: compare_paths(name), rounds=1, iterations=1
    )
    speedup = scalar_result.seconds / batch_result.seconds
    text = (
        f"{name}: scalar {scalar_result.elements_per_second:>12,.0f} clicks/s"
        f"  batch {batch_result.elements_per_second:>12,.0f} clicks/s"
        f"  speedup {speedup:.1f}x\n"
    )
    report(f"batch_throughput_{name}", text)
    benchmark.extra_info["scalar_cps"] = scalar_result.elements_per_second
    benchmark.extra_info["batch_cps"] = batch_result.elements_per_second
    benchmark.extra_info["speedup"] = speedup

    if name in FLOOR_NAMES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name} batch path only {speedup:.2f}x faster than scalar "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
