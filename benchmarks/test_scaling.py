"""Scale-invariance validation: the license for scaled measurements.

Runs the Figure 2(b) protocol at four scales with identical (k, n/m)
and checks the measured FP rate sits on the scale-free theory curve at
every size.  This is the empirical justification for reporting
REPRO_SCALE-reduced measurements against the paper's full-size claims.
"""

from repro.experiments import run_scaling_validation


def test_fp_rate_is_scale_invariant(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_scaling_validation(scales=(512, 256, 128, 64), seed=7),
        rounds=1,
        iterations=1,
    )
    report("scaling", result.render())
    benchmark.extra_info["rows"] = [
        (row.scale, row.measured_fp, row.theory_fp) for row in result.rows
    ]
    for row in result.rows:
        # Tens to hundreds of expected FPs per run: 40% relative slack.
        assert 0.6 <= row.ratio <= 1.4, (row.scale, row.ratio)
    # No monotone drift with size: smallest and largest agree closely.
    assert abs(result.rows[0].ratio - result.rows[-1].ratio) < 0.4
