"""Cluster tier throughput: scatter/gather scaling across serve nodes.

Streams one pipelined TCP load through a live ``LocalCluster`` — router
in front, N serve nodes behind it — at 1, 2, and 4 nodes, and verifies
on the exact stream it timed that the gathered verdicts are
bit-identical to the equivalent single-process ``ShardedDetector``.
The scaling assertion (2 nodes must clear ``REPRO_BENCH_CLUSTER_FLOOR``x
the 1-node cluster baseline, default 1.5x) only runs on hosts with at
least 4 CPUs: every node is a real thread-hosted asyncio server doing
detection work, so on smaller hosts the sweep still runs and records
honest numbers, but the floor is not enforced.
"""

import os
import tempfile
import time
from collections import deque

import numpy as np
import pytest

from repro.cluster import LocalCluster
from repro.detection.sharded import ShardedDetector
from repro.metrics.throughput import ThroughputResult
from repro.serve import ServeClient

WINDOW = 1 << 14
TOTAL_ENTRIES = 1 << 17
NUM_HASHES = 6
SHARDS = 8
TOTAL_CLICKS = 1 << 18
BATCH = 4096
WINDOW_DEPTH = 32

NODE_COUNTS = [1, 2, 4]
CLUSTER_FLOOR = float(os.environ.get("REPRO_BENCH_CLUSTER_FLOOR", "1.5"))


def build_reference() -> ShardedDetector:
    return ShardedDetector._of_tbf(
        WINDOW, SHARDS, TOTAL_ENTRIES, NUM_HASHES, seed=1
    )


def _stream(count, seed=13):
    rng = np.random.default_rng(seed)
    # Universe sized to the window so a realistic share of clicks are
    # duplicates and every shard does real insert + expiry work.
    return rng.integers(0, WINDOW, size=count, dtype=np.uint64)


def _drive(port: int, chunks, depth: int = WINDOW_DEPTH):
    """Pipelined submit/collect loop; returns (verdicts, seconds)."""
    verdicts = [None] * len(chunks)
    with ServeClient("127.0.0.1", port) as client:
        inflight = deque()
        start = time.perf_counter()
        for index, chunk in enumerate(chunks):
            while len(inflight) >= depth:
                verdicts[inflight.popleft()] = client.collect()
            client.submit(chunk)
            inflight.append(index)
        while inflight:
            verdicts[inflight.popleft()] = client.collect()
        elapsed = time.perf_counter() - start
    return verdicts, elapsed


def run_cluster_sweep(node_counts=NODE_COUNTS, clicks=TOTAL_CLICKS):
    """Time the cluster at each node count; verify bit-identity throughout.

    Returns ``{nodes: ThroughputResult}``.  Shared with
    ``benchmarks/record.py`` so BENCH_throughput.json quotes the same
    measurement this bench asserts on.
    """
    warmup = _stream(2 * WINDOW, seed=7)
    segment = _stream(clicks, seed=8)
    warmup_chunks = [
        warmup[offset : offset + BATCH]
        for offset in range(0, warmup.shape[0], BATCH)
    ]
    chunks = [
        segment[offset : offset + BATCH] for offset in range(0, clicks, BATCH)
    ]

    reference = build_reference()
    reference.process_batch(warmup)
    expected = reference.process_batch(segment)

    results = {}
    for nodes in node_counts:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as state:
            with LocalCluster(build_reference, nodes, state) as cluster:
                _drive(cluster.port, warmup_chunks)
                verdicts, elapsed = _drive(cluster.port, chunks)
        assert np.array_equal(np.concatenate(verdicts), expected), nodes
        results[nodes] = ThroughputResult(elements=clicks, seconds=elapsed)
    return results


def test_cluster_scaling(benchmark, report):
    cores = os.cpu_count() or 1
    # A node count past the physical cores cannot scale and only adds
    # minutes of contention; sweep what the host can actually parallelize
    # (1 node always runs so the baseline and bit-identity check exist).
    counts = [count for count in NODE_COUNTS if count <= cores] or [1]
    sweep = benchmark.pedantic(
        run_cluster_sweep, args=(counts,), rounds=1, iterations=1
    )
    base = sweep[counts[0]]
    lines = []
    for nodes, result in sweep.items():
        speedup = base.seconds / result.seconds
        lines.append(
            f"cluster x{nodes}: {result.elements_per_second:>12,.0f} clicks/s"
            f"  speedup {speedup:.2f}x vs 1 node\n"
        )
        benchmark.extra_info[f"cluster_{nodes}_cps"] = result.elements_per_second
        benchmark.extra_info[f"cluster_{nodes}_speedup"] = speedup
    skipped = [count for count in NODE_COUNTS if count not in sweep]
    if skipped:
        lines.append(
            f"cluster x{','.join(map(str, skipped))}: skipped "
            f"(host has {cores} CPUs)\n"
        )
    report("cluster_throughput", "".join(lines))

    if cores < 4:
        pytest.skip(
            f"host has {cores} CPUs; the 2-node scaling floor needs a "
            "router, a client, and two busy nodes to run in parallel"
        )
    speedup2 = base.seconds / sweep[2].seconds
    assert speedup2 >= CLUSTER_FLOOR, (
        f"2 nodes only {speedup2:.2f}x over the 1-node cluster baseline "
        f"(floor {CLUSTER_FLOOR}x; override REPRO_BENCH_CLUSTER_FLOOR)"
    )
