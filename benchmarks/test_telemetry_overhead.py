"""Telemetry overhead: bare vs no-op session vs fully instrumented.

The observability layer promises two ceilings (docs/observability.md):

* **disabled** — a pipeline holding the default no-op
  :class:`~repro.telemetry.TelemetrySession` must cost < 3% over a bare
  chunk loop with no telemetry calls at all, and
* **enabled** — a real registry + detector instrument + periodic
  snapshot collection must cost < 30%.  (The absolute per-chunk cost
  hasn't grown since the ceiling was 15% — the fused batch path under
  it got ~3x faster, so the same spans and snapshots are a larger
  fraction of a much shorter pass.)

Both ceilings are asserted here for the paper's two headline detectors
(GBF and TBF) on their vectorized batch path.  The three modes run the
*identical* detector work per round — same stream, same chunking — and
rounds are interleaved (bare, noop, enabled, bare, ...) so thermal and
allocator drift hits every mode equally; the *median* over rounds is
compared.  (Min-of-rounds looks tempting but makes the overhead a
difference of two extremes: whichever mode got the single luckiest
round wins, and the ratio comes out negative as often as not.  The
median is stable against both the slow outliers the min also ignores
and the lucky ones it doesn't.)  Ceilings are overridable for noisy
shared runners via ``REPRO_TELEMETRY_NOOP_CEILING`` /
``REPRO_TELEMETRY_ENABLED_CEILING``.

Measurement noise still dominates near zero: even the median-of-9
no-op overhead can land a fraction of a percent *negative* on a quiet
host, because the no-op session's dead method calls cost less than one
timer tick per chunk and the two modes' medians are then two draws
from overlapping distributions.  A negative reading means "too small
to measure", not "telemetry made it faster" — ``benchmarks/record.py``
therefore clamps the recorded ``noop_overhead_pct`` at 0.0 so BENCH
diffs never advertise a phantom speedup.
"""

import os
import time

import numpy as np
import pytest

from repro.streams import distinct_stream
from repro.telemetry import TelemetrySession

from test_batch_throughput import CHUNK, WINDOW, build_detector

# Long enough that one mode pass is tens of milliseconds on the
# vectorized path — shorter passes drown a few-percent overhead in
# timer and scheduler jitter no matter how the rounds are aggregated.
TIMED = 16 * WINDOW
ROUNDS = 9
MODES = ("bare", "noop", "enabled")
NOOP_CEILING = float(os.environ.get("REPRO_TELEMETRY_NOOP_CEILING", "0.03"))
ENABLED_CEILING = float(os.environ.get("REPRO_TELEMETRY_ENABLED_CEILING", "0.30"))


def _session_for(mode: str):
    if mode == "bare":
        return None
    if mode == "noop":
        return TelemetrySession.disabled()
    # One snapshot per window: instruments collect (and fill gauges
    # recompute) a few times inside the timed region, as they would in
    # a real `repro monitor` run.
    return TelemetrySession(snapshot_every=WINDOW)


def time_mode(name: str, mode: str, identifiers, warmup) -> float:
    """Seconds for one timed pass of ``mode`` over ``identifiers``.

    The per-chunk shape mirrors ``DetectionPipeline.run_batch``: a span
    around the batch call, counter increments for the chunk's verdict
    tallies, and ``advance`` driving the snapshot cadence.  In bare
    mode those lines are absent entirely; in noop mode they hit the
    null twins.
    """
    detector = build_detector(name)
    session = _session_for(mode)
    process_batch = detector.process_batch
    process_batch(warmup)

    if session is None:
        start = time.perf_counter()
        for s in range(0, TIMED, CHUNK):
            chunk = identifiers[s : s + CHUNK]
            verdicts = process_batch(chunk)
            int(np.count_nonzero(verdicts))
        return time.perf_counter() - start

    if session.enabled:
        session.instrument_detector(detector)
    tracer = session.tracer
    registry = session.registry
    clicks_total = registry.counter(
        "repro_pipeline_clicks_total", "Clicks processed by the pipeline"
    )
    duplicates_total = registry.counter(
        "repro_pipeline_duplicates_total", "Clicks rejected as duplicates"
    )
    advance = session.advance
    start = time.perf_counter()
    for s in range(0, TIMED, CHUNK):
        chunk = identifiers[s : s + CHUNK]
        with tracer.span("pipeline.run_batch.chunk", size=chunk.shape[0]):
            verdicts = process_batch(chunk)
        duplicates = int(np.count_nonzero(verdicts))
        clicks_total.inc(chunk.shape[0])
        if duplicates:
            duplicates_total.inc(duplicates)
        advance(chunk.shape[0])
    return time.perf_counter() - start


def measure_overheads(name: str):
    """Interleaved median-of-``ROUNDS`` timing; returns seconds per mode."""
    warmup = distinct_stream(2 * WINDOW, seed=7).astype(np.uint64)
    segment = distinct_stream(TIMED, seed=8).astype(np.uint64)
    times = {mode: [] for mode in MODES}
    for round_index in range(ROUNDS):
        # Rotate the starting mode so each mode occupies each position
        # equally often: clock ramp-up, cache warmth, and allocator
        # state systematically favour whichever mode runs later in a
        # round, and a fixed order turns that into a fake overhead
        # (negative for the first mode).
        for offset in range(len(MODES)):
            mode = MODES[(round_index + offset) % len(MODES)]
            times[mode].append(time_mode(name, mode, segment, warmup))
    return {mode: float(np.median(times[mode])) for mode in MODES}


@pytest.mark.parametrize("name", ["gbf", "tbf"])
def test_telemetry_overhead(benchmark, report, name):
    best = benchmark.pedantic(
        lambda: measure_overheads(name), rounds=1, iterations=1
    )
    noop_overhead = best["noop"] / best["bare"] - 1.0
    enabled_overhead = best["enabled"] / best["bare"] - 1.0
    text = (
        f"{name}: bare {TIMED / best['bare']:>12,.0f} clicks/s"
        f"  noop {100 * noop_overhead:+.2f}%"
        f"  enabled {100 * enabled_overhead:+.2f}%\n"
    )
    report(f"telemetry_overhead_{name}", text)
    benchmark.extra_info["bare_cps"] = TIMED / best["bare"]
    benchmark.extra_info["noop_overhead"] = noop_overhead
    benchmark.extra_info["enabled_overhead"] = enabled_overhead

    assert noop_overhead < NOOP_CEILING, (
        f"{name}: disabled telemetry costs {100 * noop_overhead:.2f}% "
        f"(ceiling {100 * NOOP_CEILING:.0f}%)"
    )
    assert enabled_overhead < ENABLED_CEILING, (
        f"{name}: enabled telemetry costs {100 * enabled_overhead:.2f}% "
        f"(ceiling {100 * ENABLED_CEILING:.0f}%)"
    )
