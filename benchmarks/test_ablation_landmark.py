"""Ablation A5: why landmark windows are not enough (§1.2 motivation).

The Metwally et al. WWW'05 scheme deploys a Bloom filter over landmark
windows; duplicates straddling an epoch boundary are invisible to it.
For a duplicate pair at lag L placed uniformly at random, the boundary
falls between the pair with probability L/N — a measurable, structural
false-negative rate that the paper's decaying-window algorithms (here
TBF over a true sliding window) eliminate entirely.
"""

from repro.experiments import run_landmark_boundary_ablation


def test_landmark_boundary_misses(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_landmark_boundary_ablation(
            window_size=1 << 12,
            lags=(0.1, 0.25, 0.5, 0.75, 0.9),
            pairs_per_lag=400,
            seed=42,
        ),
        rounds=1,
        iterations=1,
    )
    report("ablation_landmark", result.render())
    for row in result.rows:
        lag_fraction = row.duplicate_lag / result.window_size
        # Landmark misses with probability ~ lag/N ...
        assert abs(row.landmark_miss_rate - lag_fraction) < 0.1
        # ... the sliding-window TBF never misses (zero FN).
        assert row.tbf_miss_rate == 0.0
