"""Reproduces Figure 2(b): TBF false-positive rate vs hash count k.

Paper protocol (§5): sliding window N = 2^20, m = 15,112,980 entries;
20N distinct identifiers; FPs counted over the last 10N.  Headline:
FP ~ 0.001 at k = 10 — the classical-formula value at those constants
is 0.00098, which the theory column reproduces exactly.
"""

from repro.experiments import run_figure2b
from repro.experiments.figure2b import DEFAULT_K_VALUES


def test_figure2b_fp_vs_k(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure2b(k_values=DEFAULT_K_VALUES, seed=42),
        rounds=1,
        iterations=1,
    )
    report("figure2b", result.render())
    benchmark.extra_info["window_size"] = result.window_size
    benchmark.extra_info["measured"] = result.measured
    benchmark.extra_info["theory"] = result.theory

    # Experimental results close to theory at every k (paper's claim).
    for measured, theory in zip(result.measured, result.theory):
        assert measured <= max(2.5 * theory, theory + 0.005)
        assert measured >= min(0.4 * theory, theory - 0.005)
    # FP ~ 0.001 at the optimal k = 10.
    at_k10 = result.measured[result.k_values.index(10)]
    assert at_k10 < 0.005
