"""Reproduces Figure 1: previous algorithm (Metwally CBF) vs GBF FP rate
as the window size N grows from 2^15 to 2^20 (Q = 31, filters of 2^20).

Headline shape (§3.3): the previous algorithm's FP rate climbs steeply
with N (its main filter carries the full window load) while GBF's grows
slowly (each lane carries N/Q); at N = 2^20 the paper quotes 0.62 vs
0.073.  Theory columns use the paper's exact constants; measured
columns run the full protocol at REPRO_SCALE-reduced sizes.
"""

from repro.experiments import run_figure1
from repro.experiments.figure1 import PAPER_LOG_N_VALUES


def test_figure1_previous_vs_gbf(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure1(log_n_values=PAPER_LOG_N_VALUES, seed=42),
        rounds=1,
        iterations=1,
    )
    report("figure1", result.render())
    benchmark.extra_info["theory_previous"] = result.theory_previous
    benchmark.extra_info["theory_gbf"] = result.theory_gbf
    benchmark.extra_info["measured_previous"] = result.measured_previous
    benchmark.extra_info["measured_gbf"] = result.measured_gbf

    # Shape assertions, scale-independent:
    # 1. the previous algorithm degrades faster with N,
    deltas_previous = result.theory_previous[-1] - result.theory_previous[0]
    deltas_gbf = result.theory_gbf[-1] - result.theory_gbf[0]
    assert deltas_previous > deltas_gbf
    # 2. at the largest N, GBF wins by a wide margin (paper: 0.62/0.073),
    assert result.theory_previous[-1] > 4 * result.theory_gbf[-1]
    assert result.measured_previous[-1] > 2 * result.measured_gbf[-1]
    # 3. measured agrees with theory for both algorithms at the endpoint.
    _assert_close(result.measured_previous[-1], result.theory_previous[-1])
    _assert_close(result.measured_gbf[-1], result.theory_gbf[-1])


def _assert_close(measured: float, theory: float) -> None:
    """Within 50% relative or 0.02 absolute — FP measurements are noisy."""
    assert abs(measured - theory) <= max(0.5 * theory, 0.02), (measured, theory)
