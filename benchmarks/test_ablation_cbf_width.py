"""Ablation A3: counter width in the Metwally counting-filter baseline.

§3.3: "each counter must have enough bits to avoid saturation, which
will generate both false negatives and false positives."  Sweeps the
counter width on a duplicate-heavy stream and reports saturation
events plus error rates against exact jumping-window ground truth.
"""

from repro.experiments import run_cbf_width_ablation


def test_cbf_counter_width(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_cbf_width_ablation(counter_widths=(2, 4, 8, 16), seed=42),
        rounds=1,
        iterations=1,
    )
    report("ablation_cbf_width", result.render())
    rows = {row.counter_bits: row for row in result.rows}
    benchmark.extra_info["saturations"] = {
        row.counter_bits: row.saturation_events for row in result.rows
    }

    # Memory cost grows linearly with width ...
    assert rows[16].memory_bits == 8 * rows[2].memory_bits
    # ... and buys freedom from saturation.
    assert rows[2].saturation_events > 0
    assert rows[16].saturation_events == 0
    # Narrow counters are at least as error-prone as wide ones.
    assert rows[2].false_negative_rate >= rows[16].false_negative_rate
    assert rows[2].false_positive_rate >= rows[16].false_positive_rate * 0.9
