"""Multi-process parallel engine throughput: scaling across workers.

Times the ``ParallelShardedDetector`` at 1, 2, and 4 workers on one
stream and verifies — on the exact stream it timed — that every fleet's
verdicts and final per-shard states are bit-identical to the equivalent
single-process ``ShardedDetector``.  The scaling assertion (4 workers
must clear ``REPRO_BENCH_PARALLEL_FLOOR``x the 1-worker parallel
baseline, default 2.5x) only runs on hosts with at least 4 CPUs: worker
processes cannot scale past the cores the machine actually has, so on
smaller hosts the sweep still runs and records honest numbers, but the
floor is not enforced.
"""

import os
import time

import numpy as np
import pytest

from repro.detection.sharded import ShardedDetector
from repro.metrics.throughput import ThroughputResult
from repro.parallel import ParallelShardedDetector
from repro.streams import distinct_stream

WINDOW = 1 << 12
TOTAL_ENTRIES = 1 << 15
NUM_HASHES = 6
CHUNK = 8192
TIMED = 8 * WINDOW

WORKER_COUNTS = [1, 2, 4]
PARALLEL_FLOOR = float(os.environ.get("REPRO_BENCH_PARALLEL_FLOOR", "2.5"))


def build_reference(workers: int) -> ShardedDetector:
    return ShardedDetector._of_tbf(
        WINDOW, workers, TOTAL_ENTRIES, NUM_HASHES, seed=1
    )


def run_parallel_sweep(worker_counts=WORKER_COUNTS):
    """Time the fleet at each worker count; verify bit-identity throughout.

    Returns ``{workers: ThroughputResult}``.  Shared with
    ``benchmarks/record.py`` so BENCH_throughput.json quotes the same
    measurement this bench asserts on.
    """
    warmup = distinct_stream(2 * WINDOW, seed=7).astype(np.uint64)
    segment = distinct_stream(TIMED, seed=8).astype(np.uint64)
    results = {}
    for workers in worker_counts:
        reference = build_reference(workers)
        reference.process_batch(warmup)
        expected = reference.process_batch(segment)

        fleet = ParallelShardedDetector(
            build_reference(workers), slot_items=CHUNK
        )
        try:
            fleet.process_batch(warmup)
            start = time.perf_counter()
            verdicts = [
                fleet.process_batch(segment[offset : offset + CHUNK])
                for offset in range(0, TIMED, CHUNK)
            ]
            elapsed = time.perf_counter() - start
            assert np.array_equal(np.concatenate(verdicts), expected), workers
            for shard in range(workers):
                assert fleet.checkpoint_shard(shard) == reference.checkpoint_shard(
                    shard
                ), workers
        finally:
            fleet.close()
        results[workers] = ThroughputResult(elements=TIMED, seconds=elapsed)
    return results


def test_parallel_scaling(benchmark, report):
    sweep = benchmark.pedantic(run_parallel_sweep, rounds=1, iterations=1)
    base = sweep[WORKER_COUNTS[0]]
    lines = []
    for workers, result in sweep.items():
        speedup = base.seconds / result.seconds
        efficiency = speedup / workers
        lines.append(
            f"parallel x{workers}: {result.elements_per_second:>12,.0f} clicks/s"
            f"  speedup {speedup:.2f}x  efficiency {efficiency:.0%}\n"
        )
        benchmark.extra_info[f"parallel_{workers}_cps"] = result.elements_per_second
        benchmark.extra_info[f"parallel_{workers}_speedup"] = speedup
    report("parallel_throughput", "".join(lines))

    cores = os.cpu_count() or 1
    if cores < max(WORKER_COUNTS):
        pytest.skip(
            f"host has {cores} CPUs; {max(WORKER_COUNTS)}-worker scaling floor "
            "needs at least that many cores"
        )
    speedup4 = base.seconds / sweep[4].seconds
    assert speedup4 >= PARALLEL_FLOOR, (
        f"4 workers only {speedup4:.2f}x over the 1-worker parallel baseline "
        f"(floor {PARALLEL_FLOOR}x)"
    )


def test_single_process_batch_still_wins_small_batches(report):
    """Document the crossover: tiny batches are faster in-process.

    Per-batch ring overhead (memcpy + two semaphore hops + result
    gather) is fixed; at small chunk sizes it dominates and the
    single-process vectorized path wins regardless of cores.  This
    guards the docs/performance.md guidance with a live measurement —
    no assertion on which side wins (that is host-dependent), only that
    both paths stay bit-identical while we measure.
    """
    chunk = 64
    segment = distinct_stream(4 * chunk, seed=9).astype(np.uint64)
    reference = build_reference(2)
    expected = reference.process_batch(segment)

    fleet = ParallelShardedDetector(build_reference(2), slot_items=chunk)
    try:
        verdicts = np.concatenate(
            [
                fleet.process_batch(segment[offset : offset + chunk])
                for offset in range(0, segment.shape[0], chunk)
            ]
        )
        assert np.array_equal(verdicts, expected)
        for shard in range(2):
            assert fleet.checkpoint_shard(shard) == reference.checkpoint_shard(shard)
    finally:
        fleet.close()
    report(
        "parallel_small_batch_note",
        f"small-batch (chunk={chunk}) parallel path verified bit-identical; "
        "see docs/performance.md for the workers-vs-batch-size guidance\n",
    )
