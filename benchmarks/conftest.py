"""Shared fixtures for the reproduction benchmarks.

Every benchmark prints its result table live (bypassing capture) and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can quote
the exact output.  The scale factor honours ``REPRO_SCALE`` (default
64, i.e. N = 2^14; see repro.experiments.config).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(capsys, results_dir):
    """Print a result table to the live terminal and save it to disk."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            print()
            print(text, end="")
        (results_dir / f"{name}.txt").write_text(text)

    return _report
