"""Throughput of every detector (Theorems 1.3 / 2.3, wall-clock view).

pytest-benchmark times ``process`` over one full window of distinct
traffic after a two-window warm-up.  Absolute numbers are
interpreter-bound (the paper's testbed was native code); the relative
ordering — GBF/TBF fast, naive and exact slower, Metwally slowest due
to double counter updates — is the reproducible claim.
"""

import pytest

from repro.baselines import (
    ExactDetector,
    LandmarkBloomDetector,
    MetwallyCBFDetector,
    NaiveSubwindowBloomDetector,
    StableBloomDetector,
)
from repro.core import GBFDetector, TBFDetector, TBFJumpingDetector
from repro.streams import distinct_stream

WINDOW = 1 << 12
SUBWINDOWS = 8
MEMORY_BITS = 1 << 18
NUM_HASHES = 6


def _detector(name: str):
    bits_per_filter = MEMORY_BITS // (SUBWINDOWS + 1)
    if name == "gbf":
        return GBFDetector(WINDOW, SUBWINDOWS, bits_per_filter, NUM_HASHES, seed=1)
    if name == "tbf":
        return TBFDetector(WINDOW, MEMORY_BITS // 14, NUM_HASHES, seed=1)
    if name == "tbf-jumping":
        return TBFJumpingDetector(WINDOW, SUBWINDOWS, MEMORY_BITS // 5, NUM_HASHES, seed=1)
    if name == "naive-bloom":
        return NaiveSubwindowBloomDetector(
            WINDOW, SUBWINDOWS, bits_per_filter, NUM_HASHES, seed=1
        )
    if name == "metwally-cbf":
        return MetwallyCBFDetector(
            WINDOW, SUBWINDOWS, MEMORY_BITS // ((SUBWINDOWS + 1) * 8),
            NUM_HASHES, counter_bits=8, seed=1,
        )
    if name == "landmark-bloom":
        return LandmarkBloomDetector(WINDOW, MEMORY_BITS, NUM_HASHES, seed=1)
    if name == "stable-bloom":
        return StableBloomDetector.with_tuned_decay(
            WINDOW, MEMORY_BITS // 3, NUM_HASHES, seed=1
        )
    return ExactDetector.sliding(WINDOW)


@pytest.mark.parametrize(
    "name",
    [
        "gbf",
        "tbf",
        "tbf-jumping",
        "naive-bloom",
        "metwally-cbf",
        "landmark-bloom",
        "stable-bloom",
        "exact",
    ],
)
def test_process_throughput(benchmark, name):
    detector = _detector(name)
    warmup = [int(x) for x in distinct_stream(2 * WINDOW, seed=7)]
    segment = [int(x) for x in distinct_stream(WINDOW, seed=8)]
    for identifier in warmup:
        detector.process(identifier)

    position = 0

    def run_one():
        nonlocal position
        detector.process(segment[position & (WINDOW - 1)])
        position += 1

    benchmark(run_one)
