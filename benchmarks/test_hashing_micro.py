"""Micro-benchmarks of the hash families.

Hashing dominates the per-element cost of every filter (k evaluations
per click), so family choice matters; this bench compares scalar and
batch paths across the implemented families.
"""

import numpy as np
import pytest

from repro.hashing import make_family

FAMILIES = ["splitmix", "carter-wegman", "tabulation", "double"]
RANGE = 1 << 20
NUM_HASHES = 10


@pytest.mark.parametrize("kind", FAMILIES)
def test_scalar_hashing(benchmark, kind):
    family = make_family(NUM_HASHES, RANGE, seed=1, kind=kind)
    identifier = 0x9E3779B97F4A7C15

    benchmark(family.indices, identifier)


@pytest.mark.parametrize("kind", FAMILIES)
def test_batch_hashing(benchmark, kind):
    family = make_family(NUM_HASHES, RANGE, seed=1, kind=kind)
    identifiers = np.arange(1 << 14, dtype=np.uint64)

    result = benchmark(family.indices_batch, identifiers)
    assert result.shape == (1 << 14, NUM_HASHES)


def test_precompute_from_lazy_iterable(benchmark):
    # The chunk-at-a-time iterable path: hashes a one-shot generator
    # without materializing it, at near array-input throughput.
    from repro.hashing import precompute_indices

    family = make_family(NUM_HASHES, RANGE, seed=1, kind="splitmix")
    n = 1 << 14

    result = benchmark(
        lambda: precompute_indices(family, iter(range(n)), chunk_size=4096)
    )
    assert result.shape == (n, NUM_HASHES)
