"""Ablation A2: where TBF overtakes GBF as sub-windows multiply (§4).

GBF's per-element cost grows with Q — more lane words per probe once
Q + 1 exceeds the word size, and lane cleaning proportional to m*Q/N —
while the TBF's cost is Q-independent.  The paper's guidance ("when Q
is large ... TBF is a better choice") becomes a measurable crossover in
word operations per element under a shared memory budget.
"""

from repro.experiments import run_q_crossover_ablation


def test_gbf_tbf_q_crossover(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_q_crossover_ablation(
            window_size=1 << 12,
            total_memory_bits=1 << 19,
            q_values=(4, 8, 16, 32, 64, 128, 256, 512),
            num_hashes=6,
            word_bits=32,
            seed=42,
        ),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    crossover = result.crossover_q
    text += f"\nmeasured crossover: TBF cheaper from Q = {crossover}\n"
    report("ablation_q_crossover", text)
    benchmark.extra_info["crossover_q"] = crossover

    gbf_ops = [row.gbf_measured for row in result.rows]
    tbf_ops = [row.tbf_measured for row in result.rows]
    # GBF cost rises with Q; TBF stays flat (within 3x across the sweep).
    assert gbf_ops[-1] > gbf_ops[0] * 2
    assert max(tbf_ops) < min(tbf_ops) * 3
    # The crossover exists: GBF wins somewhere, TBF wins at the top end.
    assert tbf_ops[-1] < gbf_ops[-1]
    assert crossover is not None
