"""Adaptive detector wrappers: live resize via checkpoint-migrate.

The sketches in :mod:`repro.core` and :mod:`repro.adaptive.filters` are
sized once, at construction.  When live traffic drifts away from the
sizing assumptions — the estimated FP rate creeps past the paper's
bound, or a shrunken stream leaves most of the memory idle — the only
remedy is a *resize*: build a filter of the new size and warm it with
the recent past.

:class:`AdaptiveDetector` (count-based) and
:class:`AdaptiveTimedDetector` (time-based) make that remedy a method
call.  Each wraps an inner detector built from a
:class:`~repro.detection.DetectorSpec` and retains a bounded window of
the most recent arrivals.  ``migrate(new_spec)`` builds a fresh inner
detector from ``new_spec``, replays the retained window through it, and
swaps it in — the wrapper object (and therefore every reference held by
pipelines, routers, and instruments) survives the resize.  Both
wrappers natively implement the full
:class:`~repro.detection.DetectorLifecycle` protocol
(``quiesce / checkpoint / migrate / resume``), so the supervised
pipeline, the parallel fleet, and the cluster router drive them through
the same four verbs they use for everything else.

Replay semantics are deliberately simple and testable: after
``migrate(new_spec)``, the wrapper's verdicts match a *fresh* detector
of ``new_spec`` that processed exactly the retained window (property-
tested).  Clicks older than the retained window are forgotten — the
same guarantee decay already gives them.

Checkpoints round-trip the whole assembly — wrapper bookkeeping,
retained window, spec, and the inner detector's bit-exact state — under
the ``"adaptive"`` / ``"adaptive-timed"`` frame kinds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict
from typing import Deque, Iterable, Optional, Tuple

import numpy as np

from ..core.checkpoint import (
    CheckpointError,
    load_detector,
    pack_frame,
    register_checkpoint_kind,
    save_detector,
)
from ..detection.detector import (
    PARAMS_TYPES,
    TIME_BASED_ALGORITHMS,
    DetectorSpec,
    WindowSpec,
    create_detector,
)
from ..errors import ConfigurationError

__all__ = [
    "AdaptiveDetector",
    "AdaptiveTimedDetector",
    "adaptive_detector",
    "spec_to_dict",
    "spec_from_dict",
]


def spec_to_dict(spec: DetectorSpec) -> dict:
    """Serialize a :class:`DetectorSpec` to a JSON-safe dict."""
    window = spec.window
    return {
        "algorithm": spec.algorithm,
        "window": {
            "kind": window.kind,
            "size": window.size,
            "num_subwindows": window.num_subwindows,
        },
        "memory_bits": spec.memory_bits,
        "target_fp": spec.target_fp,
        "num_hashes": spec.num_hashes,
        "seed": spec.seed,
        "duration": spec.duration,
        "resolution": spec.resolution,
        "shards": spec.shards,
        "engine": spec.engine,
        "params": None if spec.params is None else asdict(spec.params),
    }


def spec_from_dict(data: dict) -> DetectorSpec:
    """Rebuild the :class:`DetectorSpec` :func:`spec_to_dict` emitted."""
    window = data["window"]
    params = data.get("params")
    if params is not None:
        params_type = PARAMS_TYPES.get(data["algorithm"])
        if params_type is None:
            raise CheckpointError(
                f"checkpoint carries params for {data['algorithm']!r}, "
                "which takes none"
            )
        params = params_type(**params)
    return DetectorSpec(
        algorithm=data["algorithm"],
        window=WindowSpec(
            window["kind"], window["size"], window["num_subwindows"]
        ),
        memory_bits=data["memory_bits"],
        target_fp=data["target_fp"],
        num_hashes=data["num_hashes"],
        seed=data["seed"],
        duration=data["duration"],
        resolution=data["resolution"],
        shards=data["shards"],
        engine=data["engine"],
        params=params,
    )


class _AdaptiveBase:
    """Shared machinery: retained window, lifecycle verbs, delegation."""

    def __init__(
        self,
        spec: DetectorSpec,
        *,
        retain: Optional[int] = None,
        _inner=None,
    ) -> None:
        if retain is None:
            retain = spec.window.size
        if retain < 1:
            raise ConfigurationError(f"retain must be >= 1, got {retain}")
        self._spec = spec
        self.retain = retain
        self.inner = _inner if _inner is not None else create_detector(spec)
        self.migrations = 0
        self._quiesced = False

    # -- lifecycle ---------------------------------------------------

    def quiesce(self) -> None:
        """Stop background work so state is stable for checkpoint/migrate."""
        hook = getattr(self.inner, "quiesce", None)
        if hook is not None:
            hook()
        self._quiesced = True

    def resume(self) -> None:
        """Undo :meth:`quiesce`; the detector accepts traffic again."""
        hook = getattr(self.inner, "resume", None)
        if hook is not None:
            hook()
        self._quiesced = False

    def checkpoint(self) -> bytes:
        """Serialize wrapper + retained window + inner state to bytes."""
        return save_detector(self)

    # Supervised-pipeline compatibility: it snapshots via
    # ``checkpoint_state()`` when a detector offers one.
    def checkpoint_state(self) -> bytes:
        return save_detector(self)

    def migrate(self, new_spec: DetectorSpec) -> None:
        """Swap in a fresh detector of ``new_spec`` warmed by replay.

        After this returns, verdicts match a fresh ``new_spec`` detector
        that processed exactly the retained window.  The wrapper object
        itself is unchanged — references held elsewhere stay valid.
        """
        self._check_spec(new_spec)
        fresh = create_detector(new_spec)
        self._replay(fresh)
        self.inner = fresh
        self._spec = new_spec
        self.migrations += 1

    # -- shared surface ----------------------------------------------

    def spec(self) -> DetectorSpec:
        """The spec of the *current* inner detector."""
        inner_spec = getattr(self.inner, "spec", None)
        if inner_spec is not None:
            return inner_spec()
        return self._spec

    @property
    def memory_bits(self) -> int:
        return self.inner.memory_bits

    def theoretical_fp_bound(self) -> Optional[float]:
        from ..telemetry.instruments import theoretical_fp_bound

        return theoretical_fp_bound(self.inner)

    def estimated_fp_rate(self) -> Optional[float]:
        estimate = getattr(self.inner, "estimated_fp_rate", None)
        if estimate is not None:
            return estimate()
        gauges = self.inner.telemetry_snapshot().get("gauges", {})
        return gauges.get("estimated_fp_rate")

    def telemetry_snapshot(self) -> dict:
        snapshot_fn = getattr(self.inner, "telemetry_snapshot", None)
        snapshot = snapshot_fn() if snapshot_fn is not None else {}
        gauges = dict(snapshot.get("gauges", {}))
        gauges["retained_window"] = float(len(self._buffer))
        gauges["retain_limit"] = float(self.retain)
        counters = dict(snapshot.get("counters", {}))
        counters["migrations"] = self.migrations
        out = dict(snapshot)
        out["gauges"] = gauges
        out["counters"] = counters
        return out

    def __getattr__(self, name: str):
        # Fallback delegation for read-only surface (duplicates, query
        # helpers, counters).  Only called when normal lookup fails.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(inner={self.inner!r}, "
            f"retain={self.retain}, migrations={self.migrations})"
        )


class AdaptiveDetector(_AdaptiveBase):
    """Count-based resizable detector (see module docstring).

    Parameters
    ----------
    spec:
        The :class:`DetectorSpec` of the initial inner detector; must be
        a count-based algorithm.
    retain:
        Replay-window length in clicks; defaults to ``spec.window.size``
        (the window the sketch guarantees anyway).
    """

    def __init__(
        self,
        spec: DetectorSpec,
        *,
        retain: Optional[int] = None,
        _inner=None,
        _buffer: Optional[Iterable[int]] = None,
    ) -> None:
        if spec.algorithm in TIME_BASED_ALGORITHMS:
            raise ConfigurationError(
                f"{spec.algorithm} is time-based; use AdaptiveTimedDetector"
            )
        super().__init__(spec, retain=retain, _inner=_inner)
        self._buffer: Deque[int] = deque(_buffer or (), maxlen=self.retain)

    def _check_spec(self, new_spec: DetectorSpec) -> None:
        if new_spec.algorithm in TIME_BASED_ALGORITHMS:
            raise ConfigurationError(
                "cannot migrate a count-based adaptive detector to the "
                f"time-based algorithm {new_spec.algorithm!r}"
            )

    def _replay(self, fresh) -> None:
        if not self._buffer:
            return
        batch = getattr(fresh, "process_batch", None)
        if batch is not None:
            batch(np.fromiter(self._buffer, dtype=np.uint64))
        else:
            for identifier in self._buffer:
                fresh.process(identifier)

    def process(self, identifier: int) -> bool:
        verdict = self.inner.process(identifier)
        self._buffer.append(int(identifier))
        return verdict

    def process_batch(self, identifiers: np.ndarray) -> np.ndarray:
        verdicts = self.inner.process_batch(identifiers)
        tail = np.asarray(identifiers)[-self.retain :]
        self._buffer.extend(int(x) for x in tail)
        return verdicts

    def query(self, identifier: int) -> bool:
        return self.inner.query(identifier)


class AdaptiveTimedDetector(_AdaptiveBase):
    """Time-based resizable detector (see module docstring).

    Retains ``(identifier, timestamp)`` pairs and replays them through
    ``process_at`` / ``process_batch_at`` on migrate.  Deliberately does
    **not** define ``process`` so :func:`~repro.detection.is_timed`
    classifies it as timed.
    """

    def __init__(
        self,
        spec: DetectorSpec,
        *,
        retain: Optional[int] = None,
        _inner=None,
        _buffer: Optional[Iterable[Tuple[int, float]]] = None,
    ) -> None:
        if spec.algorithm not in TIME_BASED_ALGORITHMS:
            raise ConfigurationError(
                f"{spec.algorithm} is count-based; use AdaptiveDetector"
            )
        super().__init__(spec, retain=retain, _inner=_inner)
        self._buffer: Deque[Tuple[int, float]] = deque(
            _buffer or (), maxlen=self.retain
        )

    def _check_spec(self, new_spec: DetectorSpec) -> None:
        if new_spec.algorithm not in TIME_BASED_ALGORITHMS:
            raise ConfigurationError(
                "cannot migrate a time-based adaptive detector to the "
                f"count-based algorithm {new_spec.algorithm!r}"
            )

    def _replay(self, fresh) -> None:
        if not self._buffer:
            return
        batch = getattr(fresh, "process_batch_at", None)
        if batch is not None:
            ids = np.fromiter((i for i, _ in self._buffer), dtype=np.uint64)
            times = np.fromiter((t for _, t in self._buffer), dtype=np.float64)
            batch(ids, times)
        else:
            for identifier, timestamp in self._buffer:
                fresh.process_at(identifier, timestamp)

    def process_at(self, identifier: int, timestamp: float) -> bool:
        verdict = self.inner.process_at(identifier, timestamp)
        self._buffer.append((int(identifier), float(timestamp)))
        return verdict

    def process_batch_at(
        self, identifiers: np.ndarray, timestamps: np.ndarray
    ) -> np.ndarray:
        verdicts = self.inner.process_batch_at(identifiers, timestamps)
        ids = np.asarray(identifiers)[-self.retain :]
        times = np.asarray(timestamps)[-self.retain :]
        self._buffer.extend(
            (int(i), float(t)) for i, t in zip(ids, times)
        )
        return verdicts

    def query_at(self, identifier: int, timestamp: float) -> bool:
        return self.inner.query_at(identifier, timestamp)


def adaptive_detector(
    spec: DetectorSpec, *, retain: Optional[int] = None
):
    """Build the right adaptive wrapper for ``spec``'s time model."""
    if spec.algorithm in TIME_BASED_ALGORITHMS:
        return AdaptiveTimedDetector(spec, retain=retain)
    return AdaptiveDetector(spec, retain=retain)


# -- checkpointing ---------------------------------------------------


def _save_adaptive(detector: AdaptiveDetector) -> bytes:
    inner_blob = save_detector(detector.inner)
    ids = np.fromiter(detector._buffer, dtype=np.uint64)
    header = {
        "kind": "adaptive",
        "spec": spec_to_dict(detector._spec),
        "retain": detector.retain,
        "migrations": detector.migrations,
        "buffer_len": int(ids.size),
    }
    return pack_frame(header, ids.tobytes() + inner_blob)


def _load_adaptive(header: dict, payload: bytes) -> AdaptiveDetector:
    buffer_len = int(header["buffer_len"])
    split = buffer_len * 8
    ids = np.frombuffer(payload[:split], dtype=np.uint64)
    if ids.size != buffer_len:
        raise CheckpointError("adaptive checkpoint buffer truncated")
    inner = load_detector(payload[split:])
    spec = spec_from_dict(header["spec"])
    detector = AdaptiveDetector(
        spec,
        retain=int(header["retain"]),
        _inner=inner,
        _buffer=(int(x) for x in ids),
    )
    detector.migrations = int(header["migrations"])
    return detector


def _save_adaptive_timed(detector: AdaptiveTimedDetector) -> bytes:
    inner_blob = save_detector(detector.inner)
    ids = np.fromiter((i for i, _ in detector._buffer), dtype=np.uint64)
    times = np.fromiter((t for _, t in detector._buffer), dtype=np.float64)
    header = {
        "kind": "adaptive-timed",
        "spec": spec_to_dict(detector._spec),
        "retain": detector.retain,
        "migrations": detector.migrations,
        "buffer_len": int(ids.size),
    }
    return pack_frame(header, ids.tobytes() + times.tobytes() + inner_blob)


def _load_adaptive_timed(header: dict, payload: bytes) -> AdaptiveTimedDetector:
    buffer_len = int(header["buffer_len"])
    ids = np.frombuffer(payload[: buffer_len * 8], dtype=np.uint64)
    times = np.frombuffer(
        payload[buffer_len * 8 : buffer_len * 16], dtype=np.float64
    )
    if ids.size != buffer_len or times.size != buffer_len:
        raise CheckpointError("adaptive-timed checkpoint buffer truncated")
    inner = load_detector(payload[buffer_len * 16 :])
    spec = spec_from_dict(header["spec"])
    detector = AdaptiveTimedDetector(
        spec,
        retain=int(header["retain"]),
        _inner=inner,
        _buffer=((int(i), float(t)) for i, t in zip(ids, times)),
    )
    detector.migrations = int(header["migrations"])
    return detector


register_checkpoint_kind(
    "adaptive", AdaptiveDetector, _save_adaptive, _load_adaptive
)
register_checkpoint_kind(
    "adaptive-timed",
    AdaptiveTimedDetector,
    _save_adaptive_timed,
    _load_adaptive_timed,
)
