"""Age-partitioned sliding-window filters: the adaptive portfolio.

Two duplicate detectors built on *sliced* Bloom filters.  A sliced
filter is ``S = k + l`` equal bit slices; an element is reported a
duplicate exactly when some run of ``k`` consecutive slices (in age
order) all report a hit, and an insertion sets one bit in each of the
``k`` youngest slices:

* :class:`AgePartitionedBFDetector` — the Age-Partitioned Bloom Filter
  (Shtul et al., 2020).  Count-based: after every ``generation_size``
  insertions the oldest slice retires and a cleared slice becomes the
  youngest, so the filter always covers the last ``l * g`` insertions
  (zero false negatives in that window) and forgets anything older
  than ``(l + 1) * g``.
* :class:`TimeLimitedBFDetector` — the time-limited Bloom filter
  (Rodrigues et al., 2023).  The same slice machinery driven by the
  stream clock: slices retire on unit boundaries of a wall-clock
  window, so membership means "seen within the last ``duration``"
  under any arrival rate.

One hash function attaches to each *physical* slice row and stays with
it while the row ages through every logical position, which makes
retirement a single row-zeroing rather than a rebuild, and makes the
FP rate of the structure exactly the run-of-``k`` closed form in
:func:`repro.bloom.params.sliced_false_positive_rate` evaluated at the
measured per-slice fills — the live gauge and the formula agree by
construction (property-tested in ``tests/test_adaptive.py``).

Operation accounting (shared by scalar and batch paths, equal in
closed form): every processed element costs ``S`` hash evaluations and
``S`` word reads; every insertion costs ``k`` word writes; every slice
retirement costs ``words_per_slice`` word writes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..bloom.params import apbf_false_positive_rate, sliced_false_positive_rate
from ..errors import ConfigurationError, StreamError
from ..hashing import HashFamily, SplitMixFamily
from ..core.checkpoint import (
    CheckpointError,
    _family_spec,
    _rebuild_family,
    pack_frame,
    register_checkpoint_kind,
    save_detector,
)

__all__ = [
    "AgePartitionedBFDetector",
    "TimeLimitedBFDetector",
    "APBFPlan",
    "TLBFPlan",
    "plan_apbf_for_target",
    "plan_apbf_from_memory",
    "plan_tlbf_for_target",
    "plan_tlbf_from_memory",
]

#: First-writer value for slots nobody writes; larger than any row.
_NO_WRITER = np.iinfo(np.int64).max


def _run_of_k(match: "np.ndarray", num_required: int) -> "np.ndarray":
    """Rows holding ``num_required`` consecutive True columns.

    ``match`` is ``(n, S)`` in logical age order; the running-run
    column sweep replaces the ``(l + 1) * k`` AND windows with ``S``
    column ops.
    """
    n, num_slices = match.shape
    run = np.zeros(n, dtype=np.int32)
    dup = np.zeros(n, dtype=bool)
    for a in range(num_slices):
        run += 1
        run *= match[:, a]
        if a >= num_required - 1:
            dup |= run >= num_required
    return dup


class _SlicedFilter:
    """Shared machinery: slice storage, probes, inserts, retirement.

    Subclasses decide *when* slices retire (a generation counter for
    the APBF, the stream clock for the time-limited variant); this base
    owns the ring of physical rows, the hash family, the scalar and
    vectorized probe/insert paths, and the telemetry surface.
    """

    #: Upper bound on one vectorized run (bounds temp-array memory).
    _MAX_SEGMENT = 1 << 16

    def __init__(
        self,
        num_required: int,
        num_aged: int,
        slice_bits: int,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if num_required < 1:
            raise ConfigurationError(
                f"num_required must be >= 1, got {num_required}"
            )
        if num_aged < 1:
            raise ConfigurationError(f"num_aged must be >= 1, got {num_aged}")
        if slice_bits < 1:
            raise ConfigurationError(f"slice_bits must be >= 1, got {slice_bits}")
        self.num_required = int(num_required)
        self.num_aged = int(num_aged)
        self.num_slices = self.num_required + self.num_aged
        self.slice_bits = int(slice_bits)
        if family is None:
            family = SplitMixFamily(self.num_slices, slice_bits, seed)
        if family.num_hashes != self.num_slices:
            raise ConfigurationError(
                f"hash family size {family.num_hashes} != num_slices "
                f"{self.num_slices} (one hash per physical slice)"
            )
        if family.num_buckets != slice_bits:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != slice_bits "
                f"{slice_bits}"
            )
        self.family = family
        self.words_per_slice = -(-self.slice_bits // 64)
        self._slices = np.zeros(
            (self.num_slices, self.words_per_slice), dtype=np.uint64
        )
        #: Physical row of the youngest logical slice; logical age ``a``
        #: lives at physical row ``(base + a) % S``.
        self._base = 0
        #: Slice retirements so far (telemetry).
        self.shifts = 0
        self.counter = OperationCounter()
        #: Duplicate verdicts issued so far (telemetry; kept off the
        #: :class:`OperationCounter` to preserve its equality semantics).
        self.duplicates = 0

    # ------------------------------------------------------------------
    # Slice primitives
    # ------------------------------------------------------------------

    def _shift(self) -> None:
        """Retire the oldest slice: zero its row, make it the youngest."""
        row = (self._base + self.num_slices - 1) % self.num_slices
        self._slices[row, :] = 0
        self._base = row
        self.shifts += 1
        self.counter.word_writes += self.words_per_slice

    def _match_scalar(self, indices: Sequence[int]) -> bool:
        """Run-of-``k`` membership; ``indices`` in physical slice order."""
        words = self._slices
        num_slices = self.num_slices
        num_required = self.num_required
        base = self._base
        run = 0
        for age in range(num_slices):
            row = (base + age) % num_slices
            index = indices[row]
            if (int(words[row, index >> 6]) >> (index & 63)) & 1:
                run += 1
                if run >= num_required:
                    return True
            else:
                run = 0
        return False

    def _insert_scalar(self, indices: Sequence[int]) -> None:
        """Set one bit in each of the ``k`` youngest slices."""
        words = self._slices
        num_slices = self.num_slices
        base = self._base
        one = np.uint64(1)
        for age in range(self.num_required):
            row = (base + age) % num_slices
            index = indices[row]
            words[row, index >> 6] |= one << np.uint64(index & 63)

    # ------------------------------------------------------------------
    # Vectorized run (no retirement inside)
    # ------------------------------------------------------------------

    def _probe_run(self, idx: "np.ndarray"):
        """Resolve a retirement-free run of arrivals; mutates nothing.

        ``idx`` is ``(n, S)`` int64 hash indices in *physical* slice
        order (column ``p`` = the hash attached to physical row ``p``).
        Returns ``(duplicate, inserters, young)`` where ``young`` is
        the ``(n, k)`` young-slice index matrix in logical order, ready
        for :meth:`_apply_inserts`.

        Intra-run interactions are resolved exactly, mirroring
        :func:`repro.core.batch.resolve_inserts` but with one
        first-writer table *per young slice* (inserts touch young
        slices only, and each logical slice has its own hash): a row
        flips to duplicate when every missing slice of some ``k``-run
        is covered by an earlier actual inserter.
        """
        n, num_slices = idx.shape
        num_required = self.num_required
        order = (self._base + np.arange(num_slices, dtype=np.int64)) % num_slices
        words = self._slices
        match0 = np.empty((n, num_slices), dtype=bool)
        for age in range(num_slices):
            row = int(order[age])
            col = idx[:, row]
            bits = words[row][col >> 6] >> (col & 63).astype(np.uint64)
            match0[:, age] = bits & np.uint64(1)
        young = idx[:, order[:num_required]]

        duplicate = _run_of_k(match0, num_required)
        inserters = ~duplicate
        if not inserters.any() or n == 1:
            return duplicate, inserters, young

        rows = np.arange(n, dtype=np.int64)
        m = self.slice_bits
        # Optimistic pre-pass: assume every non-duplicate inserts.
        first_writer = np.full((num_required, m), _NO_WRITER, dtype=np.int64)
        vals = np.where(inserters, rows, _NO_WRITER)
        for age in range(num_required):
            np.minimum.at(first_writer[age], young[:, age], vals)
        potential = match0.copy()
        for age in range(num_required):
            potential[:, age] |= first_writer[age][young[:, age]] < rows
        maybe = _run_of_k(potential, num_required)
        maybe &= inserters
        if not maybe.any():
            # Nobody flips: every candidate inserts.
            return duplicate, inserters, young

        # Definite inserters' writes hold under every resolution.
        certain = np.full((num_required, m), _NO_WRITER, dtype=np.int64)
        definite = inserters & ~maybe
        if definite.any():
            vals = np.where(definite, rows, _NO_WRITER)
            for age in range(num_required):
                np.minimum.at(certain[age], young[:, age], vals)
        walk_rows = np.nonzero(maybe)[0]
        covered = match0[walk_rows].copy()
        for age in range(num_required):
            covered[:, age] |= certain[age][young[walk_rows, age]] < walk_rows
        # Rows duplicate under pre-run state + definite writers alone
        # flip under every resolution, without walking (and, flipping,
        # write nothing later rows could need).
        sure = _run_of_k(covered, num_required)
        if sure.any():
            sure_rows = walk_rows[sure]
            duplicate[sure_rows] = True
            inserters[sure_rows] = False
            walk_rows = walk_rows[~sure]

        if walk_rows.size:
            written = [bytearray(m) for _ in range(num_required)]
            match_list = match0[walk_rows].tolist()
            young_list = young[walk_rows].tolist()
            for i, row in enumerate(walk_rows.tolist()):
                match_row = match_list[i]
                young_row = young_list[i]
                run = 0
                dup = False
                for age in range(num_slices):
                    hit = match_row[age]
                    if not hit and age < num_required:
                        slot = young_row[age]
                        if int(certain[age][slot]) < row or written[age][slot]:
                            hit = True
                    if hit:
                        run += 1
                        if run >= num_required:
                            dup = True
                            break
                    else:
                        run = 0
                if dup:
                    duplicate[row] = True
                    inserters[row] = False
                else:
                    for age in range(num_required):
                        written[age][young_row[age]] = 1
        return duplicate, inserters, young

    def _apply_inserts(self, young: "np.ndarray") -> None:
        """Set young-slice bits for inserting rows (``(j, k)`` indices)."""
        words = self._slices
        num_slices = self.num_slices
        base = self._base
        one = np.uint64(1)
        for age in range(self.num_required):
            row = (base + age) % num_slices
            col = young[:, age]
            np.bitwise_or.at(
                words[row], col >> 6, one << (col & 63).astype(np.uint64)
            )

    def _tally_run(self, n: int, num_inserts: int, duplicate: "np.ndarray") -> None:
        self.counter.elements += n
        self.counter.word_reads += self.num_slices * n
        self.counter.word_writes += self.num_required * int(num_inserts)
        self.duplicates += int(np.count_nonzero(duplicate))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_hashes(self) -> int:
        """Hash functions evaluated per element (one per slice)."""
        return self.family.num_hashes

    @property
    def memory_bits(self) -> int:
        """Physical footprint after word packing."""
        return self.num_slices * self.words_per_slice * 64

    @property
    def logical_memory_bits(self) -> int:
        """``(k + l) * m`` without word padding."""
        return self.num_slices * self.slice_bits

    @property
    def observed_duplicate_rate(self) -> float:
        """Fraction of processed clicks flagged duplicate so far."""
        return self.duplicates / self.counter.elements if self.counter.elements else 0.0

    def slice_fills(self) -> List[float]:
        """Per-slice fill fractions in logical age order (youngest first)."""
        m = self.slice_bits
        num_slices = self.num_slices
        fills = []
        for age in range(num_slices):
            row = (self._base + age) % num_slices
            pop = int(np.unpackbits(self._slices[row].view(np.uint8)).sum())
            fills.append(pop / m)
        return fills

    def estimated_fp_rate(self) -> float:
        """Live FP estimate: the exact run-of-``k`` closed form at the
        measured per-slice fills (same function the a-priori bounds
        use, so gauge and formula agree exactly)."""
        return sliced_false_positive_rate(self.slice_fills(), self.num_required)

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; delegates
        to the checkpoint registry (:func:`repro.core.save_detector`).
        """
        return save_detector(self)

    def _telemetry_common(self) -> dict:
        counter = self.counter
        fills = self.slice_fills()
        return {
            "gauges": {
                "estimated_fp_rate": sliced_false_positive_rate(
                    fills, self.num_required
                ),
                "observed_duplicate_rate": self.observed_duplicate_rate,
                "base_slice": self._base,
            },
            "counters": {
                "elements": counter.elements,
                "duplicates": self.duplicates,
                "hash_evaluations": counter.hash_evaluations,
                "word_reads": counter.word_reads,
                "word_writes": counter.word_writes,
                "shifts": self.shifts,
            },
            "fills": {
                f"slice{age}": fill for age, fill in enumerate(fills)
            },
        }


class AgePartitionedBFDetector(_SlicedFilter):
    """Age-Partitioned Bloom Filter over a count-based sliding window.

    Parameters
    ----------
    num_required:
        ``k``, the young slices every insertion writes and the run
        length a duplicate verdict requires.
    num_aged:
        ``l``, the aged slices; the guaranteed window is
        ``l * generation_size`` insertions.
    slice_bits:
        ``m``, bits per slice.
    generation_size:
        ``g``, insertions per slice retirement.
    seed / family:
        Hash-family configuration (a pre-built family overrides
        ``seed``; it must provide ``k + l`` hashes over ``m`` bits).
    """

    def __init__(
        self,
        num_required: int,
        num_aged: int,
        slice_bits: int,
        generation_size: int,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        super().__init__(num_required, num_aged, slice_bits, seed, family)
        if generation_size < 1:
            raise ConfigurationError(
                f"generation_size must be >= 1, got {generation_size}"
            )
        self.generation_size = int(generation_size)
        self._generation_count = 0

    # -- stream interface ---------------------------------------------

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate (not recorded)."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices(self.family.indices(identifier))

    def process_indices(self, indices: Sequence[int]) -> bool:
        """Observe the next click given pre-computed hash indices."""
        self.counter.elements += 1
        self.counter.word_reads += self.num_slices
        if self._match_scalar(indices):
            self.duplicates += 1
            return True
        self._insert_scalar(indices)
        self.counter.word_writes += self.num_required
        self._generation_count += 1
        if self._generation_count >= self.generation_size:
            self._shift()
            self._generation_count = 0
        return False

    def query(self, identifier: int) -> bool:
        """Side-effect-free duplicate check against the current slices."""
        return self.query_indices(self.family.indices(identifier))

    def query_indices(self, indices: Sequence[int]) -> bool:
        return self._match_scalar(indices)

    # -- batch interface ----------------------------------------------

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Observe a batch of clicks; bit-identical to a scalar loop."""
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        self.counter.hash_evaluations += self.family.num_hashes * int(
            identifiers.shape[0]
        )
        return self.process_indices_batch(self.family.indices_batch(identifiers))

    def process_indices_batch(self, indices: "np.ndarray") -> "np.ndarray":
        """Batch variant of :meth:`process_indices` (``(n, S)`` indices).

        The chunk is resolved assuming no retirement, then applied up
        to the generation boundary: verdicts of rows at or before the
        boundary depend only on earlier rows, so the prefix is exact;
        the suffix re-resolves against the shifted slices.
        """
        idx = np.asarray(indices)
        if idx.ndim != 2:
            raise ValueError(f"indices must be (n, S), got {idx.ndim}-D")
        idx = idx.astype(np.int64, copy=False)
        n = idx.shape[0]
        out = np.empty(n, dtype=bool)
        start = 0
        while start < n:
            stop = min(n, start + self._MAX_SEGMENT)
            duplicate, inserters, young = self._probe_run(idx[start:stop])
            capacity = self.generation_size - self._generation_count
            ins = np.nonzero(inserters)[0]
            if ins.size < capacity:
                if ins.size:
                    self._apply_inserts(young[ins])
                self._tally_run(stop - start, ins.size, duplicate)
                self._generation_count += int(ins.size)
                out[start:stop] = duplicate
                start = stop
                continue
            # The capacity-th insert retires a slice; everything after
            # it must re-probe against the shifted ring.
            take = int(ins[capacity - 1]) + 1
            self._apply_inserts(young[ins[:capacity]])
            self._tally_run(take, capacity, duplicate[:take])
            out[start : start + take] = duplicate[:take]
            self._shift()
            self._generation_count = 0
            start += take
        return out

    # -- introspection -------------------------------------------------

    @property
    def guaranteed_window(self) -> int:
        """Insertions always remembered: ``l * generation_size``."""
        return self.num_aged * self.generation_size

    def theoretical_fp_bound(self) -> float:
        """Worst-case (end-of-generation) design FP rate."""
        return apbf_false_positive_rate(
            self.num_required, self.num_aged, self.slice_bits, self.generation_size
        )

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector."""
        from ..detection.detector import APBFParams, DetectorSpec, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; "
                f"this detector uses {type(self.family).__name__}"
            )
        return DetectorSpec(
            algorithm="apbf",
            window=WindowSpec("sliding", self.guaranteed_window),
            params=APBFParams(
                num_required=self.num_required,
                num_aged=self.num_aged,
                slice_bits=self.slice_bits,
                generation_size=self.generation_size,
            ),
            seed=self.family.seed,
        )

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        snapshot = self._telemetry_common()
        snapshot["gauges"]["generation_fill"] = (
            self._generation_count / self.generation_size
        )
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AgePartitionedBFDetector(k={self.num_required}, l={self.num_aged}, "
            f"m={self.slice_bits}, g={self.generation_size})"
        )


class TimeLimitedBFDetector(_SlicedFilter):
    """Time-limited Bloom filter over a wall-clock sliding window.

    Parameters
    ----------
    duration:
        Window length ``T`` in stream time units; an inserted element
        stays detectable for at least ``duration``.
    num_required / num_aged / slice_bits / seed / family:
        As in :class:`AgePartitionedBFDetector`; the expiry granularity
        is ``duration / num_aged`` (one slice retires per elapsed
        unit).
    """

    def __init__(
        self,
        duration: float,
        num_required: int,
        num_aged: int,
        slice_bits: int,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        super().__init__(num_required, num_aged, slice_bits, seed, family)
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.duration = float(duration)
        self.unit_duration = self.duration / self.num_aged
        self._last_unit: Optional[int] = None
        self._last_time: Optional[float] = None

    # -- clock handling ------------------------------------------------

    def _advance_clock(self, timestamp: float) -> None:
        """Retire one slice per elapsed time unit (at most ``S``)."""
        if self._last_time is not None and timestamp < self._last_time:
            raise StreamError(
                f"timestamp regressed: {timestamp} after {self._last_time}"
            )
        self._last_time = timestamp
        unit = int(timestamp // self.unit_duration)
        if self._last_unit is None:
            self._last_unit = unit
            return
        elapsed = unit - self._last_unit
        self._last_unit = unit
        if elapsed <= 0:
            return
        for _ in range(min(elapsed, self.num_slices)):
            self._shift()

    # -- stream interface ---------------------------------------------

    def process_at(self, identifier: int, timestamp: float) -> bool:
        """Observe a click at ``timestamp``; True means duplicate."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices_at(self.family.indices(identifier), timestamp)

    def process_indices_at(self, indices: Sequence[int], timestamp: float) -> bool:
        self._advance_clock(timestamp)
        self.counter.elements += 1
        self.counter.word_reads += self.num_slices
        if self._match_scalar(indices):
            self.duplicates += 1
            return True
        self._insert_scalar(indices)
        self.counter.word_writes += self.num_required
        return False

    def query_at(self, identifier: int, timestamp: float) -> bool:
        """Duplicate check at ``timestamp`` without recording the element.

        Advances the slice clock (time passes regardless) but does not
        insert.
        """
        indices = self.family.indices(identifier)
        self._advance_clock(timestamp)
        return self._match_scalar(indices)

    # -- batch interface ----------------------------------------------

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        """Observe a batch of clicks with timestamps; bit-identical to a
        scalar :meth:`process_at` loop.

        Arrivals sharing a time unit form one vectorized run (no slice
        retires inside a unit); unit boundaries advance the clock
        scalar-style.  A regressing timestamp raises
        :class:`~repro.errors.StreamError` exactly as the scalar loop
        would: the elements before it are fully processed, the
        regressing element is not.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        if timestamps.shape != identifiers.shape:
            raise ValueError(
                f"timestamps shape {timestamps.shape} != identifiers "
                f"shape {identifiers.shape}"
            )
        n = identifiers.shape[0]
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        previous = np.empty(n, dtype=np.float64)
        previous[0] = self._last_time if self._last_time is not None else -np.inf
        previous[1:] = timestamps[:-1]
        regressions = np.nonzero(timestamps < previous)[0]
        limit = int(regressions[0]) if regressions.size else n
        # The scalar loop hashes the regressing element before its
        # _advance_clock raises, so it is included in the tally.
        self.counter.hash_evaluations += self.family.num_hashes * min(limit + 1, n)
        if limit:
            idx = self.family.indices_batch(identifiers[:limit]).astype(
                np.int64, copy=False
            )
            units = np.floor_divide(timestamps[:limit], self.unit_duration).astype(
                np.int64
            )
            start = 0
            while start < limit:
                self._advance_clock(float(timestamps[start]))
                end = int(np.searchsorted(units, units[start], side="right"))
                end = min(end, start + self._MAX_SEGMENT)
                duplicate, inserters, young = self._probe_run(idx[start:end])
                ins = np.nonzero(inserters)[0]
                if ins.size:
                    self._apply_inserts(young[ins])
                self._tally_run(end - start, ins.size, duplicate)
                out[start:end] = duplicate
                self._last_time = float(timestamps[end - 1])
                start = end
        if limit < n:
            raise StreamError(
                f"timestamp regressed: {float(timestamps[limit])} "
                f"after {float(previous[limit])}"
            )
        return out

    # -- introspection -------------------------------------------------

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector."""
        from ..detection.detector import DetectorSpec, TLBFParams, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; "
                f"this detector uses {type(self.family).__name__}"
            )
        return DetectorSpec(
            algorithm="time-limited-bf",
            window=WindowSpec("sliding", max(1, self.slice_bits)),
            params=TLBFParams(
                num_required=self.num_required,
                num_aged=self.num_aged,
                slice_bits=self.slice_bits,
            ),
            duration=self.duration,
            resolution=self.num_aged,
            seed=self.family.seed,
        )

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        snapshot = self._telemetry_common()
        snapshot["gauges"]["time_unit"] = (
            self._last_unit if self._last_unit is not None else -1
        )
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeLimitedBFDetector(T={self.duration}, k={self.num_required}, "
            f"l={self.num_aged}, m={self.slice_bits})"
        )


# ----------------------------------------------------------------------
# Sizing planners (consumed by repro.detection.detector)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class APBFPlan:
    num_required: int
    num_aged: int
    slice_bits: int
    generation_size: int


@dataclass(frozen=True)
class TLBFPlan:
    num_required: int
    num_aged: int
    slice_bits: int


def plan_apbf_for_target(window_size: int, target_fp: float) -> APBFPlan:
    """Smallest APBF design meeting ``target_fp`` over ``window_size``.

    Follows the Shtul et al. recipe (``l = 2 * ceil(log2(1/f))``, then
    ``k`` against the ``l + 1`` run starts), then grows the slice until
    the exact design bound satisfies the target, so the returned plan
    is sufficient, not merely approximately so.
    """
    if window_size < 1:
        raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
    if not 0.0 < target_fp < 1.0:
        raise ConfigurationError(f"target_fp must be in (0, 1), got {target_fp}")
    base_k = max(1, math.ceil(math.log2(1.0 / target_fp)))
    num_aged = 2 * base_k
    num_required = max(1, math.ceil(math.log2((num_aged + 1) / target_fp)))
    generation = max(1, window_size // num_aged)
    slice_bits = max(8, round(num_required * generation / math.log(2)))
    while (
        apbf_false_positive_rate(num_required, num_aged, slice_bits, generation)
        > target_fp
    ):
        slice_bits = math.ceil(slice_bits * 1.05) + 1
    return APBFPlan(num_required, num_aged, slice_bits, generation)


def plan_apbf_from_memory(
    window_size: int, memory_bits: int, num_required: Optional[int] = None
) -> APBFPlan:
    """Best APBF design inside a total memory budget of ``memory_bits``."""
    if window_size < 1:
        raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
    if memory_bits < 1:
        raise ConfigurationError(f"memory_bits must be >= 1, got {memory_bits}")
    if num_required is not None:
        num_aged = 2 * num_required
        generation = max(1, window_size // num_aged)
        slice_bits = max(1, memory_bits // (num_required + num_aged))
        return APBFPlan(num_required, num_aged, slice_bits, generation)
    best = None
    for k in range(2, 21):
        num_aged = 2 * k
        generation = max(1, window_size // num_aged)
        slice_bits = max(1, memory_bits // (k + num_aged))
        rate = apbf_false_positive_rate(k, num_aged, slice_bits, generation)
        if best is None or rate < best[0]:
            best = (rate, k, num_aged, slice_bits, generation)
    _, k, num_aged, slice_bits, generation = best
    return APBFPlan(k, num_aged, slice_bits, generation)


def plan_tlbf_for_target(
    window_size: int, num_aged: int, target_fp: float
) -> TLBFPlan:
    """Time-limited-BF design meeting ``target_fp`` at the expected load.

    ``window_size`` is the expected arrivals per window; the per-unit
    load estimate ``window_size / num_aged`` plays the APBF generation
    role in the sizing bound (the realized FP rate is load-dependent,
    which is what the live gauge plus the adaptive controller manage).
    """
    if window_size < 1:
        raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
    if num_aged < 1:
        raise ConfigurationError(f"num_aged must be >= 1, got {num_aged}")
    if not 0.0 < target_fp < 1.0:
        raise ConfigurationError(f"target_fp must be in (0, 1), got {target_fp}")
    num_required = max(1, math.ceil(math.log2((num_aged + 1) / target_fp)))
    generation = max(1, round(window_size / num_aged))
    slice_bits = max(8, round(num_required * generation / math.log(2)))
    while (
        apbf_false_positive_rate(num_required, num_aged, slice_bits, generation)
        > target_fp
    ):
        slice_bits = math.ceil(slice_bits * 1.05) + 1
    return TLBFPlan(num_required, num_aged, slice_bits)


def plan_tlbf_from_memory(
    window_size: int,
    num_aged: int,
    memory_bits: int,
    num_required: Optional[int] = None,
) -> TLBFPlan:
    """Best time-limited-BF design inside a total memory budget."""
    if window_size < 1:
        raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
    if num_aged < 1:
        raise ConfigurationError(f"num_aged must be >= 1, got {num_aged}")
    if memory_bits < 1:
        raise ConfigurationError(f"memory_bits must be >= 1, got {memory_bits}")
    if num_required is not None:
        slice_bits = max(1, memory_bits // (num_required + num_aged))
        return TLBFPlan(num_required, num_aged, slice_bits)
    generation = max(1, round(window_size / num_aged))
    best = None
    for k in range(2, 21):
        slice_bits = max(1, memory_bits // (k + num_aged))
        rate = apbf_false_positive_rate(k, num_aged, slice_bits, generation)
        if best is None or rate < best[0]:
            best = (rate, k, slice_bits)
    _, k, slice_bits = best
    return TLBFPlan(k, num_aged, slice_bits)


# ----------------------------------------------------------------------
# Checkpoint kinds
# ----------------------------------------------------------------------

def _save_apbf(detector: AgePartitionedBFDetector) -> bytes:
    header = {
        "kind": "apbf",
        "num_required": detector.num_required,
        "num_aged": detector.num_aged,
        "slice_bits": detector.slice_bits,
        "generation_size": detector.generation_size,
        "family": _family_spec(detector.family),
        "base": detector._base,
        "generation_count": detector._generation_count,
        "shifts": detector.shifts,
        "duplicates": detector.duplicates,
    }
    return pack_frame(header, detector._slices.tobytes())


def _load_apbf(header, payload) -> AgePartitionedBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = AgePartitionedBFDetector(
            header["num_required"],
            header["num_aged"],
            header["slice_bits"],
            header["generation_size"],
            family=family,
        )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        if words.size != detector._slices.size:
            raise CheckpointError("APBF payload size does not match configuration")
        detector._slices = words.reshape(detector._slices.shape)
        detector._base = int(header["base"])
        detector._generation_count = int(header["generation_count"])
        detector.shifts = int(header.get("shifts", 0))
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(f"missing APBF checkpoint field: {error}") from error
    return detector


def _save_tlbf(detector: TimeLimitedBFDetector) -> bytes:
    header = {
        "kind": "time-limited-bf",
        "duration": detector.duration,
        "num_required": detector.num_required,
        "num_aged": detector.num_aged,
        "slice_bits": detector.slice_bits,
        "family": _family_spec(detector.family),
        "base": detector._base,
        "last_unit": detector._last_unit,
        "last_time": detector._last_time,
        "shifts": detector.shifts,
        "duplicates": detector.duplicates,
    }
    return pack_frame(header, detector._slices.tobytes())


def _load_tlbf(header, payload) -> TimeLimitedBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TimeLimitedBFDetector(
            header["duration"],
            header["num_required"],
            header["num_aged"],
            header["slice_bits"],
            family=family,
        )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        if words.size != detector._slices.size:
            raise CheckpointError(
                "time-limited-BF payload size does not match configuration"
            )
        detector._slices = words.reshape(detector._slices.shape)
        detector._base = int(header["base"])
        detector._last_unit = header["last_unit"]
        detector._last_time = header["last_time"]
        detector.shifts = int(header.get("shifts", 0))
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(
            f"missing time-limited-BF checkpoint field: {error}"
        ) from error
    return detector


register_checkpoint_kind(
    "apbf", AgePartitionedBFDetector, _save_apbf, _load_apbf
)
register_checkpoint_kind(
    "time-limited-bf", TimeLimitedBFDetector, _save_tlbf, _load_tlbf
)
