"""Adaptive filter portfolio and the self-tuning resize controller.

* :mod:`repro.adaptive.filters` — the Age-Partitioned Bloom Filter and
  the time-limited Bloom filter, sliding-window duplicate detectors
  with tighter FP-per-bit than the paper's GBF/TBF designs.
* :mod:`repro.adaptive.lifecycle` — resizable wrappers implementing the
  :class:`~repro.detection.api.DetectorLifecycle` protocol with a
  bounded replay window, so ``migrate(new_spec)`` loses no state it
  should keep.
* :mod:`repro.adaptive.controller` — the closed loop: watch the live
  estimated-FP gauges, grow on sustained bound breach, shrink on
  sustained underutilization, with hysteresis, cooldown, and a bounded
  resize-event journal.
"""

from .filters import (
    AgePartitionedBFDetector,
    APBFPlan,
    TimeLimitedBFDetector,
    TLBFPlan,
    plan_apbf_for_target,
    plan_apbf_from_memory,
    plan_tlbf_for_target,
    plan_tlbf_from_memory,
)
from .lifecycle import (
    AdaptiveDetector,
    AdaptiveTimedDetector,
    adaptive_detector,
)
from .controller import AdaptiveController, ControllerConfig, ResizeEvent, scaled_spec

__all__ = [
    "AgePartitionedBFDetector",
    "TimeLimitedBFDetector",
    "APBFPlan",
    "TLBFPlan",
    "plan_apbf_for_target",
    "plan_apbf_from_memory",
    "plan_tlbf_for_target",
    "plan_tlbf_from_memory",
    "AdaptiveDetector",
    "AdaptiveTimedDetector",
    "adaptive_detector",
    "AdaptiveController",
    "ControllerConfig",
    "ResizeEvent",
    "scaled_spec",
]
