"""Self-tuning resize controller: watch the FP envelope, act on it.

The paper sizes its sketches offline from an assumed arrival rate.
Production traffic does not read the paper: a rate step fills the
filter past its design point and the live estimated FP rate climbs
through the a-priori bound, silently refunding fraudulent clicks.  The
opposite drift wastes memory.

:class:`AdaptiveController` closes the loop.  Each :meth:`observe` call
samples the wrapped detector's live ``estimated_fp_rate`` against the
configuration's :func:`~repro.telemetry.instruments.theoretical_fp_bound`
and keeps two streak counters:

* **breach** — ``estimate > bound * breach_factor`` for
  ``breach_streak`` consecutive samples triggers a *grow* resize
  (memory scaled by ``grow_factor``);
* **slack** — ``estimate < bound * shrink_fraction`` for
  ``shrink_streak`` consecutive samples triggers a *shrink* resize
  (memory scaled by ``shrink_factor``).

Streaks are the hysteresis: one noisy sample never resizes, and the
asymmetric streak lengths (grow fast, shrink slowly) bias toward
correctness over parsimony.  After any resize a ``cooldown`` of samples
must pass before the next, and hard ``min/max_memory_bits`` rails stop
runaway oscillation.  Every resize runs through the detector's
:class:`~repro.detection.DetectorLifecycle` verbs —
``quiesce -> migrate(new_spec) -> resume`` — so no click is lost and no
caller's reference goes stale, and is recorded as a
:class:`ResizeEvent` in a bounded journal plus ``repro_adaptive_*``
metrics when a registry is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..detection.detector import (
    APBFParams,
    DetectorSpec,
    GBFParams,
    TBFParams,
    TLBFParams,
)
from ..errors import ConfigurationError

__all__ = [
    "AdaptiveController",
    "ControllerConfig",
    "ResizeEvent",
    "scaled_spec",
]


def scaled_spec(spec: DetectorSpec, factor: float) -> DetectorSpec:
    """``spec`` with its memory scaled by ``factor``.

    Exact ``params`` have their size field scaled (hash counts and
    window shape are preserved); a ``memory_bits`` sizing is scaled
    directly; a ``target_fp`` sizing has no memory knob to scale —
    call ``detector.spec()`` first, which always emits exact params.
    """
    if factor <= 0:
        raise ConfigurationError(f"scale factor must be > 0, got {factor}")
    params = spec.params
    if params is not None:
        if type(params) is GBFParams:
            scaled = replace(
                params,
                bits_per_filter=max(8, round(params.bits_per_filter * factor)),
            )
        elif type(params) is TBFParams:
            scaled = replace(
                params, num_entries=max(8, round(params.num_entries * factor))
            )
        elif type(params) is APBFParams:
            scaled = replace(
                params, slice_bits=max(8, round(params.slice_bits * factor))
            )
        elif type(params) is TLBFParams:
            scaled = replace(
                params, slice_bits=max(8, round(params.slice_bits * factor))
            )
        else:  # pragma: no cover - PARAMS_TYPES is closed
            raise ConfigurationError(
                f"cannot scale params of type {type(params).__name__}"
            )
        return replace(spec, params=scaled)
    if spec.memory_bits is not None:
        return replace(
            spec, memory_bits=max(64, round(spec.memory_bits * factor))
        )
    raise ConfigurationError(
        "spec sized by target_fp has no memory knob to scale; use "
        "detector.spec(), which emits exact params"
    )


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs for :class:`AdaptiveController` (see module docstring).

    ``target_fp`` overrides the theoretical bound as the comparison
    baseline — required for detectors (time-based sketches) whose
    per-window load is unknown a priori, so no bound is derivable.
    """

    breach_factor: float = 1.0
    breach_streak: int = 3
    shrink_fraction: float = 0.1
    shrink_streak: int = 24
    cooldown: int = 8
    grow_factor: float = 2.0
    shrink_factor: float = 0.5
    min_memory_bits: int = 1 << 10
    max_memory_bits: int = 1 << 28
    journal_limit: int = 64
    target_fp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.breach_streak < 1 or self.shrink_streak < 1:
            raise ConfigurationError("streak lengths must be >= 1")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be >= 0")
        if not (0 < self.shrink_factor < 1 < self.grow_factor):
            raise ConfigurationError(
                "need shrink_factor < 1 < grow_factor, got "
                f"{self.shrink_factor} / {self.grow_factor}"
            )
        if not 0 <= self.shrink_fraction < self.breach_factor:
            raise ConfigurationError(
                "need shrink_fraction < breach_factor (hysteresis band), "
                f"got {self.shrink_fraction} / {self.breach_factor}"
            )


@dataclass(frozen=True)
class ResizeEvent:
    """One completed resize, as journaled by the controller."""

    direction: str  # "grow" | "shrink"
    sample: int  # observe() count at which the resize fired
    estimated_fp: float
    bound: float
    old_spec: DetectorSpec
    new_spec: DetectorSpec
    old_memory_bits: int
    new_memory_bits: int


class AdaptiveController:
    """Drives resizes on one adaptive detector (see module docstring).

    Parameters
    ----------
    detector:
        An :class:`~repro.adaptive.AdaptiveDetector` (or anything with
        ``spec() / quiesce / migrate / resume``, ``memory_bits``, and an
        ``estimated_fp_rate()``).
    config:
        A :class:`ControllerConfig`; defaults are conservative.
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`;
        when given, publishes ``repro_adaptive_*`` metrics.
    """

    def __init__(
        self,
        detector,
        config: Optional[ControllerConfig] = None,
        *,
        registry=None,
    ) -> None:
        self.detector = detector
        self.config = config or ControllerConfig()
        self.samples = 0
        self.breach_run = 0
        self.slack_run = 0
        self.breach_samples = 0
        self._since_resize = self.config.cooldown  # first resize unfenced
        self.journal: List[ResizeEvent] = []
        self._metrics = None
        if registry is not None:
            self._metrics = {
                "resizes": registry.counter(
                    "repro_adaptive_resizes_total",
                    "Controller-driven detector resizes",
                    labels=("direction",),
                ),
                "breach_samples": registry.counter(
                    "repro_adaptive_breach_samples_total",
                    "Samples with estimated FP above bound * breach_factor",
                ),
                "breach_run": registry.gauge(
                    "repro_adaptive_breach_run",
                    "Current consecutive-breach sample count",
                ),
                "memory_bits": registry.gauge(
                    "repro_adaptive_memory_bits",
                    "Physical memory of the adaptive detector",
                ),
                "bits_per_click": registry.gauge(
                    "repro_adaptive_bits_per_click",
                    "Memory bits per click processed since construction",
                ),
            }

    # -- readings ----------------------------------------------------

    def bound(self) -> Optional[float]:
        """The FP baseline: config override, else the a-priori bound."""
        if self.config.target_fp is not None:
            return self.config.target_fp
        bound_fn = getattr(self.detector, "theoretical_fp_bound", None)
        if bound_fn is not None:
            return bound_fn()
        from ..telemetry.instruments import theoretical_fp_bound

        return theoretical_fp_bound(self.detector)

    def estimate(self) -> Optional[float]:
        estimate_fn = getattr(self.detector, "estimated_fp_rate", None)
        if estimate_fn is not None:
            return estimate_fn()
        snapshot_fn = getattr(self.detector, "telemetry_snapshot", None)
        if snapshot_fn is None:
            return None
        return snapshot_fn().get("gauges", {}).get("estimated_fp_rate")

    # -- the control loop --------------------------------------------

    def observe(self) -> Optional[ResizeEvent]:
        """Take one sample; resize and return the event if one fired."""
        self.samples += 1
        self._since_resize += 1
        estimate = self.estimate()
        bound = self.bound()
        metrics = self._metrics
        if metrics is not None:
            metrics["memory_bits"].set(self.detector.memory_bits)
            elements = (
                self.detector.telemetry_snapshot()
                .get("counters", {})
                .get("elements", 0)
            )
            if elements:
                metrics["bits_per_click"].set(
                    self.detector.memory_bits / elements
                )
        if estimate is None or bound is None:
            return None

        config = self.config
        if estimate > bound * config.breach_factor:
            self.breach_run += 1
            self.slack_run = 0
            self.breach_samples += 1
            if metrics is not None:
                metrics["breach_samples"].inc()
        elif estimate < bound * config.shrink_fraction:
            self.slack_run += 1
            self.breach_run = 0
        else:
            self.breach_run = 0
            self.slack_run = 0
        if metrics is not None:
            metrics["breach_run"].set(self.breach_run)

        if self._since_resize < config.cooldown:
            return None
        if self.breach_run >= config.breach_streak:
            return self._resize("grow", estimate, bound)
        if self.slack_run >= config.shrink_streak:
            return self._resize("shrink", estimate, bound)
        return None

    def _resize(
        self, direction: str, estimate: float, bound: float
    ) -> Optional[ResizeEvent]:
        config = self.config
        factor = (
            config.grow_factor if direction == "grow" else config.shrink_factor
        )
        old_bits = self.detector.memory_bits
        projected = old_bits * factor
        if direction == "grow" and projected > config.max_memory_bits:
            self._back_off()
            return None
        if direction == "shrink" and projected < config.min_memory_bits:
            self._back_off()
            return None
        old_spec = self.detector.spec()
        new_spec = scaled_spec(old_spec, factor)

        self.detector.quiesce()
        try:
            self.detector.migrate(new_spec)
        finally:
            self.detector.resume()

        event = ResizeEvent(
            direction=direction,
            sample=self.samples,
            estimated_fp=estimate,
            bound=bound,
            old_spec=old_spec,
            new_spec=new_spec,
            old_memory_bits=old_bits,
            new_memory_bits=self.detector.memory_bits,
        )
        self.journal.append(event)
        del self.journal[: -config.journal_limit]
        if self._metrics is not None:
            self._metrics["resizes"].labels(direction=direction).inc()
            self._metrics["memory_bits"].set(self.detector.memory_bits)
        self._back_off()
        return event

    def _back_off(self) -> None:
        self.breach_run = 0
        self.slack_run = 0
        self._since_resize = 0

    def telemetry_snapshot(self) -> dict:
        """Controller health in the standard snapshot shape."""
        return {
            "gauges": {
                "breach_run": float(self.breach_run),
                "slack_run": float(self.slack_run),
                "memory_bits": float(self.detector.memory_bits),
            },
            "counters": {
                "samples": self.samples,
                "breach_samples": self.breach_samples,
                "resizes": len(self.journal),
            },
        }
