"""Per-request serve-path observability: stages, traces, flight recorder.

Three cooperating pieces back the serve path's end-to-end story
(docs/observability.md):

* **Stage latency** — :class:`StageLatencyRecorder` decomposes every
  BATCH frame's life into named stages (:data:`SERVE_STAGES`) and keeps
  both a labeled histogram and *exact* streaming p50/p95/p99 gauges per
  stage.  Exactness comes from :class:`StreamingQuantile`: nearest-rank
  selection over a bounded window of retained samples, no sketching or
  interpolation error — the registry's reservoir histograms stay
  approximate, these gauges do not.
* **Cross-process traces** — a sampled ``(trace_id, span_id)`` context
  rides the RPK1 frame (``FLAG_TRACE`` in :mod:`repro.serve.protocol`)
  and the parallel engine's shared-memory rings; every process appends
  finished spans to its own ``spans-<role>-<pid>.jsonl`` shard through
  :class:`SpanShardWriter` (flushed per line, so shards survive a
  ``terminate()``), and :func:`merge_shards` stitches the shards into
  one Chrome-trace timeline.  Spans are timestamped with wall-clock
  time so shards from different processes on the same host line up.
* **Flight recorder** — :class:`FlightRecorder` keeps the last N
  structured events in a preallocated ring (one slot store per event,
  no locks: the server's event loop is the only writer and a list item
  assignment is atomic under the GIL) and dumps them as JSONL when
  something dies, so the window before an engine death or watchdog
  restart is reconstructable after the fact.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "SERVE_STAGES",
    "SERVE_QUANTILES",
    "StreamingQuantile",
    "StageLatencyRecorder",
    "new_trace_id",
    "new_span_id",
    "set_current_trace",
    "clear_current_trace",
    "current_trace",
    "SpanShardWriter",
    "merge_shards",
    "FlightRecorder",
]

#: Stages of a BATCH frame's life inside the ingest server, in order.
#: ``decode`` — wire bytes to identifier/timestamp views; ``engine_queue``
#: — admitted, waiting for the engine task to pick the request up;
#: ``coalesce_wait`` — held by the coalescer for batch-mates or the
#: deadline; ``detector_compute`` — the detection pipeline call for the
#: request's group; ``response_write`` — verdict frame serialization and
#: socket write-out.
SERVE_STAGES = (
    "decode",
    "engine_queue",
    "coalesce_wait",
    "detector_compute",
    "response_write",
)

#: Quantiles published as gauges per stage (plus a ``max``).
SERVE_QUANTILES = (0.5, 0.95, 0.99)

#: Schema tag on the first line of a flight-recorder dump.
FLIGHT_SCHEMA = 1


class StreamingQuantile:
    """Exact quantiles over the most recent ``capacity`` observations.

    Samples land in a numpy buffer that grows geometrically to
    ``capacity`` and then wraps, overwriting the oldest — so quantiles
    are *exact* (nearest-rank, no interpolation) over a sliding window
    of up to ``capacity`` samples rather than approximate over all of
    history.  ``observe`` is one array store and two integer updates;
    the selection work happens only when a quantile is asked for.
    """

    __slots__ = ("capacity", "observed", "_buffer", "_filled", "_next")

    def __init__(self, capacity: int = 1 << 20, initial: int = 1024) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buffer = np.empty(min(int(initial), self.capacity), dtype=np.float64)
        self._filled = 0
        self._next = 0
        self.observed = 0

    @property
    def count(self) -> int:
        """Samples currently retained (≤ ``capacity``)."""
        return self._filled

    def observe(self, value: float) -> None:
        buffer = self._buffer
        size = buffer.shape[0]
        if self._filled == size and size < self.capacity:
            grown = np.empty(min(size * 2, self.capacity), dtype=np.float64)
            grown[:size] = buffer
            self._buffer = buffer = grown
            self._next = size
            size = buffer.shape[0]
        slot = self._next
        buffer[slot] = value
        if self._filled < size:
            self._filled += 1
        self._next = slot + 1 if slot + 1 < size else 0
        self.observed += 1

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile; NaN while no samples are retained."""
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        n = self._filled
        if n == 0:
            return float("nan")
        k = max(0, math.ceil(q * n) - 1)
        return float(np.partition(self._buffer[:n], k)[k])

    def quantiles(self, qs: Sequence[float]) -> Dict[float, float]:
        """Several exact quantiles from one sort of the retained window."""
        n = self._filled
        if n == 0:
            return {q: float("nan") for q in qs}
        ordered = np.sort(self._buffer[:n])
        return {
            q: float(ordered[max(0, math.ceil(q * n) - 1)]) for q in qs
        }

    @property
    def max(self) -> float:
        """Largest retained sample; NaN while empty (windowed, like the rest)."""
        if self._filled == 0:
            return float("nan")
        return float(np.max(self._buffer[: self._filled]))


def _q_label(q: float) -> str:
    return format(q, "g")


class StageLatencyRecorder:
    """Per-stage serve latency: labeled histogram + exact quantile gauges.

    Emits ``repro_serve_stage_seconds{stage=}`` histograms on every
    observation and refreshes ``repro_serve_stage_quantile_seconds
    {stage=,q=}`` gauges from :meth:`collect` — append the recorder to
    ``TelemetrySession.instruments`` so the session's snapshot cadence
    drives the refresh, the same way detector instruments work.
    """

    def __init__(
        self,
        registry,
        stages: Sequence[str] = SERVE_STAGES,
        quantiles: Sequence[float] = SERVE_QUANTILES,
        window: int = 1 << 20,
    ) -> None:
        histogram = registry.histogram(
            "repro_serve_stage_seconds",
            "Per-request serve latency decomposed by stage",
            labels=("stage",),
        )
        gauge = registry.gauge(
            "repro_serve_stage_quantile_seconds",
            "Exact streaming stage-latency quantiles over the retained window",
            labels=("stage", "q"),
        )
        self.quantiles = tuple(quantiles)
        self.stages = tuple(stages)
        self._by_stage: Dict[str, tuple] = {}
        for stage in self.stages:
            stream = StreamingQuantile(capacity=window)
            children = tuple(
                gauge.labels(stage=stage, q=_q_label(q)) for q in self.quantiles
            ) + (gauge.labels(stage=stage, q="max"),)
            self._by_stage[stage] = (
                histogram.labels(stage=stage),
                stream,
                children,
            )

    def observe(self, stage: str, seconds: float) -> None:
        child, stream, _children = self._by_stage[stage]
        child.observe(seconds)
        stream.observe(seconds)

    def stream(self, stage: str) -> StreamingQuantile:
        return self._by_stage[stage][1]

    def collect(self) -> None:
        """Refresh the quantile gauges (TelemetrySession instrument hook)."""
        for _child, stream, children in self._by_stage.values():
            if stream.count == 0:
                continue
            values = stream.quantiles(self.quantiles)
            for gauge_child, q in zip(children, self.quantiles):
                gauge_child.set(values[q])
            children[-1].set(stream.max)


# --------------------------------------------------------------------------
# Trace context

def new_trace_id() -> int:
    """Random nonzero 64-bit trace id (zero means *untraced* on the wire)."""
    return int.from_bytes(os.urandom(8), "little") | 1


def new_span_id() -> int:
    """Random nonzero 64-bit span id."""
    return int.from_bytes(os.urandom(8), "little") | 1


_CURRENT_TRACE: Tuple[int, int] = (0, 0)


def set_current_trace(trace_id: int, span_id: int) -> None:
    """Install the trace context for work dispatched from this thread.

    The serve engine task sets this around a traced group's detector
    call so the parallel engine (which has no request object in hand)
    can stamp the context onto its ring-buffer slots.  Single-writer by
    construction — the engine task is the only caller in a server.
    """
    global _CURRENT_TRACE
    _CURRENT_TRACE = (int(trace_id), int(span_id))


def clear_current_trace() -> None:
    set_current_trace(0, 0)


def current_trace() -> Tuple[int, int]:
    """The installed ``(trace_id, span_id)``; ``(0, 0)`` when untraced."""
    return _CURRENT_TRACE


# --------------------------------------------------------------------------
# Span shards

class _ShardSpan:
    """Context manager timing one span and appending it to the shard."""

    __slots__ = (
        "writer", "name", "trace_id", "span_id", "parent_id", "args",
        "_wall", "_t0",
    )

    def __init__(self, writer, name, trace_id, parent_id, args):
        self.writer = writer
        self.name = name
        self.trace_id = int(trace_id)
        self.span_id = new_span_id()
        self.parent_id = int(parent_id)
        self.args = args

    def annotate(self, **args: Any) -> None:
        self.args.update(args)

    def __enter__(self) -> "_ShardSpan":
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self.writer.write(
            self.name,
            self.trace_id,
            self.span_id,
            parent_id=self.parent_id,
            start=self._wall,
            duration=duration,
            **self.args,
        )


class SpanShardWriter:
    """Append this process's finished spans to a per-pid JSONL shard.

    One line per span, flushed immediately — a worker killed with
    ``terminate()`` loses at most the span it was inside, never the
    shard.  Shard names are ``spans-<role>-<pid>.jsonl`` so a merge can
    label each Chrome-trace process row.
    """

    def __init__(self, directory, role: str) -> None:
        self.role = str(role)
        self.pid = os.getpid()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.path = directory / f"spans-{self.role}-{self.pid}.jsonl"
        self._file = open(self.path, "a", encoding="utf-8")

    def write(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int = 0,
        start: Optional[float] = None,
        duration: float = 0.0,
        **args: Any,
    ) -> None:
        record: Dict[str, Any] = {
            "name": name,
            "trace_id": int(trace_id),
            "span_id": int(span_id),
            "parent_id": int(parent_id),
            "pid": self.pid,
            "role": self.role,
            "ts": time.time() if start is None else float(start),
            "dur": float(duration),
        }
        if args:
            record["args"] = args
        self._file.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self._file.flush()

    def span(self, name: str, trace_id: int, parent_id: int = 0, **args: Any) -> _ShardSpan:
        return _ShardSpan(self, name, trace_id, parent_id, args)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "SpanShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def merge_shards(
    directory,
    output=None,
    trace_id: Optional[int] = None,
) -> Dict[str, Any]:
    """Stitch every ``spans-*.jsonl`` shard under ``directory`` into one
    Chrome-trace dict (``{"traceEvents": [...]}``).

    Spans carry wall-clock start times, so shards written by different
    processes on the same host merge onto one timeline: events are
    sorted by start, rebased to the earliest, and converted to the
    microsecond units ``chrome://tracing`` / Perfetto expect.  Each
    distinct pid gets a ``process_name`` metadata row from its shard's
    role.  Torn tail lines (a process killed mid-write) are skipped,
    not fatal.  Pass ``trace_id`` to keep one trace only; pass
    ``output`` to also write the JSON to a file.
    """
    records: List[Dict[str, Any]] = []
    for path in sorted(Path(directory).glob("spans-*.jsonl")):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict) or "ts" not in record:
                    continue
                if trace_id is not None and record.get("trace_id") != trace_id:
                    continue
                records.append(record)
    records.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))
    epoch = records[0]["ts"] if records else 0.0
    roles: Dict[int, str] = {}
    events: List[Dict[str, Any]] = []
    for record in records:
        pid = int(record.get("pid", 0))
        roles.setdefault(pid, str(record.get("role", "process")))
        args = dict(record.get("args") or {})
        args["trace_id"] = format(int(record.get("trace_id", 0)), "016x")
        args["span_id"] = format(int(record.get("span_id", 0)), "016x")
        parent = int(record.get("parent_id", 0))
        if parent:
            args["parent_span_id"] = format(parent, "016x")
        events.append(
            {
                "name": str(record.get("name", "span")),
                "ph": "X",
                "ts": (record["ts"] - epoch) * 1e6,
                "dur": float(record.get("dur", 0.0)) * 1e6,
                "pid": pid,
                "tid": int(record.get("tid", 0)),
                "args": args,
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{role} ({pid})"},
        }
        for pid, role in sorted(roles.items())
    ]
    trace = {"traceEvents": metadata + events}
    if output is not None:
        Path(output).write_text(json.dumps(trace, indent=1) + "\n")
    return trace


# --------------------------------------------------------------------------
# Flight recorder

class FlightRecorder:
    """Bounded ring of recent structured events, dumpable as JSONL.

    ``record`` is deliberately minimal — build one tuple, store it into
    a preallocated slot, bump two integers — so it can stay *always on*
    in the serve hot path (one event per frame/group, not per click).
    There are no locks: the server's single event loop is the only
    writer, and a Python list item assignment is atomic under the GIL,
    so a dump taken from a signal handler or another thread sees a
    consistent ring at worst one event stale.
    """

    __slots__ = ("_events", "_next", "recorded", "dumps")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 16:
            raise ConfigurationError(
                f"flight recorder capacity must be >= 16, got {capacity}"
            )
        self._events: List[Optional[tuple]] = [None] * int(capacity)
        self._next = 0
        self.recorded = 0
        self.dumps = 0

    @property
    def capacity(self) -> int:
        return len(self._events)

    def record(self, kind: str, **fields: Any) -> None:
        slot = self._next
        self._events[slot] = (self.recorded, time.time(), kind, fields)
        self.recorded += 1
        self._next = slot + 1 if slot + 1 < len(self._events) else 0

    def events(self) -> List[tuple]:
        """Retained ``(seq, ts, kind, fields)`` tuples, oldest first."""
        if self.recorded <= len(self._events):
            kept = self._events[: self.recorded]
        else:
            kept = self._events[self._next :] + self._events[: self._next]
        return [event for event in kept if event is not None]

    def dump(self, directory, reason: str) -> Path:
        """Write the ring to ``flight-<reason>-<pid>-<n>.jsonl``; return the path.

        Line 1 is a header (schema, reason, pid, counts); every further
        line is one event with a monotone ``seq`` — :meth:`parse` checks
        both, so a truncated or interleaved dump fails loudly instead of
        silently reading short.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        events = self.events()
        path = directory / f"flight-{reason}-{os.getpid()}-{self.dumps:04d}.jsonl"
        header = {
            "flight_recorder": FLIGHT_SCHEMA,
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "recorded": self.recorded,
            "dropped": max(0, self.recorded - len(self._events)),
            "events": len(events),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            for seq, ts, kind, fields in events:
                record = dict(fields)
                record["seq"] = seq
                record["ts"] = ts
                record["kind"] = kind
                handle.write(
                    json.dumps(record, separators=(",", ":"), default=str) + "\n"
                )
        self.dumps += 1
        return path

    @staticmethod
    def parse(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """Read a dump back as ``(header, events)``.

        Raises :class:`ValueError` when the header is missing, the event
        count disagrees with the header, or ``seq`` is not strictly
        increasing — the round-trip guarantee the chaos soak asserts.
        """
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ValueError(f"{path}: empty flight dump")
        header = json.loads(lines[0])
        if not isinstance(header, dict) or "flight_recorder" not in header:
            raise ValueError(f"{path}: first line is not a flight-recorder header")
        events = [json.loads(line) for line in lines[1:] if line.strip()]
        previous = None
        for event in events:
            seq = event.get("seq")
            if not isinstance(seq, int) or (previous is not None and seq <= previous):
                raise ValueError(
                    f"{path}: event sequence not strictly increasing at {seq!r}"
                )
            previous = seq
        if header.get("events") != len(events):
            raise ValueError(
                f"{path}: header promises {header.get('events')} events, "
                f"found {len(events)}"
            )
        return header, events
