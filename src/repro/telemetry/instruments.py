"""Detector instrumentation: health snapshots projected into metrics.

Every detector exposes a ``telemetry_snapshot()`` dict of three
sections — ``gauges`` (point-in-time values), ``counters`` (monotonic
totals), ``fills`` (per-lane / per-filter fill fractions) — and sharded
detectors add a ``shards`` section of per-shard gauge maps.
:class:`DetectorInstrument` projects that dict into a
:class:`~repro.telemetry.registry.MetricsRegistry` on each
:meth:`collect`:

* gauges   -> ``repro_detector_<key>{detector=...}``
* counters -> ``repro_detector_<key>_total{detector=...}`` (delta-
  incremented against the last observed totals, so registry counters
  stay continuous across detector swaps and checkpoint restores)
* fills    -> ``repro_detector_fill_ratio{detector=...,part=...}``
* shards   -> ``repro_shard_<key>{detector=...,shard=...}``

The instrument also monitors the paper's FP envelope: it publishes the
detector's a-priori bound (:func:`theoretical_fp_bound`, Theorems 1-4
applied to the configuration) next to the live
``estimated_fp_rate`` gauge, and counts breaches whenever the live
estimate exceeds ``bound * margin``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..bloom.params import false_positive_rate

__all__ = ["DetectorInstrument", "theoretical_fp_bound"]


def theoretical_fp_bound(detector) -> Optional[float]:
    """A-priori FP bound for a detector's configuration, if derivable.

    * GBF (Theorem 1): each of the ``Q + 1`` lanes is a Bloom filter
      holding at most one sub-window (``N/Q`` distinct elements), and a
      false positive needs at least one active lane to fire:
      ``1 - (1 - f_sub)^(Q+1)`` with ``f_sub = f(m, N/Q, k)``.
    * TBF (Theorem 2): a classical Bloom filter of ``m`` entries over
      at most ``N`` active elements: ``f(m, N, k)``.
    * Jumping TBF (§4.1): the active span covers the window plus the
      in-progress sub-window: ``f(m, N + N/Q, k)``.
    * Sharded: the worst (maximum) bound across shards.
    * Time-based variants: ``None`` — the element count per window is
      load-dependent, so there is no a-priori bound to compare against.
    """
    kind = type(detector).__name__
    if kind == "GBFDetector":
        f_sub = false_positive_rate(
            detector.bits_per_filter,
            detector.subwindow_size,
            detector.num_hashes,
        )
        return 1.0 - (1.0 - f_sub) ** detector.num_lanes
    if kind == "TBFDetector":
        return false_positive_rate(
            detector.num_entries, detector.window_size, detector.num_hashes
        )
    if kind == "TBFJumpingDetector":
        return false_positive_rate(
            detector.num_entries,
            detector.window_size + detector.subwindow_size,
            detector.num_hashes,
        )
    if kind == "AgePartitionedBFDetector":
        # APBF (Shtul et al. 2020): closed-form run-of-k bound over
        # steady-state slice fills; the detector owns the formula.
        return detector.theoretical_fp_bound()
    if kind in ("AdaptiveDetector", "AdaptiveTimedDetector"):
        # The resizable wrapper answers with its *current* inner
        # detector's bound, so the envelope tracks each migrate.
        return theoretical_fp_bound(detector.inner)
    if kind in ("ShardedDetector", "TimeShardedDetector"):
        bounds = [theoretical_fp_bound(shard) for shard in detector.shards]
        bounds = [bound for bound in bounds if bound is not None]
        return max(bounds) if bounds else None
    if kind in ("ParallelShardedDetector", "ParallelTimeShardedDetector"):
        # The workers run copies of base's shards; the bound is sizing
        # math only, so base answers for the fleet.
        return theoretical_fp_bound(detector.base)
    return None


class DetectorInstrument:
    """Publishes one detector's health snapshot into a registry.

    Parameters
    ----------
    detector:
        Anything with a ``telemetry_snapshot()`` method.
    registry:
        A :class:`~repro.telemetry.registry.MetricsRegistry` (or the
        null registry, making every recording call a no-op).
    name:
        The ``detector`` label value; defaults to the class name.
    fp_margin:
        Breach threshold multiplier: a breach is counted when the live
        estimated FP rate exceeds ``theoretical_fp_bound * fp_margin``.
    """

    def __init__(
        self,
        detector,
        registry,
        name: Optional[str] = None,
        fp_margin: float = 2.0,
    ) -> None:
        self.detector = detector
        self.registry = registry
        self.name = name or type(detector).__name__
        self.fp_margin = fp_margin
        self.fp_bound = theoretical_fp_bound(detector)

        self._gauges = registry.gauge(
            "repro_detector_gauge", "Detector health gauges", labels=("detector", "key")
        )
        self._counters = registry.counter(
            "repro_detector_events_total",
            "Detector monotonic event totals",
            labels=("detector", "key"),
        )
        self._fills = registry.gauge(
            "repro_detector_fill_ratio",
            "Fraction of filter positions set, per lane/filter",
            labels=("detector", "part"),
        )
        self._shard_gauges = registry.gauge(
            "repro_shard_gauge", "Per-shard health gauges", labels=("detector", "shard", "key")
        )
        self._fp_estimate = registry.gauge(
            "repro_detector_estimated_fp_rate",
            "Live FP-rate estimate from measured fill state",
            labels=("detector",),
        ).labels(detector=self.name)
        self._fp_bound_gauge = registry.gauge(
            "repro_detector_fp_bound",
            "A-priori theoretical FP bound for the configuration",
            labels=("detector",),
        ).labels(detector=self.name)
        self._breaches = registry.counter(
            "repro_fp_bound_breaches_total",
            "Snapshots where the live FP estimate exceeded bound * margin",
            labels=("detector",),
        ).labels(detector=self.name)
        if self.fp_bound is not None:
            self._fp_bound_gauge.set(self.fp_bound)

        # Baseline the counter totals at the detector's *current* state:
        # after a checkpoint restore the registry already carries the
        # journaled running totals, so replaying the detector's lifetime
        # totals here would double-count them.
        self._last_counters: Dict[str, Any] = dict(
            detector.telemetry_snapshot().get("counters", {})
        )

        attach = getattr(detector, "attach_telemetry", None)
        if attach is not None:
            attach(registry)

    def collect(self) -> None:
        """Read one snapshot from the detector and record it."""
        snapshot = self.detector.telemetry_snapshot()
        name = self.name

        for key, value in snapshot.get("gauges", {}).items():
            if key == "estimated_fp_rate":
                self._fp_estimate.set(value)
                if (
                    self.fp_bound is not None
                    and value > self.fp_bound * self.fp_margin
                ):
                    self._breaches.inc()
            else:
                self._gauges.labels(detector=name, key=key).set(value)

        last = self._last_counters
        for key, total in snapshot.get("counters", {}).items():
            delta = total - last.get(key, 0)
            if delta > 0:  # clamp: a shard restore can roll totals back
                self._counters.labels(detector=name, key=key).inc(delta)
            last[key] = total

        for part, fill in snapshot.get("fills", {}).items():
            self._fills.labels(detector=name, part=part).set(fill)

        for shard, gauges in snapshot.get("shards", {}).items():
            for key, value in gauges.items():
                self._shard_gauges.labels(detector=name, shard=shard, key=key).set(value)
