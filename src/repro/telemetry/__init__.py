"""Runtime telemetry: metrics registry, tracing, detector instruments.

The observability layer of the reproduction (see docs/observability.md):

* :mod:`.registry` — zero-dependency counters / gauges / histograms
  with Prometheus-text and JSON exposition, plus a crash-consistent
  ``state_dict``/``load_state`` round-trip.
* :mod:`.tracing` — span-based timing with Chrome-trace JSON export.
* :mod:`.instruments` — projects detector health snapshots (fill
  ratios, live FP estimates vs. the paper's theoretical bounds,
  rotation/cleaning progress) into the registry.
* :mod:`.session` — the bundle pipelines accept; disabled by default
  via no-op twins so the hot path pays a single dead call.
* :mod:`.monitor` — terminal dashboard rendering for ``repro monitor``.
"""

from .instruments import DetectorInstrument, theoretical_fp_bound
from .monitor import render_dashboard
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .session import TelemetrySession
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DetectorInstrument",
    "theoretical_fp_bound",
    "TelemetrySession",
    "Tracer",
    "NullTracer",
    "Span",
    "render_dashboard",
]
