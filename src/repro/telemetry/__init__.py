"""Runtime telemetry: metrics registry, tracing, detector instruments.

The observability layer of the reproduction (see docs/observability.md):

* :mod:`.registry` — zero-dependency counters / gauges / histograms
  with Prometheus-text and JSON exposition, plus a crash-consistent
  ``state_dict``/``load_state`` round-trip.
* :mod:`.tracing` — span-based timing with Chrome-trace JSON export.
* :mod:`.instruments` — projects detector health snapshots (fill
  ratios, live FP estimates vs. the paper's theoretical bounds,
  rotation/cleaning progress) into the registry.
* :mod:`.session` — the bundle pipelines accept; disabled by default
  via no-op twins so the hot path pays a single dead call.
* :mod:`.monitor` — terminal dashboard rendering for ``repro monitor``.
* :mod:`.requesttrace` — serve-path request observability: per-stage
  latency with exact streaming quantiles, cross-process span shards
  merged into one Chrome trace, and the crash flight recorder.
"""

from .instruments import DetectorInstrument, theoretical_fp_bound
from .monitor import render_dashboard
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .requesttrace import (
    SERVE_STAGES,
    FlightRecorder,
    SpanShardWriter,
    StageLatencyRecorder,
    StreamingQuantile,
    current_trace,
    merge_shards,
    new_span_id,
    new_trace_id,
    set_current_trace,
)
from .session import TelemetrySession
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DetectorInstrument",
    "theoretical_fp_bound",
    "TelemetrySession",
    "Tracer",
    "NullTracer",
    "Span",
    "render_dashboard",
    "SERVE_STAGES",
    "StreamingQuantile",
    "StageLatencyRecorder",
    "FlightRecorder",
    "SpanShardWriter",
    "merge_shards",
    "new_trace_id",
    "new_span_id",
    "set_current_trace",
    "current_trace",
]
