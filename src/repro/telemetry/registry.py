"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the substrate of the runtime telemetry layer.  Design
constraints, in order:

1. **Hot-path cost.**  A recording call must be a couple of attribute
   operations — no locks, no dict lookups, no string formatting.
   Metric objects are resolved once (at registration or via a cached
   ``labels(...)`` child) and then mutated with plain ``+=``, which is
   effectively atomic under the GIL for our single-writer pipelines
   ("lock-free-ish"); a lock guards only registration, never recording.
2. **Optionality.**  :class:`NullRegistry` satisfies the same API with
   shared no-op metric objects, so instrumented code pays one dead
   method call when telemetry is disabled (benchmarked ceiling in
   ``benchmarks/test_telemetry_overhead.py``).
3. **Crash consistency.**  :meth:`MetricsRegistry.state_dict` /
   :meth:`MetricsRegistry.load_state` round-trip every value
   bit-identically through JSON, so the supervised pipeline can journal
   telemetry alongside its detector checkpoints and a resumed process
   continues the same counters (see :mod:`repro.resilience`).

Exposition: :meth:`MetricsRegistry.to_prometheus` emits the Prometheus
text format (``# HELP`` / ``# TYPE`` / samples, histograms as
cumulative ``_bucket`` series); :meth:`MetricsRegistry.snapshot`
returns a JSON-able dict for dashboards and the ``repro monitor`` CLI.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, tuned for sub-second latencies (seconds).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def format_value(value: float) -> str:
    """Render a sample value the way the Prometheus text format expects."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        value = int(value)
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class Counter:
    """Monotonically increasing count.  ``inc`` is the only mutator."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; inc({amount}) is negative"
            )
        self.value += amount

    def _state(self) -> float:
        return self.value

    def _load(self, state: Any) -> None:
        self.value = state

    def _sample(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (fill ratio, lag, queue depth)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def _state(self) -> float:
        return self.value

    def _load(self, state: Any) -> None:
        self.value = state

    def _sample(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with a bounded reservoir of raw values.

    Buckets follow the Prometheus model (upper bounds, cumulative at
    exposition time, implicit ``+Inf``).  The reservoir keeps the most
    recent ``reservoir_size`` observations in a ring so dashboards can
    show approximate quantiles without unbounded memory.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "sum",
        "min", "max", "reservoir", "reservoir_size",
    )
    kind = "histogram"

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir_size: int = 256,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        if reservoir_size < 1:
            raise ConfigurationError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.reservoir: List[float] = []
        self.reservoir_size = reservoir_size

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        if len(self.reservoir) < self.reservoir_size:
            self.reservoir.append(value)
        else:
            self.reservoir[self.count % self.reservoir_size] = value
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the reservoir (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.reservoir:
            return 0.0
        ordered = sorted(self.reservoir)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out

    def _state(self) -> Dict[str, Any]:
        return {
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
            "reservoir": list(self.reservoir),
        }

    def _load(self, state: Dict[str, Any]) -> None:
        counts = [int(count) for count in state["bucket_counts"]]
        if len(counts) != len(self.bucket_counts):
            raise ConfigurationError(
                "histogram state has a different bucket layout"
            )
        self.bucket_counts = counts
        self.count = int(state["count"])
        self.sum = state["sum"]
        self.min = math.inf if state["min"] is None else state["min"]
        self.max = -math.inf if state["max"] is None else state["max"]
        self.reservoir = [float(value) for value in state["reservoir"]]


_METRIC_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its labeled children.

    An unlabeled family proxies the recording methods straight to its
    single default child, so ``registry.counter("x").inc()`` works; a
    labeled family hands out cached children via :meth:`labels`.
    """

    __slots__ = (
        "name", "help", "kind", "label_names",
        "_registry", "_children", "_metric_kwargs",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        metric_kwargs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._registry = registry
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._metric_kwargs = metric_kwargs

    def labels(self, **labels: str):
        """The child metric for one label combination (created on demand)."""
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as error:
            raise ConfigurationError(
                f"metric {self.name!r} requires labels {self.label_names}, "
                f"got {tuple(labels)}"
            ) from error
        if len(labels) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} requires labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        child = self._children.get(key)
        if child is None:
            child = _METRIC_CLASSES[self.kind](**self._metric_kwargs)
            self._children[key] = child
            self._registry._register_instance(self, key, child)
        return child

    def _default(self):
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled by {self.label_names}; "
                "call .labels(...) first"
            )
        return self.labels()

    # Unlabeled convenience proxies -----------------------------------
    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def children(self) -> Iterable[Tuple[Tuple[str, ...], Any]]:
        return sorted(self._children.items())


def _series_key(name: str, label_names: Tuple[str, ...], label_values: Tuple[str, ...]) -> str:
    if not label_names:
        return name
    inner = ",".join(
        f"{label}={value}" for label, value in zip(label_names, label_values)
    )
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Registry of metric families with snapshot/exposition/state APIs."""

    enabled = True

    def __init__(self) -> None:
        self._families: "Dict[str, MetricFamily]" = {}
        self._instances: Dict[str, Any] = {}
        self._pending_state: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        return self._family(name, help_text, "counter", labels, {})

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        return self._family(name, help_text, "gauge", labels, {})

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir_size: int = 256,
    ):
        # Validate eagerly so a bad bucket layout fails at the
        # registration site, not at the first labeled child.
        Histogram(buckets=buckets, reservoir_size=reservoir_size)
        return self._family(
            name, help_text, "histogram", labels,
            {"buckets": tuple(buckets), "reservoir_size": reservoir_size},
        )

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        metric_kwargs: Dict[str, Any],
    ) -> MetricFamily:
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_NAME.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(
                self, name, help_text, kind, label_names, metric_kwargs
            )
            self._families[name] = family
        # Unlabeled families materialize their single series eagerly (like
        # the Prometheus clients): the series exists at 0 from registration,
        # and a registration after load_state() adopts the journaled value
        # instead of leaving it parked in _pending_state.
        if not label_names:
            family._default()
        return family

    def _register_instance(
        self, family: MetricFamily, key: Tuple[str, ...], metric: Any
    ) -> None:
        series = _series_key(family.name, family.label_names, key)
        self._instances[series] = metric
        pending = self._pending_state.pop(series, None)
        if pending is not None:
            metric._load(pending)

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of every live series (dashboard food)."""
        out: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for family in self._families.values():
            for key, metric in family.children():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    out["histograms"].append({
                        "name": family.name,
                        "labels": labels,
                        "count": metric.count,
                        "sum": metric.sum,
                        "mean": metric.mean,
                        "min": None if math.isinf(metric.min) else metric.min,
                        "max": None if math.isinf(metric.max) else metric.max,
                        "p50": metric.quantile(0.5),
                        "p99": metric.quantile(0.99),
                    })
                else:
                    out[family.kind + "s"].append({
                        "name": family.name,
                        "labels": labels,
                        "value": metric._sample(),
                    })
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._families.values():
            if not family._children:
                continue
            if family.help:
                escaped = family.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {family.name} {escaped}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, metric in family.children():
                labelstr = _prom_labels(family.label_names, key)
                if family.kind == "histogram":
                    for bound, cumulative in metric.cumulative_buckets():
                        le = _prom_labels(
                            family.label_names + ("le",),
                            key + (format_value(bound),),
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{family.name}_sum{labelstr} {format_value(metric.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{labelstr} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{labelstr} "
                        f"{format_value(metric._sample())}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- crash-consistent state ---------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Every live series' state, keyed by its series name.

        Values round-trip through JSON bit-identically (Python float
        repr is exact), so ``load_state(state_dict())`` restores the
        registry exactly — the property the supervised pipeline's
        checkpoint journal relies on.
        """
        state: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in self._families.values():
            for key, metric in family.children():
                series = _series_key(family.name, family.label_names, key)
                state[family.kind + "s"][series] = metric._state()
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore series values saved by :meth:`state_dict`.

        Series whose metric is not registered yet are parked and applied
        the moment the matching family/child is created, so restore
        order does not matter.
        """
        for section in ("counters", "gauges", "histograms"):
            for series, value in (state.get(section) or {}).items():
                metric = self._instances.get(series)
                if metric is not None:
                    metric._load(value)
                else:
                    self._pending_state[series] = value

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())


def _prom_labels(label_names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            label, value.replace("\\", "\\\\").replace('"', '\\"')
        )
        for label, value in zip(label_names, values)
    )
    return "{" + inner + "}"


class _NullMetric:
    """Shared do-nothing metric: every recording call is a single no-op."""

    __slots__ = ()
    kind = "null"

    def labels(self, **labels: str) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """Telemetry disabled: same API, shared no-op metrics, empty output."""

    enabled = False

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        return NULL_METRIC

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir_size: int = 256,
    ):
        return NULL_METRIC

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": [], "gauges": [], "histograms": []}

    def to_prometheus(self) -> str:
        return ""

    def state_dict(self) -> Dict[str, Any]:
        return {}

    def load_state(self, state: Dict[str, Any]) -> None:
        pass
