"""TelemetrySession: one handle bundling registry, tracer, instruments.

The session is what pipelines accept: it owns the metrics registry and
the tracer, tracks detector instruments, and drives the periodic
snapshot cadence (``advance(n)`` counts processed clicks and fires
:meth:`emit` every ``snapshot_every`` of them — collecting every
instrument and invoking subscriber callbacks with the fresh snapshot).

``TelemetrySession.disabled()`` wires the null registry and null tracer
together; pipelines hold that by default, so instrumented code paths
run with single no-op calls instead of branches.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .instruments import DetectorInstrument
from .registry import MetricsRegistry, NullRegistry
from .tracing import NullTracer, Tracer

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Bundle of registry + tracer + instruments + snapshot cadence."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        snapshot_every: int = 10_000,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.snapshot_every = max(1, int(snapshot_every))
        self.instruments: List[DetectorInstrument] = []
        self._callbacks: List[Callable[[Dict[str, Any]], None]] = []
        self._since_snapshot = 0

    @classmethod
    def disabled(cls) -> "TelemetrySession":
        """A no-op session: every recording call is a dead method call."""
        return cls(NullRegistry(), NullTracer())

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    # -- instruments ---------------------------------------------------

    def instrument_detector(
        self, detector, name: Optional[str] = None, fp_margin: float = 2.0
    ) -> Optional[DetectorInstrument]:
        """Attach a :class:`DetectorInstrument`; no-op when disabled."""
        if not self.enabled:
            return None
        instrument = DetectorInstrument(
            detector, self.registry, name=name, fp_margin=fp_margin
        )
        self.instruments.append(instrument)
        return instrument

    def drop_instruments(self) -> None:
        self.instruments.clear()

    # -- snapshot cadence ----------------------------------------------

    def on_snapshot(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        """Subscribe to periodic snapshots (the monitor CLI hook)."""
        self._callbacks.append(callback)

    def advance(self, count: int) -> None:
        """Count processed clicks; emit when the cadence threshold trips."""
        if not self.enabled:
            return
        self._since_snapshot += count
        if self._since_snapshot >= self.snapshot_every:
            self._since_snapshot = 0
            if self._callbacks:
                self.emit()
            else:
                # No subscribers: refresh gauges (FP estimate, fills)
                # without materializing the snapshot dict nobody reads.
                for instrument in self.instruments:
                    instrument.collect()

    def emit(self) -> Optional[Dict[str, Any]]:
        """Collect every instrument, snapshot, and notify subscribers."""
        if not self.enabled:
            return None
        for instrument in self.instruments:
            instrument.collect()
        snapshot = self.registry.snapshot()
        for callback in self._callbacks:
            callback(snapshot)
        return snapshot

    def collect(self) -> None:
        """Refresh every instrument's gauges/counters right now."""
        for instrument in self.instruments:
            instrument.collect()

    # -- crash-consistent state ----------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        # Refresh instruments first: a checkpoint journal must carry the
        # detector's counters *at the journaled offset*, not at the last
        # snapshot cadence (which can lag by up to ``snapshot_every``).
        self.collect()
        return self.registry.state_dict()

    def load_state(self, state: Dict[str, Any]) -> None:
        self.registry.load_state(state)
