"""Terminal dashboard rendering for ``repro monitor``.

Turns a :meth:`MetricsRegistry.snapshot` dict into the aligned text
tables of :mod:`repro.metrics.reporting`, so the live view matches the
offline experiment reports in look and alignment.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..metrics.reporting import render_table

__all__ = ["render_dashboard"]


def _label_text(labels: Dict[str, str]) -> str:
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


#: Gauge family pivoted into the request-latency panel (and dropped
#: from the generic gauge table so each number appears exactly once).
_STAGE_QUANTILE_GAUGE = "repro_serve_stage_quantile_seconds"


def _latency_panel(gauges: List[Dict[str, Any]], title: str) -> str:
    """Pivot per-stage quantile gauges into a stage × quantile table.

    Rows follow the serve pipeline order (decode → queue → coalesce →
    compute → write); columns are the exact streaming quantiles plus the
    window max, rendered in milliseconds.
    """
    cells: Dict[str, Dict[str, float]] = {}
    for entry in gauges:
        if entry["name"] != _STAGE_QUANTILE_GAUGE:
            continue
        labels = entry["labels"]
        cells.setdefault(labels["stage"], {})[labels["q"]] = entry["value"]
    if not cells:
        return ""
    from .requesttrace import SERVE_STAGES

    quantiles = sorted(
        {q for stage in cells.values() for q in stage},
        key=lambda q: float("inf") if q == "max" else float(q),
    )
    ordered = [s for s in SERVE_STAGES if s in cells] + sorted(
        s for s in cells if s not in SERVE_STAGES
    )
    rows = [
        [stage]
        + [
            f"{cells[stage][q] * 1000.0:.3f}" if q in cells[stage] else ""
            for q in quantiles
        ]
        for stage in ordered
    ]
    headers = ["stage"] + [
        f"p{float(q) * 100:g}ms" if q != "max" else "max ms" for q in quantiles
    ]
    return render_table(headers, rows, title=f"{title}: request latency")


def render_dashboard(snapshot: Dict[str, Any], title: str = "telemetry") -> str:
    """Render one snapshot as counter / gauge / histogram tables."""
    sections: List[str] = []

    counters = snapshot.get("counters", [])
    if counters:
        rows = [
            [entry["name"], _label_text(entry["labels"]), entry["value"]]
            for entry in counters
        ]
        sections.append(
            render_table(
                ["counter", "labels", "value"], rows, title=f"{title}: counters"
            )
        )

    gauges = snapshot.get("gauges", [])
    latency = _latency_panel(gauges, title)
    if latency:
        sections.append(latency)
        gauges = [g for g in gauges if g["name"] != _STAGE_QUANTILE_GAUGE]
    if gauges:
        rows = [
            [entry["name"], _label_text(entry["labels"]), entry["value"]]
            for entry in gauges
        ]
        sections.append(
            render_table(["gauge", "labels", "value"], rows, title=f"{title}: gauges")
        )

    histograms = snapshot.get("histograms", [])
    if histograms:
        rows = [
            [
                entry["name"],
                _label_text(entry["labels"]),
                entry["count"],
                entry["mean"],
                entry["p50"],
                entry["p99"],
                entry["max"] if entry["max"] is not None else "",
            ]
            for entry in histograms
        ]
        sections.append(
            render_table(
                ["histogram", "labels", "count", "mean", "p50", "p99", "max"],
                rows,
                title=f"{title}: histograms",
            )
        )

    if not sections:
        return f"{title}: no metrics recorded\n"
    return "\n".join(sections)
