"""Terminal dashboard rendering for ``repro monitor``.

Turns a :meth:`MetricsRegistry.snapshot` dict into the aligned text
tables of :mod:`repro.metrics.reporting`, so the live view matches the
offline experiment reports in look and alignment.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..metrics.reporting import render_table

__all__ = ["render_dashboard"]


def _label_text(labels: Dict[str, str]) -> str:
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


def render_dashboard(snapshot: Dict[str, Any], title: str = "telemetry") -> str:
    """Render one snapshot as counter / gauge / histogram tables."""
    sections: List[str] = []

    counters = snapshot.get("counters", [])
    if counters:
        rows = [
            [entry["name"], _label_text(entry["labels"]), entry["value"]]
            for entry in counters
        ]
        sections.append(
            render_table(
                ["counter", "labels", "value"], rows, title=f"{title}: counters"
            )
        )

    gauges = snapshot.get("gauges", [])
    if gauges:
        rows = [
            [entry["name"], _label_text(entry["labels"]), entry["value"]]
            for entry in gauges
        ]
        sections.append(
            render_table(["gauge", "labels", "value"], rows, title=f"{title}: gauges")
        )

    histograms = snapshot.get("histograms", [])
    if histograms:
        rows = [
            [
                entry["name"],
                _label_text(entry["labels"]),
                entry["count"],
                entry["mean"],
                entry["p50"],
                entry["p99"],
                entry["max"] if entry["max"] is not None else "",
            ]
            for entry in histograms
        ]
        sections.append(
            render_table(
                ["histogram", "labels", "count", "mean", "p50", "p99", "max"],
                rows,
                title=f"{title}: histograms",
            )
        )

    if not sections:
        return f"{title}: no metrics recorded\n"
    return "\n".join(sections)
