"""Span-based tracing with a context-manager API and JSON export.

Spans record wall-clock durations of pipeline phases (a batch chunk, a
checkpoint write, a shard failover) into a bounded ring buffer.  The
export format is the Chrome trace-event JSON (``"ph": "X"`` complete
events), which loads directly into ``chrome://tracing`` / Perfetto and
is trivially greppable.

Like the registry, tracing has a null twin: :class:`NullTracer` hands
out one shared inert span, so traced code pays a single dead method
call when telemetry is disabled.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer"]


class Span:
    """One timed phase.  Use as a context manager::

        with tracer.span("checkpoint.write", offset=1024) as span:
            ...
            span.annotate(bytes=len(blob))

    Duration is measured with ``perf_counter``; the start timestamp for
    export uses the tracer's epoch so events line up on one timeline.
    """

    __slots__ = ("name", "attributes", "start", "duration", "parent", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.duration = 0.0
        self.parent: Optional[str] = None
        self._tracer = tracer

    def annotate(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._exit(self)


class _NullSpan:
    __slots__ = ()

    def annotate(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans in a bounded ring (oldest dropped first)."""

    enabled = True

    def __init__(self, max_spans: int = 4096) -> None:
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._stack: List[Span] = []
        self._epoch = time.perf_counter()
        self.dropped = 0

    def span(self, name: str, **attributes: Any) -> Span:
        return Span(self, name, attributes)

    def _enter(self, span: Span) -> None:
        if self._stack:
            span.parent = self._stack[-1].name
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def to_events(self) -> List[Dict[str, Any]]:
        """Chrome trace-event dicts (timestamps/durations in microseconds)."""
        events = []
        for span in self._spans:
            event: Dict[str, Any] = {
                "name": span.name,
                "ph": "X",
                "ts": (span.start - self._epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": 0,
                "args": dict(span.attributes),
            }
            if span.parent is not None:
                event["args"]["parent"] = span.parent
            events.append(event)
        return events

    def to_json(self) -> str:
        return json.dumps({"traceEvents": self.to_events()}, default=str)


class NullTracer(Tracer):
    """Tracing disabled: one shared inert span, nothing recorded."""

    enabled = False

    def __init__(self) -> None:  # skip ring allocation
        self.dropped = 0

    def span(self, name: str, **attributes: Any):
        return NULL_SPAN

    def spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def to_events(self) -> List[Dict[str, Any]]:
        return []

    def to_json(self) -> str:
        return json.dumps({"traceEvents": []})
