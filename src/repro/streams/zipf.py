"""Bounded Zipf sampling for realistic popularity skew.

Ad popularity, keyword demand, and visitor activity are all heavy
tailed; the workload generators draw from a bounded Zipf distribution
(``P(rank r) ∝ 1 / r^s`` over ``r = 1..n``) implemented with a
precomputed CDF and binary search, so sampling is vectorizable and the
support is exactly the entity universe (unlike ``numpy.random.zipf``,
whose support is unbounded).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class ZipfSampler:
    """Samples ranks ``0..population-1`` with Zipf(``exponent``) weights.

    ``exponent = 0`` degenerates to uniform; larger exponents
    concentrate mass on low ranks.
    """

    def __init__(self, population: int, exponent: float = 1.0, seed: int = 0) -> None:
        if population < 1:
            raise ConfigurationError(f"population must be >= 1, got {population}")
        if exponent < 0:
            raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
        self.population = population
        self.exponent = exponent
        weights = 1.0 / np.arange(1, population + 1, dtype=np.float64) ** exponent
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int = 1) -> "np.ndarray":
        """Draw ``count`` ranks (dtype int64)."""
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank`` under the bounded distribution."""
        if not 0 <= rank < self.population:
            raise ConfigurationError(
                f"rank {rank} outside population {self.population}"
            )
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)
