"""Click-fraud attack traffic models (§1.1's threat inventory).

Each attack is a generator of :class:`~repro.streams.click.Click`
objects with ground-truth fraud labels, so detection pipelines can be
scored end to end.  The models cover the paper's named threats:

* :class:`SingleAttackerCampaign` — one human/script re-clicking an ad
  (the degenerate Scenario 2);
* :class:`BotnetCampaign` — "the competitors or even the publishers
  control a botnet with thousands of computers, each of which initiate
  many clicks to the ad links everyday" (Scenario 2 verbatim);
* :class:`HitInflationCampaign` — a publisher inflating click counts
  with fabricated identifiers (Anupam et al.'s attack, §2.4): each
  click looks *distinct*, so duplicate detection alone cannot flag it —
  the campaign exists to demonstrate that boundary honestly;
* :class:`CrawlerTraffic` — non-malicious but duplicate-heavy crawler
  fetches (a fraud *source* the paper lists, billed unfairly without
  dedup).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from .click import Click, TrafficClass


class SingleAttackerCampaign:
    """One source clicking one ad repeatedly at a fixed mean interval."""

    def __init__(
        self,
        ad_id: int,
        publisher_id: int,
        advertiser_id: int,
        source_ip: int,
        cookie: int,
        mean_interval: float,
        seed: int = 0,
    ) -> None:
        if mean_interval <= 0:
            raise ConfigurationError(
                f"mean_interval must be > 0, got {mean_interval}"
            )
        self.ad_id = ad_id
        self.publisher_id = publisher_id
        self.advertiser_id = advertiser_id
        self.source_ip = source_ip
        self.cookie = cookie
        self.mean_interval = mean_interval
        self._rng = np.random.default_rng(seed)

    def generate(self, start: float, end: float) -> List[Click]:
        clicks = []
        now = start + float(self._rng.exponential(self.mean_interval))
        while now < end:
            clicks.append(
                Click(
                    timestamp=now,
                    source_ip=self.source_ip,
                    cookie=self.cookie,
                    ad_id=self.ad_id,
                    publisher_id=self.publisher_id,
                    advertiser_id=self.advertiser_id,
                    traffic_class=TrafficClass.SINGLE_ATTACKER,
                )
            )
            now += float(self._rng.exponential(self.mean_interval))
        return clicks


class BotnetCampaign:
    """Scenario 2: ``num_bots`` machines each re-clicking target ads.

    Every bot has its own (IP, cookie) pair and clicks each target ad
    with exponential inter-click times of mean ``mean_interval``.  The
    per-bot repeats are what decaying-window duplicate detection
    catches: each bot's clicks on one ad are identical clicks arriving
    within a short interval.
    """

    def __init__(
        self,
        ad_ids: Sequence[int],
        publisher_id: int,
        advertiser_id: int,
        num_bots: int,
        mean_interval: float,
        seed: int = 0,
        ip_base: int = 0x0A000000,
    ) -> None:
        if num_bots < 1:
            raise ConfigurationError(f"num_bots must be >= 1, got {num_bots}")
        if mean_interval <= 0:
            raise ConfigurationError(
                f"mean_interval must be > 0, got {mean_interval}"
            )
        if not ad_ids:
            raise ConfigurationError("ad_ids must be non-empty")
        self.ad_ids = list(ad_ids)
        self.publisher_id = publisher_id
        self.advertiser_id = advertiser_id
        self.num_bots = num_bots
        self.mean_interval = mean_interval
        self.ip_base = ip_base
        self._rng = np.random.default_rng(seed)

    def generate(self, start: float, end: float) -> List[Click]:
        rng = self._rng
        clicks: List[Click] = []
        for bot in range(self.num_bots):
            source_ip = self.ip_base + bot
            cookie = int(rng.integers(1, 1 << 31))
            for ad_id in self.ad_ids:
                now = start + float(rng.exponential(self.mean_interval))
                while now < end:
                    clicks.append(
                        Click(
                            timestamp=now,
                            source_ip=source_ip,
                            cookie=cookie,
                            ad_id=ad_id,
                            publisher_id=self.publisher_id,
                            advertiser_id=self.advertiser_id,
                            traffic_class=TrafficClass.BOTNET,
                        )
                    )
                    now += float(rng.exponential(self.mean_interval))
        clicks.sort(key=lambda click: click.timestamp)
        return clicks


class HitInflationCampaign:
    """A dishonest publisher fabricating clicks with *fresh* identifiers.

    Each fabricated click carries a never-reused (IP, cookie), so a pure
    duplicate detector accepts them all — the attack the paper's related
    work (Streaming-Rules, Similarity-Seeker) targets instead.  Included
    so end-to-end evaluations report the detection boundary truthfully.
    """

    def __init__(
        self,
        ad_ids: Sequence[int],
        publisher_id: int,
        advertiser_id: int,
        rate: float,
        seed: int = 0,
        ip_base: int = 0xC0000000,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if not ad_ids:
            raise ConfigurationError("ad_ids must be non-empty")
        self.ad_ids = list(ad_ids)
        self.publisher_id = publisher_id
        self.advertiser_id = advertiser_id
        self.rate = rate
        self.ip_base = ip_base
        self._rng = np.random.default_rng(seed)
        self._next_identity = 0

    def generate(self, start: float, end: float) -> List[Click]:
        rng = self._rng
        clicks: List[Click] = []
        now = start + float(rng.exponential(1.0 / self.rate))
        while now < end:
            identity = self._next_identity
            self._next_identity += 1
            clicks.append(
                Click(
                    timestamp=now,
                    source_ip=self.ip_base + identity,
                    cookie=0x7F000000 + identity,
                    ad_id=self.ad_ids[int(rng.integers(len(self.ad_ids)))],
                    publisher_id=self.publisher_id,
                    advertiser_id=self.advertiser_id,
                    traffic_class=TrafficClass.HIT_INFLATION,
                )
            )
            now += float(rng.exponential(1.0 / self.rate))
        return clicks


class RotatingIdentityCampaign:
    """An attacker pacing each identity to one click per window.

    The optimal strategy *against* duplicate detection (see
    :mod:`repro.analysis.adversarial`): maintain a pool of
    ``pool_size`` identities and cycle through them, so no identity
    repeats within the detector's window and every click bills.  The
    attack's cost is the identity pool — which is exactly what the
    adversarial analysis prices.  Included so experiments can measure
    the detection boundary honestly: dedup caps this attack's rate at
    ``pool_size`` billed clicks per window but cannot zero it.
    """

    def __init__(
        self,
        ad_ids: Sequence[int],
        publisher_id: int,
        advertiser_id: int,
        pool_size: int,
        rate: float,
        seed: int = 0,
        ip_base: int = 0xB0000000,
    ) -> None:
        if pool_size < 1:
            raise ConfigurationError(f"pool_size must be >= 1, got {pool_size}")
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if not ad_ids:
            raise ConfigurationError("ad_ids must be non-empty")
        self.ad_ids = list(ad_ids)
        self.publisher_id = publisher_id
        self.advertiser_id = advertiser_id
        self.pool_size = pool_size
        self.rate = rate
        self.ip_base = ip_base
        self._rng = np.random.default_rng(seed)
        self._cursor = 0

    def generate(self, start: float, end: float) -> List[Click]:
        rng = self._rng
        clicks: List[Click] = []
        now = start + float(rng.exponential(1.0 / self.rate))
        while now < end:
            identity = self._cursor % self.pool_size
            ad_index = (self._cursor // self.pool_size) % len(self.ad_ids)
            self._cursor += 1
            clicks.append(
                Click(
                    timestamp=now,
                    source_ip=self.ip_base + identity,
                    cookie=0x51000000 + identity,
                    ad_id=self.ad_ids[ad_index],
                    publisher_id=self.publisher_id,
                    advertiser_id=self.advertiser_id,
                    traffic_class=TrafficClass.BOTNET,
                )
            )
            now += float(rng.exponential(1.0 / self.rate))
        return clicks


class CrawlerTraffic:
    """A crawler refetching ad links on a schedule (duplicate-heavy, not
    malicious — but billable without dedup, which is the unfairness the
    paper's Scenario 1/2 trade-off addresses)."""

    def __init__(
        self,
        ad_ids: Sequence[int],
        publisher_id: int,
        advertiser_id: int,
        source_ip: int,
        revisit_interval: float,
        seed: int = 0,
    ) -> None:
        if revisit_interval <= 0:
            raise ConfigurationError(
                f"revisit_interval must be > 0, got {revisit_interval}"
            )
        if not ad_ids:
            raise ConfigurationError("ad_ids must be non-empty")
        self.ad_ids = list(ad_ids)
        self.publisher_id = publisher_id
        self.advertiser_id = advertiser_id
        self.source_ip = source_ip
        self.revisit_interval = revisit_interval
        self._rng = np.random.default_rng(seed)

    def generate(self, start: float, end: float) -> List[Click]:
        clicks: List[Click] = []
        jitter = self.revisit_interval * 0.05
        now = start
        while now < end:
            for ad_id in self.ad_ids:
                offset = float(self._rng.uniform(0, jitter))
                if now + offset >= end:
                    continue
                clicks.append(
                    Click(
                        timestamp=now + offset,
                        source_ip=self.source_ip,
                        cookie=0,
                        ad_id=ad_id,
                        publisher_id=self.publisher_id,
                        advertiser_id=self.advertiser_id,
                        traffic_class=TrafficClass.CRAWLER,
                    )
                )
            now += self.revisit_interval
        clicks.sort(key=lambda click: click.timestamp)
        return clicks
