"""The click record and identifier schemes.

"Each click has a predefined identifier, such as the source IP address,
or the cookie, etc.  Then each click's identifier is hashed into the
Bloom filter." (§3.1)

A :class:`Click` carries the full pay-per-click context (who clicked
which ad on which publisher's page, when, at what cost, and — for
synthetic traffic — the ground-truth fraud label).  An
:class:`IdentifierScheme` projects a click onto the integer identifier
the duplicate detectors consume; different schemes encode different
duplicate policies (same IP?  same IP+ad?  same cookie+ad?).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer — the stable combiner for identifier fields."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def combine_fields(*fields: int) -> int:
    """Deterministically combine integer fields into one 64-bit identifier.

    Unlike Python's builtin ``hash`` this is stable across processes
    (no ``PYTHONHASHSEED`` dependence), so stored streams replay
    identically.
    """
    value = 0x243F6A8885A308D3  # pi, nothing up the sleeve
    for item in fields:
        value = _mix64(value ^ _mix64(item))
    return value


class TrafficClass(enum.Enum):
    """Ground-truth provenance of a synthetic click."""

    LEGITIMATE = "legitimate"
    REPEAT_VISITOR = "repeat_visitor"  # the paper's Scenario 1
    SINGLE_ATTACKER = "single_attacker"
    BOTNET = "botnet"  # the paper's Scenario 2
    HIT_INFLATION = "hit_inflation"
    CRAWLER = "crawler"

    @property
    def is_fraud(self) -> bool:
        return self in (
            TrafficClass.SINGLE_ATTACKER,
            TrafficClass.BOTNET,
            TrafficClass.HIT_INFLATION,
        )


@dataclass
class Click:
    """One pay-per-click event in an advertising network.

    All entity references are small integers (ids into the
    :mod:`repro.adnet` registries); ``cost`` is the CPC the publisher
    would bill for this click if accepted as valid.
    """

    timestamp: float
    source_ip: int
    cookie: int
    ad_id: int
    publisher_id: int
    advertiser_id: int
    cost: float = 0.0
    traffic_class: TrafficClass = TrafficClass.LEGITIMATE
    #: Filled in by the billing pipeline: was the click charged?
    charged: Optional[bool] = field(default=None, compare=False)

    @property
    def is_fraud(self) -> bool:
        return self.traffic_class.is_fraud


class IdentifierScheme(enum.Enum):
    """How a click is projected onto a duplicate-detection identifier."""

    IP = "ip"
    IP_AD = "ip+ad"
    IP_COOKIE_AD = "ip+cookie+ad"
    COOKIE_AD = "cookie+ad"

    def identify(self, click: Click) -> int:
        if self is IdentifierScheme.IP:
            return combine_fields(click.source_ip)
        if self is IdentifierScheme.IP_AD:
            return combine_fields(click.source_ip, click.ad_id)
        if self is IdentifierScheme.IP_COOKIE_AD:
            return combine_fields(click.source_ip, click.cookie, click.ad_id)
        return combine_fields(click.cookie, click.ad_id)


#: The scheme used throughout examples: a duplicate is "the same visitor
#: clicking the same ad", the natural reading of the paper's Scenario 1/2.
DEFAULT_SCHEME = IdentifierScheme.IP_COOKIE_AD
