"""The click record and identifier schemes.

"Each click has a predefined identifier, such as the source IP address,
or the cookie, etc.  Then each click's identifier is hashed into the
Bloom filter." (§3.1)

A :class:`Click` carries the full pay-per-click context (who clicked
which ad on which publisher's page, when, at what cost, and — for
synthetic traffic — the ground-truth fraud label).  An
:class:`IdentifierScheme` projects a click onto the integer identifier
the duplicate detectors consume; different schemes encode different
duplicate policies (same IP?  same IP+ad?  same cookie+ad?).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer — the stable combiner for identifier fields."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def combine_fields(*fields: int) -> int:
    """Deterministically combine integer fields into one 64-bit identifier.

    Unlike Python's builtin ``hash`` this is stable across processes
    (no ``PYTHONHASHSEED`` dependence), so stored streams replay
    identically.
    """
    value = 0x243F6A8885A308D3  # pi, nothing up the sleeve
    for item in fields:
        value = _mix64(value ^ _mix64(item))
    return value


def _mix64_batch(values):
    """Vectorized :func:`_mix64` (bit-identical: uint64 wraps like the mask)."""
    import numpy as np

    with np.errstate(over="ignore"):
        values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def combine_fields_batch(*field_arrays):
    """Vectorized :func:`combine_fields` over parallel uint64 arrays.

    Element ``i`` of the result equals
    ``combine_fields(field_arrays[0][i], field_arrays[1][i], ...)``
    exactly — the serving client and benchmarks rely on this to project
    whole streams without a per-click Python loop.
    """
    import numpy as np

    value = np.full(
        np.asarray(field_arrays[0]).shape, 0x243F6A8885A308D3, dtype=np.uint64
    )
    for array in field_arrays:
        value = _mix64_batch(value ^ _mix64_batch(np.asarray(array, dtype=np.uint64)))
    return value


class TrafficClass(enum.Enum):
    """Ground-truth provenance of a synthetic click."""

    LEGITIMATE = "legitimate"
    REPEAT_VISITOR = "repeat_visitor"  # the paper's Scenario 1
    SINGLE_ATTACKER = "single_attacker"
    BOTNET = "botnet"  # the paper's Scenario 2
    HIT_INFLATION = "hit_inflation"
    CRAWLER = "crawler"

    @property
    def is_fraud(self) -> bool:
        return self in (
            TrafficClass.SINGLE_ATTACKER,
            TrafficClass.BOTNET,
            TrafficClass.HIT_INFLATION,
        )


@dataclass
class Click:
    """One pay-per-click event in an advertising network.

    All entity references are small integers (ids into the
    :mod:`repro.adnet` registries); ``cost`` is the CPC the publisher
    would bill for this click if accepted as valid.
    """

    timestamp: float
    source_ip: int
    cookie: int
    ad_id: int
    publisher_id: int
    advertiser_id: int
    cost: float = 0.0
    traffic_class: TrafficClass = TrafficClass.LEGITIMATE
    #: Filled in by the billing pipeline: was the click charged?
    charged: Optional[bool] = field(default=None, compare=False)

    @property
    def is_fraud(self) -> bool:
        return self.traffic_class.is_fraud


class IdentifierScheme(enum.Enum):
    """How a click is projected onto a duplicate-detection identifier."""

    IP = "ip"
    IP_AD = "ip+ad"
    IP_COOKIE_AD = "ip+cookie+ad"
    COOKIE_AD = "cookie+ad"

    def identify(self, click: Click) -> int:
        if self is IdentifierScheme.IP:
            return combine_fields(click.source_ip)
        if self is IdentifierScheme.IP_AD:
            return combine_fields(click.source_ip, click.ad_id)
        if self is IdentifierScheme.IP_COOKIE_AD:
            return combine_fields(click.source_ip, click.cookie, click.ad_id)
        return combine_fields(click.cookie, click.ad_id)

    def identify_batch(self, clicks):
        """Vectorized :meth:`identify` over a click sequence.

        Returns a uint64 array, element ``i`` bit-identical to
        ``identify(clicks[i])``.  One pass gathers the scheme's fields
        into arrays; the combine itself is pure numpy.
        """
        import numpy as np

        if self is IdentifierScheme.IP:
            fields = [[click.source_ip for click in clicks]]
        elif self is IdentifierScheme.IP_AD:
            fields = [
                [click.source_ip for click in clicks],
                [click.ad_id for click in clicks],
            ]
        elif self is IdentifierScheme.IP_COOKIE_AD:
            fields = [
                [click.source_ip for click in clicks],
                [click.cookie for click in clicks],
                [click.ad_id for click in clicks],
            ]
        else:
            fields = [
                [click.cookie for click in clicks],
                [click.ad_id for click in clicks],
            ]
        arrays = [np.asarray(column, dtype=np.uint64) for column in fields]
        return combine_fields_batch(*arrays)


#: The scheme used throughout examples: a duplicate is "the same visitor
#: clicking the same ad", the natural reading of the paper's Scenario 1/2.
DEFAULT_SCHEME = IdentifierScheme.IP_COOKIE_AD
