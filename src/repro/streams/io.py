"""Click-stream persistence: CSV and JSON-lines.

Streams written by one process replay bit-identically in another: all
identifier math is seed-stable (:func:`repro.streams.click.combine_fields`)
and these writers round-trip every :class:`Click` field including the
ground-truth traffic class.

Both readers run in one of two modes.  By default the first bad record
raises :class:`~repro.errors.StreamError` naming the file and line — the
right behavior for replaying archives that must be intact.  Passing
``on_malformed`` switches to skip-and-count: each bad record is handed
to the callback as a :class:`MalformedRecord` (line number, raw
content, parse error) and reading continues — the right behavior for a
live ingest feed, where one producer's garbage must not stall billing.
``repro.resilience.DeadLetterSink`` is such a callback.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from ..errors import StreamError
from .click import Click, TrafficClass

_CSV_FIELDS = [
    "timestamp",
    "source_ip",
    "cookie",
    "ad_id",
    "publisher_id",
    "advertiser_id",
    "cost",
    "traffic_class",
]


@dataclass
class MalformedRecord:
    """One unparseable stream record, with enough context to triage it."""

    path: str
    line_number: int
    content: str
    error: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}:{self.line_number}: {self.error}"


#: Callback type for skip-and-count mode.
MalformedHandler = Callable[[MalformedRecord], None]


def click_to_record(click: Click) -> Dict[str, Any]:
    """Project a click onto the plain-JSON dict the writers persist."""
    return {
        "timestamp": click.timestamp,
        "source_ip": click.source_ip,
        "cookie": click.cookie,
        "ad_id": click.ad_id,
        "publisher_id": click.publisher_id,
        "advertiser_id": click.advertiser_id,
        "cost": click.cost,
        "traffic_class": click.traffic_class.value,
    }


def click_from_record(record: Dict[str, Any]) -> Click:
    """Inverse of :func:`click_to_record`; raises ``ValueError``/``KeyError``."""
    return Click(
        timestamp=float(record["timestamp"]),
        source_ip=int(record["source_ip"]),
        cookie=int(record["cookie"]),
        ad_id=int(record["ad_id"]),
        publisher_id=int(record["publisher_id"]),
        advertiser_id=int(record["advertiser_id"]),
        cost=float(record.get("cost", 0.0)),
        traffic_class=TrafficClass(record.get("traffic_class", "legitimate")),
    )


def _handle_malformed(
    on_malformed: Optional[MalformedHandler],
    path: Union[str, Path],
    line_number: int,
    content: str,
    error: Exception,
) -> None:
    if on_malformed is None:
        raise StreamError(f"{path}:{line_number}: {error}") from error
    on_malformed(MalformedRecord(str(path), line_number, content, str(error)))


def write_clicks_csv(path: Union[str, Path], clicks: Iterable[Click]) -> int:
    """Write clicks to CSV; returns the number of records written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for click in clicks:
            writer.writerow(
                [
                    repr(click.timestamp),
                    click.source_ip,
                    click.cookie,
                    click.ad_id,
                    click.publisher_id,
                    click.advertiser_id,
                    repr(click.cost),
                    click.traffic_class.value,
                ]
            )
            count += 1
    return count


def read_clicks_csv(
    path: Union[str, Path],
    on_malformed: Optional[MalformedHandler] = None,
) -> Iterator[Click]:
    """Stream clicks back from a CSV written by :func:`write_clicks_csv`.

    A malformed row raises :class:`StreamError` naming the line, or — with
    ``on_malformed`` — is reported to the callback and skipped.  A wrong
    *header* always raises: that is a wrong-file problem, not a bad-record
    problem.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_FIELDS:
            raise StreamError(f"unexpected CSV header in {path}: {header}")
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(_CSV_FIELDS):
                error = ValueError(
                    f"expected {len(_CSV_FIELDS)} fields, got {len(row)}"
                )
                _handle_malformed(on_malformed, path, line_number, ",".join(row), error)
                continue
            try:
                click = click_from_record(dict(zip(_CSV_FIELDS, row)))
            except (ValueError, KeyError) as error:
                _handle_malformed(on_malformed, path, line_number, ",".join(row), error)
                continue
            yield click


def write_clicks_jsonl(path: Union[str, Path], clicks: Iterable[Click]) -> int:
    """Write clicks as JSON lines; returns the number of records written."""
    count = 0
    with open(path, "w") as handle:
        for click in clicks:
            handle.write(
                json.dumps(click_to_record(click), separators=(",", ":")) + "\n"
            )
            count += 1
    return count


def read_clicks_jsonl(
    path: Union[str, Path],
    on_malformed: Optional[MalformedHandler] = None,
) -> Iterator[Click]:
    """Stream clicks back from a JSONL file.

    Malformed lines raise :class:`StreamError` with the line number, or —
    with ``on_malformed`` — are reported to the callback and skipped.
    """
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                click = click_from_record(json.loads(line))
            except (ValueError, KeyError, TypeError) as error:
                _handle_malformed(on_malformed, path, line_number, line, error)
                continue
            yield click


def load_clicks(
    path: Union[str, Path],
    on_malformed: Optional[MalformedHandler] = None,
) -> List[Click]:
    """Load a whole stream file, dispatching on extension (.csv / .jsonl)."""
    path = Path(path)
    if path.suffix == ".csv":
        return list(read_clicks_csv(path, on_malformed))
    if path.suffix in (".jsonl", ".ndjson"):
        return list(read_clicks_jsonl(path, on_malformed))
    raise StreamError(f"unknown stream format: {path.suffix!r}")


def read_batches(
    path: Union[str, Path],
    batch_size: int,
    on_malformed: Optional[MalformedHandler] = None,
) -> Iterator[List[Click]]:
    """Stream a file as lists of at most ``batch_size`` clicks.

    The natural feed for the vectorized and multi-process detection
    paths (``process_batch`` wants arrays, not single clicks) without
    loading the whole file like :func:`load_clicks`.  Dispatches on
    extension like :func:`load_clicks` and inherits the readers'
    malformed-record handling: strict by default (:class:`StreamError`
    naming file and line), skip-and-count with ``on_malformed`` —
    skipped records simply never appear in any batch.

    Batch-shape contract (shared with the serve coalescer's flush
    semantics, :class:`repro.serve.Coalescer`): every yielded batch is
    non-empty; every batch except possibly the last holds exactly
    ``batch_size`` clicks; the final batch holds the ``1 ..
    batch_size`` leftover clicks *as-is* — short, never padded with
    synthetic records and never silently dropped.  Concatenating the
    batches therefore reproduces the stream exactly, and a consumer
    sized for ``batch_size`` never sees more.  An empty stream yields
    no batches at all (just as a drained coalescer flushes nothing).
    """
    if batch_size < 1:
        raise StreamError(f"batch_size must be >= 1, got {batch_size}")
    path = Path(path)
    if path.suffix == ".csv":
        clicks = read_clicks_csv(path, on_malformed)
    elif path.suffix in (".jsonl", ".ndjson"):
        clicks = read_clicks_jsonl(path, on_malformed)
    else:
        raise StreamError(f"unknown stream format: {path.suffix!r}")
    batch: List[Click] = []
    for click in clicks:
        batch.append(click)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        # The final short batch: exactly the leftovers, unpadded — the
        # same shape a serve-side coalescer emits on drain/deadline.
        yield batch
