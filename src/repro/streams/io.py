"""Click-stream persistence: CSV and JSON-lines.

Streams written by one process replay bit-identically in another: all
identifier math is seed-stable (:func:`repro.streams.click.combine_fields`)
and these writers round-trip every :class:`Click` field including the
ground-truth traffic class.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..errors import StreamError
from .click import Click, TrafficClass

_CSV_FIELDS = [
    "timestamp",
    "source_ip",
    "cookie",
    "ad_id",
    "publisher_id",
    "advertiser_id",
    "cost",
    "traffic_class",
]


def write_clicks_csv(path: Union[str, Path], clicks: Iterable[Click]) -> int:
    """Write clicks to CSV; returns the number of records written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for click in clicks:
            writer.writerow(
                [
                    repr(click.timestamp),
                    click.source_ip,
                    click.cookie,
                    click.ad_id,
                    click.publisher_id,
                    click.advertiser_id,
                    repr(click.cost),
                    click.traffic_class.value,
                ]
            )
            count += 1
    return count


def read_clicks_csv(path: Union[str, Path]) -> Iterator[Click]:
    """Stream clicks back from a CSV written by :func:`write_clicks_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_FIELDS:
            raise StreamError(f"unexpected CSV header in {path}: {header}")
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(_CSV_FIELDS):
                raise StreamError(f"{path}:{line_number}: expected "
                                  f"{len(_CSV_FIELDS)} fields, got {len(row)}")
            try:
                yield Click(
                    timestamp=float(row[0]),
                    source_ip=int(row[1]),
                    cookie=int(row[2]),
                    ad_id=int(row[3]),
                    publisher_id=int(row[4]),
                    advertiser_id=int(row[5]),
                    cost=float(row[6]),
                    traffic_class=TrafficClass(row[7]),
                )
            except (ValueError, KeyError) as error:
                raise StreamError(f"{path}:{line_number}: {error}") from error


def write_clicks_jsonl(path: Union[str, Path], clicks: Iterable[Click]) -> int:
    """Write clicks as JSON lines; returns the number of records written."""
    count = 0
    with open(path, "w") as handle:
        for click in clicks:
            record = {
                "timestamp": click.timestamp,
                "source_ip": click.source_ip,
                "cookie": click.cookie,
                "ad_id": click.ad_id,
                "publisher_id": click.publisher_id,
                "advertiser_id": click.advertiser_id,
                "cost": click.cost,
                "traffic_class": click.traffic_class.value,
            }
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def read_clicks_jsonl(path: Union[str, Path]) -> Iterator[Click]:
    """Stream clicks back from a JSONL file."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield Click(
                    timestamp=float(record["timestamp"]),
                    source_ip=int(record["source_ip"]),
                    cookie=int(record["cookie"]),
                    ad_id=int(record["ad_id"]),
                    publisher_id=int(record["publisher_id"]),
                    advertiser_id=int(record["advertiser_id"]),
                    cost=float(record.get("cost", 0.0)),
                    traffic_class=TrafficClass(
                        record.get("traffic_class", "legitimate")
                    ),
                )
            except (ValueError, KeyError) as error:
                raise StreamError(f"{path}:{line_number}: {error}") from error


def load_clicks(path: Union[str, Path]) -> List[Click]:
    """Load a whole stream file, dispatching on extension (.csv / .jsonl)."""
    path = Path(path)
    if path.suffix == ".csv":
        return list(read_clicks_csv(path))
    if path.suffix in (".jsonl", ".ndjson"):
        return list(read_clicks_jsonl(path))
    raise StreamError(f"unknown stream format: {path.suffix!r}")
