"""Synthetic identifier streams — including the paper's evaluation workload.

§5: "we simulate our algorithms by processing synthetic click streams
which have no duplicate click ... We generated 20·N distinct click
identifiers.  We counted the false positives within the last 10·N
clicks."  :func:`distinct_stream` builds exactly that workload;
:func:`duplicated_stream` builds streams with *controlled* duplicate
injection (known lag distribution) for correctness experiments, where
the exact baselines provide ground-truth labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

_MASK64 = (1 << 64) - 1


def distinct_stream(length: int, seed: int = 0) -> "np.ndarray":
    """``length`` pairwise-distinct 64-bit identifiers (uint64).

    Identifiers are a seeded affine-mixed counter: distinct by
    construction (the map is a bijection on 64-bit integers), with none
    of the structure of raw sequential ints.
    """
    if length < 0:
        raise ConfigurationError(f"length must be >= 0, got {length}")
    counter = np.arange(length, dtype=np.uint64)
    # Affine bijection: odd multiplier, seed-derived offset.
    multiplier = np.uint64(0x9E3779B97F4A7C15)
    offset = np.uint64((seed * 0xD1342543DE82EF95 + 0x2545F4914F6CDD1D) & _MASK64)
    with np.errstate(over="ignore"):
        return counter * multiplier + offset


@dataclass(frozen=True)
class DuplicateSpec:
    """Controls duplicate injection for :func:`duplicated_stream`.

    ``rate`` is the probability each emitted element repeats an earlier
    one; ``max_lag`` bounds how far back (in arrivals) the repeated
    element may lie.  Lags are drawn uniformly from ``[1, max_lag]``, so
    choosing ``max_lag`` above a detector's window size exercises both
    in-window duplicates (must be caught) and expired ones (must not
    be — per Definition 1 they are fresh valid clicks again).
    """

    rate: float = 0.2
    max_lag: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_lag < 1:
            raise ConfigurationError(f"max_lag must be >= 1, got {self.max_lag}")


def duplicated_stream(
    length: int,
    spec: Optional[DuplicateSpec] = None,
    seed: int = 0,
) -> "np.ndarray":
    """A stream of identifiers with duplicates injected at known lags.

    Returns a uint64 array.  Elements are fresh distinct identifiers
    with probability ``1 - spec.rate``; otherwise they copy the
    identifier that arrived ``lag`` positions earlier with ``lag``
    uniform in ``[1, spec.max_lag]`` (clamped to the stream prefix).
    """
    if spec is None:
        spec = DuplicateSpec()
    fresh = distinct_stream(length, seed)
    if length == 0:
        return fresh
    rng = np.random.default_rng(seed + 0x9D5)
    duplicate_mask = rng.random(length) < spec.rate
    duplicate_mask[0] = False
    lags = rng.integers(1, spec.max_lag + 1, size=length)
    stream = fresh.copy()
    for position in np.nonzero(duplicate_mask)[0]:
        lag = min(int(lags[position]), int(position))
        stream[position] = stream[position - lag]
    return stream


def adversarial_burst_stream(
    length: int,
    burst_identifier: int,
    burst_every: int,
    seed: int = 0,
) -> "np.ndarray":
    """Distinct background traffic with one identifier repeating periodically.

    Models the crudest click-fraud pattern: an attacker re-clicking one
    ad link every ``burst_every`` arrivals amid legitimate distinct
    traffic.  Useful for demonstrating window-threshold semantics: with
    window ``N``, the repeats are duplicates iff ``burst_every <= N``.
    """
    if burst_every < 1:
        raise ConfigurationError(f"burst_every must be >= 1, got {burst_every}")
    stream = distinct_stream(length, seed)
    stream[::burst_every] = np.uint64(burst_identifier & _MASK64)
    return stream
