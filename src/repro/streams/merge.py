"""Merging click sources into one timestamp-ordered stream.

An advertising network's click stream is the interleaving of many
sources: legitimate visitors across publishers, attack campaigns,
crawlers.  :func:`merge_streams` lazily merges any number of
individually-ordered click iterables; :func:`interleave_batches`
handles the common generate-then-merge case.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List

from ..errors import StreamError
from .click import Click


def merge_streams(*sources: Iterable[Click]) -> Iterator[Click]:
    """Merge timestamp-ordered click sources into one ordered stream.

    Lazy (works with generators) and stable; verifies output
    monotonicity, raising :class:`~repro.errors.StreamError` if any
    source violates its ordering contract.
    """
    merged = heapq.merge(*sources, key=lambda click: click.timestamp)
    last = float("-inf")
    for click in merged:
        if click.timestamp < last:
            raise StreamError(
                f"source stream out of order at t={click.timestamp} (seen {last})"
            )
        last = click.timestamp
        yield click


def interleave_batches(batches: Iterable[List[Click]]) -> List[Click]:
    """Merge pre-materialized click batches into one sorted list."""
    everything: List[Click] = []
    for batch in batches:
        everything.extend(batch)
    everything.sort(key=lambda click: click.timestamp)
    return everything
