"""Arrival-time processes for time-based click streams.

The time-based window detectors (:class:`TimeBasedGBFDetector`,
:class:`TimeBasedTBFDetector`) need realistic inter-arrival behaviour:
steady Poisson traffic, bursty bot traffic, and daily cycles.  Each
process yields monotone non-decreasing timestamps.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError


class PoissonArrivals:
    """Homogeneous Poisson process at ``rate`` events per time unit."""

    def __init__(self, rate: float, seed: int = 0, start: float = 0.0) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self.start = start
        self._rng = np.random.default_rng(seed)

    def take(self, count: int) -> "np.ndarray":
        """Timestamps of the next ``count`` arrivals."""
        gaps = self._rng.exponential(1.0 / self.rate, size=count)
        return self.start + np.cumsum(gaps)

    def __iter__(self) -> Iterator[float]:
        now = self.start
        while True:
            now += float(self._rng.exponential(1.0 / self.rate))
            yield now


class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (quiet/burst).

    Bot traffic in the wild comes in bursts: long quiet periods at
    ``base_rate`` punctuated by bursts at ``burst_rate``.  State flips
    are exponential with mean ``mean_quiet`` / ``mean_burst`` durations.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        mean_quiet: float,
        mean_burst: float,
        seed: int = 0,
        start: float = 0.0,
    ) -> None:
        if min(base_rate, burst_rate, mean_quiet, mean_burst) <= 0:
            raise ConfigurationError("all BurstyArrivals parameters must be > 0")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.mean_quiet = mean_quiet
        self.mean_burst = mean_burst
        self.start = start
        self._rng = np.random.default_rng(seed)

    def take(self, count: int) -> "np.ndarray":
        rng = self._rng
        timestamps = np.empty(count, dtype=np.float64)
        now = self.start
        bursting = False
        state_left = float(rng.exponential(self.mean_quiet))
        produced = 0
        while produced < count:
            rate = self.burst_rate if bursting else self.base_rate
            gap = float(rng.exponential(1.0 / rate))
            if gap >= state_left:
                now += state_left
                bursting = not bursting
                state_left = float(
                    rng.exponential(self.mean_burst if bursting else self.mean_quiet)
                )
                continue
            now += gap
            state_left -= gap
            timestamps[produced] = now
            produced += 1
        return timestamps


class DiurnalArrivals:
    """Inhomogeneous Poisson process with a daily sinusoidal rate.

    ``rate(t) = mean_rate * (1 + amplitude * sin(2*pi*t/period))``,
    sampled by thinning.  ``amplitude`` must lie in [0, 1).
    """

    def __init__(
        self,
        mean_rate: float,
        amplitude: float = 0.5,
        period: float = 86_400.0,
        seed: int = 0,
        start: float = 0.0,
    ) -> None:
        if mean_rate <= 0:
            raise ConfigurationError(f"mean_rate must be > 0, got {mean_rate}")
        if not 0 <= amplitude < 1:
            raise ConfigurationError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.mean_rate = mean_rate
        self.amplitude = amplitude
        self.period = period
        self.start = start
        self._rng = np.random.default_rng(seed)

    def _rate_at(self, timestamp: float) -> float:
        phase = 2.0 * math.pi * timestamp / self.period
        return self.mean_rate * (1.0 + self.amplitude * math.sin(phase))

    def take(self, count: int) -> "np.ndarray":
        rng = self._rng
        max_rate = self.mean_rate * (1.0 + self.amplitude)
        timestamps = np.empty(count, dtype=np.float64)
        now = self.start
        produced = 0
        while produced < count:
            now += float(rng.exponential(1.0 / max_rate))
            if rng.random() * max_rate <= self._rate_at(now):
                timestamps[produced] = now
                produced += 1
        return timestamps
