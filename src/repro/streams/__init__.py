"""Click streams: records, synthetic workloads, attacks, persistence."""

from .arrival import BurstyArrivals, DiurnalArrivals, PoissonArrivals
from .attacks import (
    BotnetCampaign,
    CrawlerTraffic,
    HitInflationCampaign,
    RotatingIdentityCampaign,
    SingleAttackerCampaign,
)
from .click import (
    DEFAULT_SCHEME,
    Click,
    IdentifierScheme,
    TrafficClass,
    combine_fields,
    combine_fields_batch,
)
from .generators import (
    DuplicateSpec,
    adversarial_burst_stream,
    distinct_stream,
    duplicated_stream,
)
from .io import (
    MalformedRecord,
    click_from_record,
    click_to_record,
    load_clicks,
    read_batches,
    read_clicks_csv,
    read_clicks_jsonl,
    write_clicks_csv,
    write_clicks_jsonl,
)
from .merge import interleave_batches, merge_streams
from .zipf import ZipfSampler

__all__ = [
    "Click",
    "TrafficClass",
    "IdentifierScheme",
    "DEFAULT_SCHEME",
    "combine_fields",
    "combine_fields_batch",
    "distinct_stream",
    "duplicated_stream",
    "adversarial_burst_stream",
    "DuplicateSpec",
    "ZipfSampler",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "SingleAttackerCampaign",
    "RotatingIdentityCampaign",
    "BotnetCampaign",
    "HitInflationCampaign",
    "CrawlerTraffic",
    "MalformedRecord",
    "click_to_record",
    "click_from_record",
    "write_clicks_csv",
    "read_clicks_csv",
    "write_clicks_jsonl",
    "read_clicks_jsonl",
    "load_clicks",
    "read_batches",
    "merge_streams",
    "interleave_batches",
]
