"""Deterministic fault injection for recovery testing.

A recovery path that is never exercised is a recovery path that does
not work.  This module manufactures the three failures a stream
processor actually meets — a process dying mid-stream, checkpoint bytes
rotting on disk, and clicks arriving late or out of order — as *pure,
seeded* transformations, so a test can kill the pipeline at click 137,
corrupt generation 2 of the checkpoint store, replay the identical
scenario, and assert bit-identical recovery.

Crashes are delivered as :class:`InjectedCrash`, a ``ReproError``
subclass that production code never raises or catches: if a recovery
test sees one escape the supervisor, the kill worked; if library code
swallows it, the test fails loudly.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..errors import ConfigurationError, ReproError
from ..streams.click import Click

#: Byte-corruption modes understood by :meth:`FaultInjector.corrupt`.
CORRUPTION_MODES = ("flip-byte", "truncate", "zero-prefix")


class InjectedFault(ReproError, RuntimeError):
    """Base class for failures manufactured by :class:`FaultInjector`."""


class InjectedCrash(InjectedFault):
    """The simulated process kill: raised from inside the click stream."""


class EngineFaultHooks:
    """Deterministic faults for the serve engine task (chaos testing).

    Passed to :class:`repro.serve.server.ClickIngestServer` as
    ``fault_hooks``; the server invokes :meth:`before_group` (awaited)
    in front of every coalesced engine group and :meth:`on_checkpoint`
    in front of every checkpoint write.  The schedule is by *index* —
    group ``0`` is the first group the engine ever coalesces,
    checkpoint ``0`` the first write attempt — so a seeded soak replays
    the identical fault sequence every run.

    * ``fail_groups`` — raise :class:`InjectedFault` before that group:
      the engine task dies with the group requeued untouched; the
      server's watchdog must restart it with zero click loss.
    * ``stall_groups`` — ``{index: seconds}``: sleep (asyncio) before
      that group, impersonating a wedged detector; the watchdog must
      cancel and restart the engine, again with the group requeued.
    * ``fail_checkpoints`` — raise from that checkpoint write attempt:
      the server must survive (retry or fall back to the previous
      generation), never crash the drain.
    """

    def __init__(
        self,
        fail_groups: Iterable[int] = (),
        stall_groups: Optional[Dict[int, float]] = None,
        fail_checkpoints: Iterable[int] = (),
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.fail_groups = frozenset(fail_groups)
        self.stall_groups = dict(stall_groups or {})
        self.fail_checkpoints = frozenset(fail_checkpoints)
        self._injector = injector
        self.groups_seen = 0
        self.checkpoints_seen = 0

    async def before_group(self, group) -> None:
        import asyncio

        index = self.groups_seen
        self.groups_seen += 1
        stall = self.stall_groups.get(index)
        if stall is not None:
            if self._injector is not None:
                self._injector._count_fault("engine-stall")
            await asyncio.sleep(stall)
        if index in self.fail_groups:
            if self._injector is not None:
                self._injector._count_fault("engine-fail")
            raise InjectedFault(f"injected engine failure before group {index}")

    def on_checkpoint(self) -> None:
        index = self.checkpoints_seen
        self.checkpoints_seen += 1
        if index in self.fail_checkpoints:
            if self._injector is not None:
                self._injector._count_fault("checkpoint-fail")
            raise InjectedFault(
                f"injected checkpoint-write failure at attempt {index}"
            )


class ChaosDetector:
    """Wrap a detector so scheduled batch calls raise :class:`InjectedFault`.

    ``fail_calls`` indexes the combined sequence of ``process_batch`` /
    ``process_batch_at`` invocations.  Everything else — checkpointing,
    telemetry, window introspection — delegates to the wrapped
    detector, so the wrapper slots anywhere the real one does.  The
    serve engine must answer the affected group with ``ERROR`` frames
    and keep serving (the per-group never-crash discipline), which
    ``tests/test_chaos.py`` asserts.
    """

    def __init__(self, detector, fail_calls: Iterable[int] = ()) -> None:
        self._detector = detector
        self._fail_calls = frozenset(fail_calls)
        self._calls = 0

    def _maybe_fail(self) -> None:
        index = self._calls
        self._calls += 1
        if index in self._fail_calls:
            raise InjectedFault(f"injected detector failure at batch call {index}")

    def process_batch(self, identifiers):
        self._maybe_fail()
        return self._detector.process_batch(identifiers)

    def process_batch_at(self, identifiers, timestamps):
        self._maybe_fail()
        return self._detector.process_batch_at(identifiers, timestamps)

    def __getattr__(self, name):
        return getattr(self._detector, name)


class FaultInjector:
    """Seeded factory for crash, corruption, and disorder faults.

    Every method derives its randomness from ``seed`` plus its own
    arguments, never from global state, so the same injector replays
    the same faults — determinism is the whole point.
    """

    def __init__(self, seed: int = 0, registry=None) -> None:
        self.seed = seed
        self._fault_counter = (
            registry.counter(
                "repro_faults_injected_total",
                "Faults manufactured by the injector, by kind",
                labels=("kind",),
            )
            if registry is not None
            else None
        )

    def _count_fault(self, kind: str) -> None:
        if self._fault_counter is not None:
            self._fault_counter.labels(kind=kind).inc()

    def _rng(self, *salt: object) -> random.Random:
        return random.Random((self.seed, *salt).__repr__())

    # ------------------------------------------------------------------
    # Process kills
    # ------------------------------------------------------------------

    def crash_stream(
        self, clicks: Iterable[Click], crash_at: int
    ) -> Iterator[Click]:
        """Yield ``clicks`` but raise :class:`InjectedCrash` at index ``crash_at``.

        The crash fires *before* click ``crash_at`` is delivered —
        exactly ``crash_at`` clicks reach the consumer, mimicking a kill
        between two arrivals.
        """
        if crash_at < 0:
            raise ConfigurationError(f"crash_at must be >= 0, got {crash_at}")
        for index, click in enumerate(clicks):
            if index == crash_at:
                self._count_fault("crash")
                raise InjectedCrash(f"injected crash before click {crash_at}")
            yield click

    # ------------------------------------------------------------------
    # Checkpoint rot
    # ------------------------------------------------------------------

    def corrupt(self, blob: bytes, mode: str = "flip-byte") -> bytes:
        """Damage checkpoint bytes deterministically.

        ``flip-byte`` inverts one seeded byte (CRC catches it);
        ``truncate`` cuts the blob at a seeded offset past the magic;
        ``zero-prefix`` wipes the magic and header length (unreadable
        frame).  All three must make loading fail with
        :class:`~repro.errors.CheckpointError`, never load quietly.
        """
        if mode not in CORRUPTION_MODES:
            raise ConfigurationError(
                f"unknown corruption mode {mode!r}; choose from {CORRUPTION_MODES}"
            )
        if not blob:
            return blob
        self._count_fault("corrupt")
        rng = self._rng("corrupt", mode, len(blob))
        if mode == "flip-byte":
            damaged = bytearray(blob)
            damaged[rng.randrange(len(damaged))] ^= 0xFF
            return bytes(damaged)
        if mode == "truncate":
            if len(blob) <= 9:
                return blob[: len(blob) // 2]
            return blob[: rng.randrange(8, len(blob) - 1)]
        damaged = bytearray(blob)
        damaged[: min(12, len(damaged))] = b"\x00" * min(12, len(damaged))
        return bytes(damaged)

    def corrupt_file(self, path: Union[str, Path], mode: str = "flip-byte") -> None:
        """In-place :meth:`corrupt` of a checkpoint file."""
        path = Path(path)
        path.write_bytes(self.corrupt(path.read_bytes(), mode))

    # ------------------------------------------------------------------
    # Stream disorder
    # ------------------------------------------------------------------

    def reorder_stream(
        self, clicks: Iterable[Click], max_displacement: int
    ) -> Iterator[Click]:
        """Scramble arrival order within blocks of ``max_displacement + 1``.

        Timestamps are untouched, so the output interleaves clicks whose
        clocks regress by up to the block span — the fan-in disorder a
        :class:`~repro.resilience.ReorderBuffer` of capacity
        ``>= max_displacement`` fully repairs.
        """
        if max_displacement < 0:
            raise ConfigurationError(
                f"max_displacement must be >= 0, got {max_displacement}"
            )
        block: List[Click] = []
        block_index = 0
        for click in clicks:
            block.append(click)
            if len(block) > max_displacement:
                self._rng("reorder", block_index).shuffle(block)
                self._count_fault("reorder")
                yield from block
                block = []
                block_index += 1
        if block:
            self._rng("reorder", block_index).shuffle(block)
            self._count_fault("reorder")
            yield from block

    def delay_stream(
        self,
        clicks: Iterable[Click],
        hold_back: int,
        probability: float = 0.1,
    ) -> Iterator[Click]:
        """Randomly hold clicks back ``hold_back`` positions (straggler model).

        Each click is delayed independently with ``probability``; a
        delayed click is emitted after the next ``hold_back`` undelayed
        clicks pass it, its timestamp unchanged — a single slow
        collector among fast ones.
        """
        if hold_back < 0:
            raise ConfigurationError(f"hold_back must be >= 0, got {hold_back}")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        rng = self._rng("delay", hold_back)
        #: (remaining passes, click) for each straggler in flight
        held: List[List[object]] = []
        for click in clicks:
            if rng.random() < probability:
                held.append([hold_back, click])
                self._count_fault("delay")
                continue
            yield click
            ready: List[Click] = []
            for entry in held:
                entry[0] -= 1
                if entry[0] <= 0:
                    ready.append(entry[1])
            if ready:
                held = [entry for entry in held if entry[0] > 0]
                yield from ready
        for _, click in held:
            yield click
