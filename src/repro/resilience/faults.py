"""Deterministic fault injection for recovery testing.

A recovery path that is never exercised is a recovery path that does
not work.  This module manufactures the three failures a stream
processor actually meets — a process dying mid-stream, checkpoint bytes
rotting on disk, and clicks arriving late or out of order — as *pure,
seeded* transformations, so a test can kill the pipeline at click 137,
corrupt generation 2 of the checkpoint store, replay the identical
scenario, and assert bit-identical recovery.

Crashes are delivered as :class:`InjectedCrash`, a ``ReproError``
subclass that production code never raises or catches: if a recovery
test sees one escape the supervisor, the kill worked; if library code
swallows it, the test fails loudly.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..errors import ConfigurationError, ReproError
from ..streams.click import Click

#: Byte-corruption modes understood by :meth:`FaultInjector.corrupt`.
CORRUPTION_MODES = ("flip-byte", "truncate", "zero-prefix")


class InjectedFault(ReproError, RuntimeError):
    """Base class for failures manufactured by :class:`FaultInjector`."""


class InjectedCrash(InjectedFault):
    """The simulated process kill: raised from inside the click stream."""


class FaultInjector:
    """Seeded factory for crash, corruption, and disorder faults.

    Every method derives its randomness from ``seed`` plus its own
    arguments, never from global state, so the same injector replays
    the same faults — determinism is the whole point.
    """

    def __init__(self, seed: int = 0, registry=None) -> None:
        self.seed = seed
        self._fault_counter = (
            registry.counter(
                "repro_faults_injected_total",
                "Faults manufactured by the injector, by kind",
                labels=("kind",),
            )
            if registry is not None
            else None
        )

    def _count_fault(self, kind: str) -> None:
        if self._fault_counter is not None:
            self._fault_counter.labels(kind=kind).inc()

    def _rng(self, *salt: object) -> random.Random:
        return random.Random((self.seed, *salt).__repr__())

    # ------------------------------------------------------------------
    # Process kills
    # ------------------------------------------------------------------

    def crash_stream(
        self, clicks: Iterable[Click], crash_at: int
    ) -> Iterator[Click]:
        """Yield ``clicks`` but raise :class:`InjectedCrash` at index ``crash_at``.

        The crash fires *before* click ``crash_at`` is delivered —
        exactly ``crash_at`` clicks reach the consumer, mimicking a kill
        between two arrivals.
        """
        if crash_at < 0:
            raise ConfigurationError(f"crash_at must be >= 0, got {crash_at}")
        for index, click in enumerate(clicks):
            if index == crash_at:
                self._count_fault("crash")
                raise InjectedCrash(f"injected crash before click {crash_at}")
            yield click

    # ------------------------------------------------------------------
    # Checkpoint rot
    # ------------------------------------------------------------------

    def corrupt(self, blob: bytes, mode: str = "flip-byte") -> bytes:
        """Damage checkpoint bytes deterministically.

        ``flip-byte`` inverts one seeded byte (CRC catches it);
        ``truncate`` cuts the blob at a seeded offset past the magic;
        ``zero-prefix`` wipes the magic and header length (unreadable
        frame).  All three must make loading fail with
        :class:`~repro.errors.CheckpointError`, never load quietly.
        """
        if mode not in CORRUPTION_MODES:
            raise ConfigurationError(
                f"unknown corruption mode {mode!r}; choose from {CORRUPTION_MODES}"
            )
        if not blob:
            return blob
        self._count_fault("corrupt")
        rng = self._rng("corrupt", mode, len(blob))
        if mode == "flip-byte":
            damaged = bytearray(blob)
            damaged[rng.randrange(len(damaged))] ^= 0xFF
            return bytes(damaged)
        if mode == "truncate":
            if len(blob) <= 9:
                return blob[: len(blob) // 2]
            return blob[: rng.randrange(8, len(blob) - 1)]
        damaged = bytearray(blob)
        damaged[: min(12, len(damaged))] = b"\x00" * min(12, len(damaged))
        return bytes(damaged)

    def corrupt_file(self, path: Union[str, Path], mode: str = "flip-byte") -> None:
        """In-place :meth:`corrupt` of a checkpoint file."""
        path = Path(path)
        path.write_bytes(self.corrupt(path.read_bytes(), mode))

    # ------------------------------------------------------------------
    # Stream disorder
    # ------------------------------------------------------------------

    def reorder_stream(
        self, clicks: Iterable[Click], max_displacement: int
    ) -> Iterator[Click]:
        """Scramble arrival order within blocks of ``max_displacement + 1``.

        Timestamps are untouched, so the output interleaves clicks whose
        clocks regress by up to the block span — the fan-in disorder a
        :class:`~repro.resilience.ReorderBuffer` of capacity
        ``>= max_displacement`` fully repairs.
        """
        if max_displacement < 0:
            raise ConfigurationError(
                f"max_displacement must be >= 0, got {max_displacement}"
            )
        block: List[Click] = []
        block_index = 0
        for click in clicks:
            block.append(click)
            if len(block) > max_displacement:
                self._rng("reorder", block_index).shuffle(block)
                self._count_fault("reorder")
                yield from block
                block = []
                block_index += 1
        if block:
            self._rng("reorder", block_index).shuffle(block)
            self._count_fault("reorder")
            yield from block

    def delay_stream(
        self,
        clicks: Iterable[Click],
        hold_back: int,
        probability: float = 0.1,
    ) -> Iterator[Click]:
        """Randomly hold clicks back ``hold_back`` positions (straggler model).

        Each click is delayed independently with ``probability``; a
        delayed click is emitted after the next ``hold_back`` undelayed
        clicks pass it, its timestamp unchanged — a single slow
        collector among fast ones.
        """
        if hold_back < 0:
            raise ConfigurationError(f"hold_back must be >= 0, got {hold_back}")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        rng = self._rng("delay", hold_back)
        #: (remaining passes, click) for each straggler in flight
        held: List[List[object]] = []
        for click in clicks:
            if rng.random() < probability:
                held.append([hold_back, click])
                self._count_fault("delay")
                continue
            yield click
            ready: List[Click] = []
            for entry in held:
                entry[0] -= 1
                if entry[0] <= 0:
                    ready.append(entry[1])
            if ready:
                held = [entry for entry in held if entry[0] > 0]
                yield from ready
        for _, click in held:
            yield click
