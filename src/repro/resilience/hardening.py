"""Input hardening at the pipeline boundary: quarantine and reordering.

Production click feeds are hostile in two mundane ways long before any
fraud: producers emit garbage records, and fan-in across collectors
delivers clicks slightly out of timestamp order.  The stock pipeline
treats both as fatal — a bad record raises :class:`StreamError` in the
reader, and a single regressed timestamp kills every time-based
detector mid-window.  This module absorbs both at the boundary:

* :class:`DeadLetterSink` quarantines anything unprocessable — a
  malformed reader record, an invalid click, a hopelessly late arrival —
  keeping a bounded sample and full counters so the stream keeps
  flowing *and* the operator can see what it shed (a rising quarantine
  rate is itself an attack signal: garbage-flooding a collector is the
  cheapest way to hide a fraud burst).
* :class:`ReorderBuffer` restores timestamp order for displacements up
  to its capacity and clamps residual skew up to an explicit tolerance;
  only clicks later than *both* bounds are dead-lettered.  The buffer
  trades latency (up to ``capacity`` clicks of delay) for order — the
  same trade every stream processor's watermark makes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..streams.click import Click


@dataclass
class DeadLetter:
    """One quarantined item and why it was shed."""

    reason: str
    item: Any


class DeadLetterSink:
    """Bounded quarantine for records the pipeline refuses to process.

    Counts every dead letter by reason but retains at most
    ``sample_size`` items — the counters are the monitoring signal, the
    samples are for debugging, and an unbounded quarantine would just
    move the outage from the detector to the heap.

    Instances are callable with a single record so they plug directly
    into the readers' ``on_malformed`` hook
    (:func:`repro.streams.read_clicks_jsonl`).
    """

    def __init__(self, sample_size: int = 100) -> None:
        if sample_size < 0:
            raise ConfigurationError(
                f"sample_size must be >= 0, got {sample_size}"
            )
        self.sample_size = sample_size
        self.samples: List[DeadLetter] = []
        self.counts: Dict[str, int] = {}

    def record(self, item: Any, reason: str = "malformed") -> None:
        self.counts[reason] = self.counts.get(reason, 0) + 1
        if len(self.samples) < self.sample_size:
            self.samples.append(DeadLetter(reason, item))

    __call__ = record

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> Dict[str, int]:
        return dict(self.counts)

    def __len__(self) -> int:
        return self.total


@dataclass
class ReorderStats:
    """What the buffer did to the stream so far."""

    emitted: int = 0
    reordered: int = 0  # emitted in a different relative order than received
    clamped: int = 0  # timestamp lifted to the watermark (within tolerance)
    dropped: int = 0  # later than capacity + tolerance; dead-lettered


class ReorderBuffer:
    """Bounded min-heap that re-sorts clicks by timestamp before the detector.

    Holds up to ``capacity`` clicks; each arrival beyond that emits the
    earliest buffered click.  Any displacement of at most ``capacity``
    positions is fully repaired.  A click that still regresses past the
    emitted watermark is clamped to it when the skew is within
    ``skew_tolerance`` (time-based detectors then see a monotonic clock
    and at worst age the click by the tolerance), and dead-lettered
    beyond that — an explicit bound, not a silent `StreamError`.
    """

    def __init__(
        self,
        capacity: int,
        skew_tolerance: float = 0.0,
        dead_letters: Optional[DeadLetterSink] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if skew_tolerance < 0:
            raise ConfigurationError(
                f"skew_tolerance must be >= 0, got {skew_tolerance}"
            )
        self.capacity = capacity
        self.skew_tolerance = skew_tolerance
        self.dead_letters = dead_letters
        self.stats = ReorderStats()
        self._heap: List[Tuple[float, int, Click]] = []
        self._seq = 0
        self._watermark: Optional[float] = None

    def push(self, click: Click) -> List[Click]:
        """Buffer one click; returns the clicks released by this arrival."""
        heapq.heappush(self._heap, (click.timestamp, self._seq, click))
        self._seq += 1
        released: List[Click] = []
        while len(self._heap) > self.capacity:
            emitted = self._emit_min()
            if emitted is not None:
                released.append(emitted)
        return released

    def flush(self) -> List[Click]:
        """Drain everything still buffered, in timestamp order."""
        released: List[Click] = []
        while self._heap:
            emitted = self._emit_min()
            if emitted is not None:
                released.append(emitted)
        return released

    def _emit_min(self) -> Optional[Click]:
        oldest_seq = min(entry[1] for entry in self._heap)
        timestamp, seq, click = heapq.heappop(self._heap)
        if seq != oldest_seq:
            # An earlier arrival is still buffered: this emission repaired
            # an out-of-order pair.
            self.stats.reordered += 1
        if self._watermark is not None and timestamp < self._watermark:
            if self._watermark - timestamp > self.skew_tolerance:
                self.stats.dropped += 1
                if self.dead_letters is not None:
                    self.dead_letters.record(click, reason="late")
                return None
            click = replace(click, timestamp=self._watermark)
            self.stats.clamped += 1
        else:
            self._watermark = timestamp
        self.stats.emitted += 1
        return click

    # -- checkpoint plumbing (used by SupervisedPipeline) --------------

    def pending(self) -> List[Click]:
        """Buffered clicks in emission order (for checkpointing)."""
        return [click for _, _, click in sorted(self._heap)]

    @property
    def watermark(self) -> Optional[float]:
        return self._watermark

    def restore(self, clicks: List[Click], watermark: Optional[float]) -> None:
        """Reload buffered clicks saved by :meth:`pending`."""
        self._heap = []
        self._seq = 0
        for click in clicks:
            heapq.heappush(self._heap, (click.timestamp, self._seq, click))
            self._seq += 1
        self._watermark = watermark

    def __len__(self) -> int:
        return len(self._heap)
