"""The supervised pipeline: crash-safe click processing with journaled resume.

:mod:`repro.core.checkpoint` makes a *detector* restartable; this module
makes the *deployment* restartable.  A detector checkpoint alone is not
enough: resuming needs to know how far into the stream the snapshot is
valid (the journaled offset), what has already been billed (the billing
watermark — restoring the sketch but not the ledger double-charges every
click since the snapshot), and what was sitting in the reorder buffer.
:class:`SupervisedPipeline` journals all four together in one CRC-framed
blob, so a killed process resumes from the last checkpoint producing
bit-identical verdicts and billing totals to a run that never died
(tested at every kill point, for every detector variant).

Checkpoints live in a :class:`CheckpointStore`: atomic generations
(temp file + fsync + rename, directory fsync'd) with automatic fallback
— when the newest generation is corrupt, the previous one loads instead,
and only when *no* generation is usable does resume raise
:class:`~repro.errors.RecoveryError`.  A half-written checkpoint from a
crash mid-save is therefore never observed, and a rotted one costs a
re-processed tail, never silent state loss.
"""

from __future__ import annotations

import math
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..adnet.billing import BillingTotals
from ..core.checkpoint import (
    CheckpointError,
    load_detector,
    pack_frame,
    unpack_frame,
)
from ..detection.api import as_lifecycle
from ..detection.pipeline import DetectionPipeline, PipelineResult
from ..detection.scoring import SourceStats
from ..errors import BudgetError, ConfigurationError, RecoveryError
from ..streams.click import Click
from ..streams.io import click_from_record, click_to_record
from .hardening import DeadLetterSink, ReorderBuffer

_PIPELINE_KIND = "supervised-pipeline"
_FILE_PATTERN = re.compile(r"^ckpt-(\d{8})\.rpk$")


class CheckpointStore:
    """Atomic, generational checkpoint files in one directory.

    ``save`` writes ``ckpt-<n>.rpk`` via temp file + ``fsync`` +
    ``os.replace`` (+ directory fsync), so a crash at any instant leaves
    either the previous generations or the previous generations plus a
    complete new one — never a torn file under the real name.  The last
    ``keep`` generations are retained; older ones are pruned after the
    rename, so the fallback generation always exists on disk before its
    predecessor dies.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 2) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def paths(self) -> List[Path]:
        """Checkpoint files, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = _FILE_PATTERN.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _, path in sorted(found)]

    @property
    def latest(self) -> Optional[Path]:
        paths = self.paths()
        return paths[-1] if paths else None

    def save(self, blob: bytes) -> Path:
        """Durably write the next generation and prune old ones."""
        paths = self.paths()
        index = int(_FILE_PATTERN.match(paths[-1].name).group(1)) + 1 if paths else 1
        final = self.directory / f"ckpt-{index:08d}.rpk"
        temp = self.directory / f".ckpt-{index:08d}.tmp"
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, final)
        self._fsync_directory()
        for stale in self.paths()[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass
        return final

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def blobs(self) -> List[Tuple[Path, Optional[bytes]]]:
        """(path, bytes) newest first; unreadable files carry ``None``."""
        entries: List[Tuple[Path, Optional[bytes]]] = []
        for path in reversed(self.paths()):
            try:
                entries.append((path, path.read_bytes()))
            except OSError:
                entries.append((path, None))
        return entries


@dataclass
class SupervisedResult(PipelineResult):
    """A :class:`PipelineResult` plus everything the supervisor knows.

    ``start_offset`` is the journaled stream offset the run resumed
    from (0 for a fresh start); ``verdicts`` — when requested — holds
    the per-click duplicate verdicts settled *by this run* in settlement
    order (``None`` marks a budget-exhausted click), i.e. the tail of
    the logical stream from ``start_offset`` on.
    """

    start_offset: int = 0
    resumed: bool = False
    fallbacks: int = 0
    checkpoints_written: int = 0
    quarantined: int = 0
    reordered: int = 0
    clamped: int = 0
    late_dropped: int = 0
    degraded: Dict[int, Dict[str, object]] = field(default_factory=dict)
    verdicts: Optional[List[Optional[bool]]] = None


class SupervisedPipeline:
    """Crash-safe wrapper around a :class:`DetectionPipeline`.

    Parameters
    ----------
    pipeline:
        The wrapped pipeline.  Its detector must be checkpointable
        (:func:`repro.core.save_detector`); billing and scoreboard are
        journaled alongside the sketch when present.
    store:
        A :class:`CheckpointStore` or a directory path for one.
    checkpoint_every:
        Take a checkpoint after every N raw stream records (0 = only
        the final checkpoint).  See ``docs/operations.md`` for choosing
        N against the window size.
    reorder_capacity / skew_tolerance:
        When ``reorder_capacity > 0``, a :class:`ReorderBuffer` of that
        capacity (and clock-skew tolerance) sits between the stream and
        the detector.
    dead_letters:
        Quarantine sink; a fresh :class:`DeadLetterSink` by default.
        Pass the same sink to the stream readers' ``on_malformed`` to
        funnel reader-level garbage into the same place.
    record_verdicts:
        Keep per-click verdicts on the result (tests, audits).
    """

    def __init__(
        self,
        pipeline: DetectionPipeline,
        store: Union[CheckpointStore, str, Path],
        checkpoint_every: int = 1000,
        reorder_capacity: int = 0,
        skew_tolerance: float = 0.0,
        dead_letters: Optional[DeadLetterSink] = None,
        record_verdicts: bool = False,
    ) -> None:
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if reorder_capacity < 0:
            raise ConfigurationError(
                f"reorder_capacity must be >= 0, got {reorder_capacity}"
            )
        self.pipeline = pipeline
        self.store = store if isinstance(store, CheckpointStore) else CheckpointStore(store)
        self.checkpoint_every = checkpoint_every
        self.reorder_capacity = reorder_capacity
        self.skew_tolerance = skew_tolerance
        self.dead_letters = dead_letters if dead_letters is not None else DeadLetterSink()
        self.record_verdicts = record_verdicts
        # Telemetry rides on the wrapped pipeline's session (no-op by
        # default); checkpoint latency is the supervisor's key SLO.
        self.telemetry = pipeline.telemetry
        registry = self.telemetry.registry
        self._checkpoint_write_seconds = registry.histogram(
            "repro_checkpoint_write_seconds",
            "Durable checkpoint write latency (pack + fsync + rename)",
        )
        self._checkpoint_restore_seconds = registry.histogram(
            "repro_checkpoint_restore_seconds",
            "Checkpoint restore latency (parse + validate + apply)",
        )
        self._checkpoints_total = registry.counter(
            "repro_checkpoints_written_total", "Checkpoint generations written"
        )
        self._fallbacks_total = registry.counter(
            "repro_checkpoint_fallbacks_total",
            "Resume attempts that fell back past an unusable generation",
        )
        self._dead_letters_total = registry.counter(
            "repro_dead_letters_total",
            "Clicks quarantined to the dead-letter sink, by reason",
            labels=("reason",),
        )

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self, clicks: Iterable[Click], resume: bool = True) -> SupervisedResult:
        """Process ``clicks``, checkpointing; resume from the store first.

        On resume the first ``start_offset`` raw records of ``clicks``
        are skipped — pass the same stream from the beginning and the
        run continues exactly where the checkpoint left off.
        """
        result = SupervisedResult(scoreboard=self.pipeline.scoreboard)
        if self.record_verdicts:
            result.verdicts = []
        buffer = (
            ReorderBuffer(
                self.reorder_capacity, self.skew_tolerance, self.dead_letters
            )
            if self.reorder_capacity > 0
            else None
        )

        offset = self._resume(result, buffer) if resume else 0
        consumed = offset

        for index, click in enumerate(clicks):
            if index < offset:
                continue
            consumed = index + 1
            self._ingest(click, buffer, result)
            if self.checkpoint_every and consumed % self.checkpoint_every == 0:
                self._write_checkpoint(consumed, result, buffer)

        if buffer is not None:
            for ready in buffer.flush():
                self._settle(ready, result)
            self._sync_reorder_stats(buffer, result)
        self._write_checkpoint(consumed, result, None if buffer is None else buffer)

        if self.pipeline.billing is not None:
            result.billing_summary = self.pipeline.billing.summary()
        degraded = getattr(self.pipeline.detector, "degraded_shards", None)
        if callable(degraded):
            result.degraded = degraded()
        return result

    def _ingest(
        self,
        click: Click,
        buffer: Optional[ReorderBuffer],
        result: SupervisedResult,
    ) -> None:
        reason = self._validate(click)
        if reason is not None:
            self.dead_letters.record(click, reason)
            result.quarantined += 1
            self._dead_letters_total.labels(reason=reason).inc()
            return
        if buffer is None:
            self._settle(click, result)
            return
        for ready in buffer.push(click):
            self._settle(ready, result)
        self._sync_reorder_stats(buffer, result)

    @staticmethod
    def _validate(click: Click) -> Optional[str]:
        if not isinstance(click, Click):
            return "not-a-click"
        timestamp = click.timestamp
        if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
            return "bad-timestamp"
        if math.isnan(timestamp) or math.isinf(timestamp):
            return "bad-timestamp"
        if click.cost < 0:
            return "negative-cost"
        return None

    def _settle(self, click: Click, result: SupervisedResult) -> None:
        result.processed += 1
        try:
            duplicate = self.pipeline.process_click(click)
        except BudgetError:
            result.budget_exhausted += 1
            self.pipeline._record_totals(1, 0, 0, 1)
            self.telemetry.advance(1)
            if result.verdicts is not None:
                result.verdicts.append(None)
            return
        if duplicate:
            result.duplicates += 1
            self.pipeline._record_totals(1, 1, 0, 0)
        else:
            result.valid += 1
            self.pipeline._record_totals(1, 0, 1, 0)
        self.telemetry.advance(1)
        if result.verdicts is not None:
            result.verdicts.append(duplicate)

    @staticmethod
    def _sync_reorder_stats(buffer: ReorderBuffer, result: SupervisedResult) -> None:
        result.reordered = buffer.stats.reordered
        result.clamped = buffer.stats.clamped
        result.late_dropped = buffer.stats.dropped

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _write_checkpoint(
        self,
        offset: int,
        result: SupervisedResult,
        buffer: Optional[ReorderBuffer],
    ) -> None:
        header: Dict[str, Any] = {
            "kind": _PIPELINE_KIND,
            "version": 1,
            "offset": offset,
            "scheme": self.pipeline.scheme.value,
            "counters": {
                "processed": result.processed,
                "valid": result.valid,
                "duplicates": result.duplicates,
                "budget_exhausted": result.budget_exhausted,
                "quarantined": result.quarantined,
            },
            "billing": self._billing_snapshot(),
            "scoreboard": self._scoreboard_snapshot(),
            "buffer": None,
            "dead_letters": self.dead_letters.summary(),
        }
        if buffer is not None:
            header["buffer"] = {
                "watermark": buffer.watermark,
                "pending": [click_to_record(click) for click in buffer.pending()],
                "stats": {
                    "emitted": buffer.stats.emitted,
                    "reordered": buffer.stats.reordered,
                    "clamped": buffer.stats.clamped,
                    "dropped": buffer.stats.dropped,
                },
            }
        if self.telemetry.enabled:
            # Journal the metric values with the state they describe, so
            # a resumed process continues the same counters (crash-
            # consistent observability).
            header["telemetry"] = self.telemetry.state_dict()
        # Every detector — plain sketch, multi-process fleet, adaptive
        # wrapper — is driven through the one DetectorLifecycle surface:
        # quiesce drains in-flight work (multi-process engines drain
        # their rings, so the blob below never races a batch), then the
        # lifecycle serializes, then resume reopens for traffic.
        lifecycle = as_lifecycle(self.pipeline.detector)
        with self.telemetry.tracer.span("supervisor.checkpoint.quiesce"):
            lifecycle.quiesce()
        try:
            with self.telemetry.tracer.span(
                "supervisor.checkpoint.write", offset=offset
            ):
                started = time.perf_counter()
                blob = pack_frame(header, lifecycle.checkpoint())
                self.store.save(blob)
                self._checkpoint_write_seconds.observe(
                    time.perf_counter() - started
                )
        finally:
            lifecycle.resume()
        self._checkpoints_total.inc()
        result.checkpoints_written += 1

    def _billing_snapshot(self) -> Optional[Dict[str, Any]]:
        engine = self.pipeline.billing
        if engine is None:
            return None
        totals = engine.totals
        return {
            "network_revenue": engine.network_revenue,
            "advertisers": {
                str(a.advertiser_id): a.spent for a in engine.advertisers.all()
            },
            "publishers": {
                str(p.publisher_id): p.earned for p in engine.publishers.all()
            },
            "totals": {
                "charged_clicks": totals.charged_clicks,
                "rejected_clicks": totals.rejected_clicks,
                "charged_amount": totals.charged_amount,
                "rejected_amount": totals.rejected_amount,
                "charged_by_class": totals.charged_by_class,
                "rejected_by_class": totals.rejected_by_class,
            },
        }

    def _scoreboard_snapshot(self) -> Optional[Dict[str, Any]]:
        scoreboard = self.pipeline.scoreboard
        if scoreboard is None:
            return None
        return {
            "by_source": {
                str(key): [stats.clicks, stats.duplicates]
                for key, stats in scoreboard.by_source.items()
            },
            "by_publisher": {
                str(key): [stats.clicks, stats.duplicates]
                for key, stats in scoreboard.by_publisher.items()
            },
        }

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def _resume(
        self, result: SupervisedResult, buffer: Optional[ReorderBuffer]
    ) -> int:
        entries = self.store.blobs()
        if not entries:
            return 0
        last_error: Optional[Exception] = None
        for path, blob in entries:
            if blob is None:
                result.fallbacks += 1
                self._fallbacks_total.inc()
                last_error = CheckpointError(f"unreadable checkpoint file {path}")
                continue
            try:
                offset = self._apply_checkpoint(blob, result, buffer)
            except RecoveryError:
                raise
            except CheckpointError as error:
                result.fallbacks += 1
                self._fallbacks_total.inc()
                last_error = error
                continue
            result.resumed = True
            result.start_offset = offset
            return offset
        raise RecoveryError(
            f"no usable checkpoint among {len(entries)} generation(s) in "
            f"{self.store.directory}: {last_error}"
        )

    def _apply_checkpoint(
        self,
        blob: bytes,
        result: SupervisedResult,
        buffer: Optional[ReorderBuffer],
    ) -> int:
        restore_started = time.perf_counter()
        header, payload = unpack_frame(blob)
        if header.get("kind") != _PIPELINE_KIND:
            raise CheckpointError(
                f"not a pipeline checkpoint (kind {header.get('kind')!r})"
            )

        # Parse and validate everything (raising CheckpointError falls
        # back to an older generation) before mutating any live state.
        detector = load_detector(payload)
        try:
            offset = int(header["offset"])
            counters = header["counters"]
            scheme = header["scheme"]
            billing_snapshot = header["billing"]
            scoreboard_snapshot = header["scoreboard"]
            buffer_snapshot = header["buffer"]
            pending = (
                [click_from_record(record) for record in buffer_snapshot["pending"]]
                if buffer_snapshot is not None
                else []
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(f"malformed pipeline checkpoint: {error}") from error

        # Configuration contradictions are not fallback-able: every
        # generation was written under the same config, so surface them.
        if scheme != self.pipeline.scheme.value:
            raise RecoveryError(
                f"checkpoint was taken under identifier scheme {scheme!r}, "
                f"pipeline runs {self.pipeline.scheme.value!r}"
            )
        if pending and buffer is None:
            raise RecoveryError(
                f"checkpoint holds {len(pending)} buffered click(s) but the "
                "supervisor has no reorder buffer (reorder_capacity=0)"
            )
        if (billing_snapshot is not None) != (self.pipeline.billing is not None):
            raise RecoveryError(
                "checkpoint and pipeline disagree about billing being attached"
            )
        if (scoreboard_snapshot is not None) != (self.pipeline.scoreboard is not None):
            raise RecoveryError(
                "checkpoint and pipeline disagree about scoreboard being attached"
            )

        self.pipeline.set_detector(detector)
        self._restore_billing(billing_snapshot)
        self._restore_scoreboard(scoreboard_snapshot)
        if buffer is not None and buffer_snapshot is not None:
            buffer.restore(pending, buffer_snapshot.get("watermark"))
            stats = buffer_snapshot.get("stats") or {}
            buffer.stats.emitted = int(stats.get("emitted", 0))
            buffer.stats.reordered = int(stats.get("reordered", 0))
            buffer.stats.clamped = int(stats.get("clamped", 0))
            buffer.stats.dropped = int(stats.get("dropped", 0))
            self._sync_reorder_stats(buffer, result)
        for reason, count in (header.get("dead_letters") or {}).items():
            self.dead_letters.counts[reason] = int(count)

        result.processed = int(counters.get("processed", 0))
        result.valid = int(counters.get("valid", 0))
        result.duplicates = int(counters.get("duplicates", 0))
        result.budget_exhausted = int(counters.get("budget_exhausted", 0))
        result.quarantined = int(counters.get("quarantined", 0))
        if self.telemetry.enabled:
            # Restore the journaled metric values, then re-instrument so
            # gauges track the restored detector.  The restore-duration
            # observation lands after load_state on purpose: the
            # journaled values stay bit-identical to what was saved.
            telemetry_state = header.get("telemetry")
            if telemetry_state:
                self.telemetry.load_state(telemetry_state)
            self._checkpoint_restore_seconds.observe(
                time.perf_counter() - restore_started
            )
        return offset

    def _restore_billing(self, snapshot: Optional[Dict[str, Any]]) -> None:
        engine = self.pipeline.billing
        if engine is None or snapshot is None:
            return
        try:
            advertisers = {
                int(key): float(spent)
                for key, spent in snapshot["advertisers"].items()
            }
            publishers = {
                int(key): float(earned)
                for key, earned in snapshot["publishers"].items()
            }
            totals_spec = snapshot["totals"]
            totals = BillingTotals(
                charged_clicks=int(totals_spec["charged_clicks"]),
                rejected_clicks=int(totals_spec["rejected_clicks"]),
                charged_amount=float(totals_spec["charged_amount"]),
                rejected_amount=float(totals_spec["rejected_amount"]),
                charged_by_class=dict(totals_spec["charged_by_class"]),
                rejected_by_class=dict(totals_spec["rejected_by_class"]),
            )
            network_revenue = float(snapshot["network_revenue"])
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(f"malformed billing watermark: {error}") from error

        for advertiser_id in advertisers:
            if advertiser_id not in engine.advertisers:
                raise RecoveryError(
                    f"billing watermark references unknown advertiser {advertiser_id}"
                )
        for publisher_id in publishers:
            if publisher_id not in engine.publishers:
                raise RecoveryError(
                    f"billing watermark references unknown publisher {publisher_id}"
                )
        for advertiser_id, spent in advertisers.items():
            engine.advertisers.get(advertiser_id).spent = spent
        for publisher_id, earned in publishers.items():
            engine.publishers.get(publisher_id).earned = earned
        engine.totals = totals
        engine.network_revenue = network_revenue

    def _restore_scoreboard(self, snapshot: Optional[Dict[str, Any]]) -> None:
        scoreboard = self.pipeline.scoreboard
        if scoreboard is None or snapshot is None:
            return
        try:
            by_source = {
                int(key): SourceStats(clicks=int(pair[0]), duplicates=int(pair[1]))
                for key, pair in snapshot["by_source"].items()
            }
            by_publisher = {
                int(key): SourceStats(clicks=int(pair[0]), duplicates=int(pair[1]))
                for key, pair in snapshot["by_publisher"].items()
            }
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise CheckpointError(f"malformed scoreboard snapshot: {error}") from error
        scoreboard.by_source = by_source
        scoreboard.by_publisher = by_publisher
