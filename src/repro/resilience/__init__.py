"""Fault-tolerant stream processing: supervision, hardening, fault injection.

The detection pipeline as the paper frames it is one perfect pass over
one well-formed stream.  Production is neither: processes die
mid-window, checkpoint files rot, collectors deliver clicks late and
out of order, and producers emit garbage.  This subsystem makes the
reproduction restartable under all of it:

* :class:`SupervisedPipeline` + :class:`CheckpointStore` — journaled
  checkpoints (detector sketch, stream offset, billing watermark,
  reorder buffer) with atomic writes and corrupt-generation fallback.
* :class:`DeadLetterSink` / :class:`ReorderBuffer` — input hardening at
  the pipeline boundary: quarantine instead of crash, bounded
  re-sorting with an explicit clock-skew tolerance.
* :class:`FaultInjector` — seeded crash / corruption / disorder
  faults so tests prove the recovery invariants instead of assuming
  them.

The recovery taxonomy (which errors mean retry, fall back, or page a
human) is documented in :mod:`repro.errors`; the operational
trade-offs (checkpoint cadence, fail-open vs fail-closed shards) in
``docs/operations.md``.
"""

from .faults import (
    CORRUPTION_MODES,
    ChaosDetector,
    EngineFaultHooks,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
)
from .hardening import (
    DeadLetter,
    DeadLetterSink,
    ReorderBuffer,
    ReorderStats,
)
from .supervisor import (
    CheckpointStore,
    SupervisedPipeline,
    SupervisedResult,
)

__all__ = [
    "CheckpointStore",
    "SupervisedPipeline",
    "SupervisedResult",
    "DeadLetter",
    "DeadLetterSink",
    "ReorderBuffer",
    "ReorderStats",
    "ChaosDetector",
    "EngineFaultHooks",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "CORRUPTION_MODES",
]
