"""Counting Bloom filter (Fan et al., "Summary Cache", 2000).

Replaces each bit with a small counter so elements can be *deleted* —
the property the jumping-window scheme of Metwally et al. [21] relies
on (and that §3.3 of the paper critiques).  Counters have a configurable
width; on overflow they either saturate (the deployed-practice behaviour
whose failure mode ablation A3 measures) or raise
:class:`~repro.errors.CapacityError`.

A saturated counter can no longer be decremented reliably, which is
exactly how counting filters pick up false negatives *and* stuck-on
false positives — the effect the paper's comparison highlights.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..errors import CapacityError, ConfigurationError
from ..hashing import HashFamily, SplitMixFamily

_DTYPES = {1: np.uint8, 2: np.uint8, 4: np.uint8, 8: np.uint8, 16: np.uint16, 32: np.uint32}


class CountingBloomFilter:
    """An array of ``m`` counters of ``counter_bits`` bits each.

    Parameters
    ----------
    num_counters:
        Number of counter slots ``m``.
    num_hashes:
        Hash functions ``k`` (ignored when ``family`` is supplied).
    counter_bits:
        Width of each counter (1, 2, 4, 8, 16 or 32).  The modeled
        memory cost is ``m * counter_bits`` bits.  Width 1 degenerates
        to a plain Bloom filter with no usable deletion (any removal of
        a shared bit is lossy) — included to chart the §3.3 trade-off's
        endpoint.
    saturate:
        When True (default) counters stick at their maximum instead of
        overflowing; when False an overflow raises ``CapacityError``.
    """

    __slots__ = (
        "num_counters",
        "counter_bits",
        "family",
        "saturate",
        "_counters",
        "_max_value",
        "count_inserted",
        "saturation_events",
    )

    def __init__(
        self,
        num_counters: int,
        num_hashes: int = 4,
        counter_bits: int = 4,
        seed: int = 0,
        family: Optional[HashFamily] = None,
        saturate: bool = True,
    ) -> None:
        if counter_bits not in _DTYPES:
            raise ConfigurationError(
                f"counter_bits must be one of {sorted(_DTYPES)}, got {counter_bits}"
            )
        if num_counters < 1:
            raise ConfigurationError(f"num_counters must be >= 1, got {num_counters}")
        if family is None:
            family = SplitMixFamily(num_hashes, num_counters, seed)
        if family.num_buckets != num_counters:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_counters {num_counters}"
            )
        self.num_counters = num_counters
        self.counter_bits = counter_bits
        self.family = family
        self.saturate = saturate
        self._counters = np.zeros(num_counters, dtype=_DTYPES[counter_bits])
        self._max_value = (1 << counter_bits) - 1
        self.count_inserted = 0
        #: How many counter increments hit the ceiling (ablation A3 metric).
        self.saturation_events = 0

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    def add(self, identifier: int) -> None:
        self.add_indices(self.family.indices(identifier))

    def add_indices(self, indices: List[int]) -> None:
        counters = self._counters
        for index in indices:
            value = int(counters[index])
            if value >= self._max_value:
                self.saturation_events += 1
                if not self.saturate:
                    raise CapacityError(
                        f"counter {index} overflow at width {self.counter_bits} bits"
                    )
                continue
            counters[index] = value + 1
        self.count_inserted += 1

    def remove(self, identifier: int) -> None:
        self.remove_indices(self.family.indices(identifier))

    def remove_indices(self, indices: Iterable[int]) -> None:
        """Decrement the counters of a previously inserted element.

        Saturated counters are *not* decremented (their true count is
        unknown); zero counters are left at zero rather than wrapping.
        Both behaviours mirror deployed counting-filter practice and are
        the source of the residual errors ablation A3 quantifies.
        """
        counters = self._counters
        for index in indices:
            value = int(counters[index])
            if value == 0 or value >= self._max_value:
                continue
            counters[index] = value - 1

    def contains(self, identifier: int) -> bool:
        return self.contains_indices(self.family.indices(identifier))

    def contains_indices(self, indices: Iterable[int]) -> bool:
        counters = self._counters
        for index in indices:
            if not counters[index]:
                return False
        return True

    def counter_value(self, index: int) -> int:
        return int(self._counters[index])

    def add_filter(self, other: "CountingBloomFilter") -> None:
        """Pointwise add ``other`` into this filter (saturating).

        This is the "combining two counting Bloom filters is performed by
        adding the corresponding counters" operation of §3.3.
        """
        self._require_compatible(other)
        wide = self._counters.astype(np.uint32) + other._counters.astype(np.uint32)
        clipped = np.minimum(wide, self._max_value)
        self.saturation_events += int((wide > self._max_value).sum())
        self._counters = clipped.astype(self._counters.dtype)
        self.count_inserted += other.count_inserted

    def subtract_filter(self, other: "CountingBloomFilter") -> None:
        """Pointwise subtract (clamped at zero) — the §3.3 expiry step."""
        self._require_compatible(other)
        wide = self._counters.astype(np.int64) - other._counters.astype(np.int64)
        self._counters = np.maximum(wide, 0).astype(self._counters.dtype)
        self.count_inserted = max(0, self.count_inserted - other.count_inserted)

    def _require_compatible(self, other: "CountingBloomFilter") -> None:
        if (
            other.num_counters != self.num_counters
            or other.counter_bits != self.counter_bits
        ):
            raise ConfigurationError(
                "filters must have identical num_counters and counter_bits"
            )

    def clear(self) -> None:
        self._counters.fill(0)
        self.count_inserted = 0
        self.saturation_events = 0

    def nonzero_counters(self) -> int:
        return int((self._counters != 0).sum())

    @property
    def memory_bits(self) -> int:
        return self.num_counters * self.counter_bits

    def __contains__(self, identifier: int) -> bool:
        return self.contains(identifier)
