"""Classical Bloom filter (Bloom, 1970; §2.1 of the paper).

The membership sketch everything else in this library builds on.  A
filter is ``m`` bits plus a :class:`~repro.hashing.HashFamily`; inserting
sets ``k`` bits, querying checks them.  No deletions, no false
negatives, false positives at the rate given by
:func:`repro.bloom.params.false_positive_rate`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..bitset import BitVector
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily


class BloomFilter:
    """A classical ``m``-bit Bloom filter with ``k`` hash functions.

    Parameters
    ----------
    num_bits:
        Filter size ``m`` in bits.
    num_hashes:
        Number of hash functions ``k`` (ignored when ``family`` is given,
        which supplies its own).
    seed:
        Seed for the default hash family.
    family:
        Optional pre-built hash family; its bucket range must equal
        ``num_bits``.  Sharing one family across several filters is how
        the GBF keeps "all Bloom filters using the same set of hash
        functions" (§3.1).
    """

    __slots__ = ("num_bits", "family", "_bits", "count_inserted")

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 4,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if family is None:
            family = SplitMixFamily(num_hashes, num_bits, seed)
        if family.num_buckets != num_bits:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_bits {num_bits}"
            )
        self.num_bits = num_bits
        self.family = family
        self._bits = BitVector(num_bits)
        #: Number of successful (non-duplicate) insertions, for sizing math.
        self.count_inserted = 0

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    def add(self, identifier: int) -> None:
        """Insert ``identifier`` unconditionally."""
        self._bits.set_many(self.family.indices(identifier))
        self.count_inserted += 1

    def contains(self, identifier: int) -> bool:
        """Membership query; false positives possible, negatives exact."""
        return self._bits.all_set(self.family.indices(identifier))

    def add_if_absent(self, identifier: int) -> bool:
        """Insert unless present; returns True when it was already present.

        This is the one-pass duplicate-detection primitive: a single pass
        over the indices reads each bit and sets the missing ones, which
        is how the landmark-window scheme of Metwally et al. operates.
        """
        indices = self.family.indices(identifier)
        present = self._bits.all_set(indices)
        if not present:
            self._bits.set_many(indices)
            self.count_inserted += 1
        return present

    def contains_indices(self, indices: Iterable[int]) -> bool:
        """Membership check from pre-computed hash indices."""
        return self._bits.all_set(indices)

    def add_indices(self, indices: List[int]) -> None:
        """Insertion from pre-computed hash indices."""
        self._bits.set_many(indices)
        self.count_inserted += 1

    def clear(self) -> None:
        """Reset to empty (the landmark-window epoch switch)."""
        self._bits.clear_all()
        self.count_inserted = 0

    def bits_set(self) -> int:
        return self._bits.count()

    @property
    def memory_bits(self) -> int:
        return self.num_bits

    def __contains__(self, identifier: int) -> bool:
        return self.contains(identifier)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"inserted={self.count_inserted})"
        )
