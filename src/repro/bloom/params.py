"""Bloom-filter parameter mathematics (§2.1 of the paper).

Implements the standard false-positive analysis the paper builds on:

* exact FP rate ``(1 - (1 - 1/m)^{kn})^k``,
* the asymptotic form ``(1 - e^{-kn/m})^k``,
* the optimal hash count ``k = ln 2 * m / n`` (giving ``f ~ 2^{-k}``),
* sizing helpers (bits needed for a target FP rate).

These functions are reused by :mod:`repro.analysis.theory` to produce
the theoretical curves in Figures 1 and 2.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def false_positive_rate_from_fill(fill: float, num_hashes: int) -> float:
    """FP rate of a Bloom filter whose *observed* fill fraction is ``fill``.

    A query is a false positive exactly when all ``k`` probed positions
    are set, so for a filter with a fraction ``fill`` of its positions
    set the rate is ``fill ** k``.  This is the closed form the live
    telemetry gauges evaluate against a detector's measured fill state
    (see :mod:`repro.telemetry.instruments`); the a-priori formulas
    below are this same function composed with the expected fill.
    """
    if not 0.0 <= fill <= 1.0:
        raise ConfigurationError(f"fill must be in [0, 1], got {fill}")
    if num_hashes < 1:
        raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
    return fill**num_hashes


def false_positive_rate(num_bits: int, num_elements: int, num_hashes: int) -> float:
    """Exact FP rate of a classical Bloom filter.

    ``(1 - (1 - 1/m)^{kn})^k`` for ``m`` bits, ``n`` inserted distinct
    elements, ``k`` hash functions.  Uses ``expm1``/``log1p`` to stay
    accurate when ``1/m`` is tiny.
    """
    _validate(num_bits, num_elements, num_hashes)
    if num_elements == 0:
        return 0.0
    # (1 - 1/m)^{kn} = exp(kn * log(1 - 1/m))
    fill = -math.expm1(num_hashes * num_elements * math.log1p(-1.0 / num_bits))
    return false_positive_rate_from_fill(fill, num_hashes)


def false_positive_rate_asymptotic(
    num_bits: int, num_elements: int, num_hashes: int
) -> float:
    """Asymptotic FP rate ``(1 - e^{-kn/m})^k`` (the paper's §2.1 form)."""
    _validate(num_bits, num_elements, num_hashes)
    if num_elements == 0:
        return 0.0
    fill = -math.expm1(-num_hashes * num_elements / num_bits)
    return fill**num_hashes


def optimal_num_hashes(num_bits: int, num_elements: int) -> int:
    """The integer ``k`` minimizing the FP rate: ``round(ln 2 * m / n)``.

    Evaluates the exact rate at ``floor`` and ``ceil`` of the real
    optimum and returns whichever wins (they can differ when ``m/n`` is
    small).  Always at least 1.
    """
    if num_elements <= 0:
        return 1
    ideal = math.log(2) * num_bits / num_elements
    low = max(1, math.floor(ideal))
    high = max(1, math.ceil(ideal))
    if low == high:
        return low
    rate_low = false_positive_rate(num_bits, num_elements, low)
    rate_high = false_positive_rate(num_bits, num_elements, high)
    return low if rate_low <= rate_high else high


def min_false_positive_rate(num_bits: int, num_elements: int) -> float:
    """FP rate at the optimal ``k``; approaches ``2^{-ln2 * m/n}``."""
    k = optimal_num_hashes(num_bits, num_elements)
    return false_positive_rate(num_bits, num_elements, k)


def bits_for_target_rate(num_elements: int, target_rate: float) -> int:
    """Minimum bits ``m`` so an optimally configured filter meets ``target_rate``.

    Uses the classical closed form ``m = -n ln f / (ln 2)^2`` then nudges
    upward until the exact formula (at integer optimal ``k``) satisfies
    the target, so the returned size is sufficient, not merely
    approximately so.
    """
    if num_elements < 1:
        raise ConfigurationError(f"num_elements must be >= 1, got {num_elements}")
    if not 0.0 < target_rate < 1.0:
        raise ConfigurationError(f"target_rate must be in (0, 1), got {target_rate}")
    num_bits = max(1, math.ceil(-num_elements * math.log(target_rate) / math.log(2) ** 2))
    while min_false_positive_rate(num_bits, num_elements) > target_rate:
        num_bits = math.ceil(num_bits * 1.05) + 1
    return num_bits


def sliced_false_positive_rate(fills, num_required: int) -> float:
    """Exact FP rate of a sliced (age-partitioned) Bloom filter.

    ``fills`` is the per-slice fill fraction in logical age order
    (youngest first); a query is a false positive exactly when some run
    of ``num_required`` *consecutive* slices all report a hit, slice
    ``a`` hitting independently with probability ``fills[a]`` (one hash
    probe per slice).  Evaluated exactly by dynamic programming over the
    length of the trailing hit-run: state ``r`` after slice ``a`` means
    the last ``r`` slices all hit but no ``num_required``-run has
    completed yet.  Shared by the APBF and time-limited-BF variants —
    the live telemetry gauges call this with *measured* fills, the
    a-priori bounds below with expected fills.
    """
    fills = list(fills)
    if num_required < 1:
        raise ConfigurationError(f"num_required must be >= 1, got {num_required}")
    if len(fills) < num_required:
        raise ConfigurationError(
            f"need at least num_required={num_required} slices, got {len(fills)}"
        )
    for fill in fills:
        if not 0.0 <= fill <= 1.0:
            raise ConfigurationError(f"fills must be in [0, 1], got {fill}")
    # states[r] = P(trailing run length == r, no k-run seen yet)
    states = [0.0] * num_required
    states[0] = 1.0
    matched = 0.0
    for fill in fills:
        nxt = [0.0] * num_required
        for run, prob in enumerate(states):
            if prob == 0.0:
                continue
            nxt[0] += prob * (1.0 - fill)
            hit = prob * fill
            if run + 1 == num_required:
                matched += hit
            else:
                nxt[run + 1] += hit
        states = nxt
    return matched


def apbf_false_positive_rate(
    num_required: int, num_aged: int, slice_bits: int, generation_size: int
) -> float:
    """Design-point FP rate of an age-partitioned Bloom filter.

    An APBF with ``k = num_required`` young slices, ``l = num_aged``
    aged slices, ``m = slice_bits`` bits per slice, and ``g =
    generation_size`` inserts per shift reaches a steady state where
    logical slice ``a`` (0 = youngest) has absorbed ``min(a + 1, k) * g``
    generations' worth of insertions.  Feeding the resulting expected
    fills to :func:`sliced_false_positive_rate` gives the worst-case
    (end-of-generation) FP rate the structure was sized for — this is
    the ``theoretical_fp_bound`` surfaced for APBF detectors.
    """
    if num_required < 1:
        raise ConfigurationError(f"num_required must be >= 1, got {num_required}")
    if num_aged < 1:
        raise ConfigurationError(f"num_aged must be >= 1, got {num_aged}")
    if slice_bits < 1:
        raise ConfigurationError(f"slice_bits must be >= 1, got {slice_bits}")
    if generation_size < 1:
        raise ConfigurationError(
            f"generation_size must be >= 1, got {generation_size}"
        )
    num_slices = num_required + num_aged
    fills = []
    for age in range(num_slices):
        inserted = min(age + 1, num_required) * generation_size
        fills.append(-math.expm1(inserted * math.log1p(-1.0 / slice_bits)))
    return sliced_false_positive_rate(fills, num_required)


def expected_fill_fraction(num_bits: int, num_elements: int, num_hashes: int) -> float:
    """Expected fraction of bits set after ``n`` distinct insertions."""
    _validate(num_bits, num_elements, num_hashes)
    if num_elements == 0:
        return 0.0
    return -math.expm1(num_hashes * num_elements * math.log1p(-1.0 / num_bits))


def _validate(num_bits: int, num_elements: int, num_hashes: int) -> None:
    if num_bits < 1:
        raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
    if num_elements < 0:
        raise ConfigurationError(f"num_elements must be >= 0, got {num_elements}")
    if num_hashes < 1:
        raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
