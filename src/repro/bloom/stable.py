"""Stable Bloom filter (Deng & Rafiei, SIGMOD 2006).

The related-work baseline of §2.4: a fixed array of small cells where
every insertion first *randomly decrements* ``p`` cells (evicting stale
information) and then sets the element's ``k`` cells to the maximum
value.  The filter reaches a stable fraction of zero cells, giving
bounded false positives on unbounded streams — but the random eviction
introduces **false negatives**, which is precisely the deficiency the
paper's GBF/TBF algorithms remove (both are zero-false-negative).

We implement it faithfully so the experiment harness can demonstrate
that trade-off side by side with TBF.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily


class StableBloomFilter:
    """``num_cells`` cells of ``cell_bits`` bits with random decay.

    Parameters
    ----------
    num_cells:
        Number of cells ``m``.
    num_hashes:
        Hash functions ``k``.
    cell_bits:
        Bits per cell ``d``; cells count down from ``Max = 2^d - 1``.
    decrements_per_insert:
        ``p``, the number of randomly chosen cells decremented before
        each insertion.  :meth:`recommended_decrements` computes the
        value Deng & Rafiei derive for a target false-positive rate.
    """

    __slots__ = (
        "num_cells",
        "cell_bits",
        "decrements_per_insert",
        "family",
        "_cells",
        "_max_value",
        "_rng",
    )

    def __init__(
        self,
        num_cells: int,
        num_hashes: int = 4,
        cell_bits: int = 3,
        decrements_per_insert: int = 10,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if num_cells < 1:
            raise ConfigurationError(f"num_cells must be >= 1, got {num_cells}")
        if not 1 <= cell_bits <= 8:
            raise ConfigurationError(f"cell_bits must be in [1, 8], got {cell_bits}")
        if decrements_per_insert < 1:
            raise ConfigurationError(
                f"decrements_per_insert must be >= 1, got {decrements_per_insert}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, num_cells, seed)
        if family.num_buckets != num_cells:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_cells {num_cells}"
            )
        self.num_cells = num_cells
        self.cell_bits = cell_bits
        self.decrements_per_insert = decrements_per_insert
        self.family = family
        self._cells = np.zeros(num_cells, dtype=np.uint8)
        self._max_value = (1 << cell_bits) - 1
        self._rng = random.Random(seed ^ 0x5B1F)

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    def process(self, identifier: int) -> bool:
        """One-pass duplicate check: query, decay, insert.

        Returns True when the element looked like a duplicate *before*
        insertion.  Deng & Rafiei query first, then decay, then set.
        """
        indices = self.family.indices(identifier)
        duplicate = self.contains_indices(indices)
        self._decay()
        cells = self._cells
        for index in indices:
            cells[index] = self._max_value
        return duplicate

    def query(self, identifier: int) -> bool:
        return self.contains_indices(self.family.indices(identifier))

    def contains_indices(self, indices: List[int]) -> bool:
        cells = self._cells
        for index in indices:
            if not cells[index]:
                return False
        return True

    def _decay(self) -> None:
        cells = self._cells
        randrange = self._rng.randrange
        m = self.num_cells
        for _ in range(self.decrements_per_insert):
            index = randrange(m)
            value = cells[index]
            if value:
                cells[index] = value - 1

    def zero_fraction(self) -> float:
        """Measured fraction of zero cells (converges to the stable point)."""
        return float((self._cells == 0).sum()) / self.num_cells

    @staticmethod
    def stable_zero_fraction(
        num_cells: int, num_hashes: int, cell_bits: int, decrements_per_insert: int
    ) -> float:
        """Deng & Rafiei Theorem 2: the limiting fraction of zero cells.

        ``(1 / (1 + 1/(p(1/k - 1/m))))^{Max}`` — the probability a given
        cell is zero once the filter is stable.
        """
        max_value = (1 << cell_bits) - 1
        inner = 1.0 / (
            1.0 + 1.0 / (decrements_per_insert * (1.0 / num_hashes - 1.0 / num_cells))
        )
        return inner**max_value

    @staticmethod
    def stable_false_positive_rate(
        num_cells: int, num_hashes: int, cell_bits: int, decrements_per_insert: int
    ) -> float:
        """FP rate once stable: ``(1 - zero_fraction)^k``."""
        zero = StableBloomFilter.stable_zero_fraction(
            num_cells, num_hashes, cell_bits, decrements_per_insert
        )
        return (1.0 - zero) ** num_hashes

    @staticmethod
    def recommended_decrements(
        num_cells: int, num_hashes: int, cell_bits: int, target_rate: float
    ) -> int:
        """Smallest ``p`` whose stable FP rate meets ``target_rate``.

        Inverts the stable-point formula; raises ``ConfigurationError``
        when no ``p`` can reach the target with these ``m``, ``k``, ``d``.
        """
        if num_cells <= num_hashes:
            raise ConfigurationError(
                "stable point requires num_cells > num_hashes"
            )
        max_value = (1 << cell_bits) - 1
        zero_needed = 1.0 - target_rate ** (1.0 / num_hashes)
        denominator = (
            (1.0 / zero_needed ** (1.0 / max_value)) - 1.0
        )
        if denominator <= 0:
            raise ConfigurationError("target rate unreachable with these parameters")
        p = 1.0 / (denominator * (1.0 / num_hashes - 1.0 / num_cells))
        if p <= 0:
            raise ConfigurationError("target rate unreachable with these parameters")
        return max(1, math.ceil(p))

    @property
    def memory_bits(self) -> int:
        return self.num_cells * self.cell_bits
