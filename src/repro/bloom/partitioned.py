"""Partitioned Bloom filter (the k-segment variant).

Classic alternative layout (used by Kirsch–Mitzenmacher's analysis and
most hardware implementations): the ``m`` bits are split into ``k``
equal segments and hash function ``i`` addresses only segment ``i``.
Properties relative to the standard layout:

* no two hash functions can collide on a bit, so each insertion sets
  exactly ``k`` distinct bits;
* the per-segment fill is slightly higher (``m/k`` bits per function),
  giving a marginally larger FP rate:
  ``(1 - (1 - k/m)^n)^k`` vs ``(1 - (1 - 1/m)^{kn})^k``;
* segments are independent, which simplifies sharding and SIMD.

The GBF's lane layout composes with either; we include this variant so
the library's Bloom toolbox is complete and the FP difference is
testable rather than folklore.
"""

from __future__ import annotations

import math

from ..bitset import BitVector
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily


class PartitionedBloomFilter:
    """``k`` segments of ``m/k`` bits, one hash function per segment."""

    __slots__ = ("num_bits", "num_hashes", "segment_bits", "family", "_bits", "count_inserted")

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 4,
        seed: int = 0,
        family: HashFamily | None = None,
    ) -> None:
        if num_hashes < 1:
            raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
        if num_bits < num_hashes:
            raise ConfigurationError(
                f"num_bits {num_bits} cannot host {num_hashes} segments"
            )
        self.num_hashes = num_hashes
        self.segment_bits = num_bits // num_hashes
        self.num_bits = self.segment_bits * num_hashes  # trim remainder
        if family is None:
            family = SplitMixFamily(num_hashes, self.segment_bits, seed)
        if family.num_buckets != self.segment_bits:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != segment size "
                f"{self.segment_bits}"
            )
        if family.num_hashes != num_hashes:
            raise ConfigurationError(
                f"hash family provides {family.num_hashes} functions, need {num_hashes}"
            )
        self.family = family
        self._bits = BitVector(self.num_bits)
        self.count_inserted = 0

    def _positions(self, identifier: int):
        offsets = self.family.indices(identifier)
        segment = self.segment_bits
        return [index * segment + offset for index, offset in enumerate(offsets)]

    def add(self, identifier: int) -> None:
        self._bits.set_many(self._positions(identifier))
        self.count_inserted += 1

    def contains(self, identifier: int) -> bool:
        return self._bits.all_set(self._positions(identifier))

    def add_if_absent(self, identifier: int) -> bool:
        positions = self._positions(identifier)
        present = self._bits.all_set(positions)
        if not present:
            self._bits.set_many(positions)
            self.count_inserted += 1
        return present

    def clear(self) -> None:
        self._bits.clear_all()
        self.count_inserted = 0

    def bits_set(self) -> int:
        return self._bits.count()

    @property
    def memory_bits(self) -> int:
        return self.num_bits

    def __contains__(self, identifier: int) -> bool:
        return self.contains(identifier)

    @staticmethod
    def false_positive_rate(num_bits: int, num_elements: int, num_hashes: int) -> float:
        """Exact FP rate of the partitioned layout."""
        if num_bits < num_hashes:
            raise ConfigurationError("num_bits must be >= num_hashes")
        segment = num_bits // num_hashes
        if num_elements == 0:
            return 0.0
        fill = -math.expm1(num_elements * math.log1p(-1.0 / segment))
        return fill**num_hashes
