"""Bloom-filter family: classical, counting, stable, and their math."""

from .classical import BloomFilter
from .partitioned import PartitionedBloomFilter
from .counting import CountingBloomFilter
from .params import (
    apbf_false_positive_rate,
    bits_for_target_rate,
    expected_fill_fraction,
    false_positive_rate,
    false_positive_rate_asymptotic,
    false_positive_rate_from_fill,
    min_false_positive_rate,
    optimal_num_hashes,
    sliced_false_positive_rate,
)
from .stable import StableBloomFilter

__all__ = [
    "BloomFilter",
    "PartitionedBloomFilter",
    "CountingBloomFilter",
    "StableBloomFilter",
    "false_positive_rate",
    "false_positive_rate_asymptotic",
    "false_positive_rate_from_fill",
    "optimal_num_hashes",
    "min_false_positive_rate",
    "bits_for_target_rate",
    "expected_fill_fraction",
    "sliced_false_positive_rate",
    "apbf_false_positive_rate",
]
