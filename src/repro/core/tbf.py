"""TBF algorithm — duplicate detection over sliding windows (§4 of the paper).

The construction
----------------
A *Timing Bloom Filter* generalizes the classical Bloom filter by
replacing every bit with an ``O(log N)``-bit entry holding the
**timestamp** (stream position) of the last element hashed there.  The
all-ones value is reserved as the "empty" sentinel.

* **Query.**  An element is a duplicate iff every one of its ``k``
  entries is non-empty *and* holds an active timestamp — one within the
  last ``N`` arrivals.  Stale entries therefore never cause false
  positives: the activity check filters them even before they are
  physically cleaned.
* **Insert.**  A non-duplicate writes the current timestamp into its
  ``k`` entries (overwriting older timestamps, which only refreshes
  information about elements that hashed there earlier).
* **Cleaning.**  Timestamps are wraparound counters, so an entry left
  untouched for a whole counter period would eventually *look* fresh
  again.  The paper's fix: widen the counter range beyond ``N`` by a
  slack ``C`` and sweep a cursor over ``ceil(m / (C + 1))`` entries per
  arrival, erasing expired timestamps.  Every entry is re-visited at
  least once per ``C + 1`` arrivals, before its age can wrap.

Wraparound refinement (DESIGN.md §3.1): the paper uses ``N + C``
timestamp values; with cursor period exactly ``C + 1`` an entry last
verified at age ``N - 1`` is next seen at age ``N + C ≡ 0 (mod N+C)``
and would be misread as fresh.  We use ``W = N + C + 1`` values, which
closes that gap with the same entry width.

Properties (Theorem 2): zero false negatives; FP rate of a classical
Bloom filter with ``m = M / O(log N)`` entries and ``N`` elements;
``O(k + m/(C+1))`` entry operations per element (``O(M / (N log N))``
cleaning cost at the paper's default ``C = N - 1``).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..bloom.params import false_positive_rate_from_fill
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily
from . import kernels
from .batch import check_reads, resolve_inserts


def entry_bits_required(window_size: int, cleanup_slack: int) -> int:
    """Bits per TBF entry: hold ``W = N + C + 1`` timestamps plus a sentinel."""
    num_values = window_size + cleanup_slack + 1
    return max(1, math.ceil(math.log2(num_values + 1)))


def _dtype_for_bits(bits: int) -> "np.dtype":
    if bits <= 8:
        return np.dtype(np.uint8)
    if bits <= 16:
        return np.dtype(np.uint16)
    if bits <= 32:
        return np.dtype(np.uint32)
    if bits <= 64:
        return np.dtype(np.uint64)
    raise ConfigurationError(f"entries wider than 64 bits unsupported ({bits})")


class TBFDetector:
    """One-pass duplicate-click detector over a count-based sliding window.

    Parameters
    ----------
    window_size:
        Sliding-window size ``N`` in arrivals.
    num_entries:
        ``m``, the number of timestamp entries.
    num_hashes:
        ``k`` hash functions.
    cleanup_slack:
        ``C`` — the trade-off knob of §4.1.  Each entry is
        ``ceil(log2(N + C + 2))`` bits and each arrival sweeps
        ``ceil(m / (C + 1))`` entries.  Small ``C``: narrower entries,
        more sweeping.  Large ``C``: wider entries, less sweeping.
        Defaults to the paper's typical choice ``C = N - 1`` (one extra
        bit per entry, ``~m/N`` sweeps per arrival).
    seed / family:
        Hash-family configuration.
    """

    def __init__(
        self,
        window_size: int,
        num_entries: int,
        num_hashes: int = 4,
        cleanup_slack: Optional[int] = None,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if num_entries < 1:
            raise ConfigurationError(f"num_entries must be >= 1, got {num_entries}")
        if cleanup_slack is None:
            cleanup_slack = window_size - 1
        if cleanup_slack < 0:
            raise ConfigurationError(
                f"cleanup_slack must be >= 0, got {cleanup_slack}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, num_entries, seed)
        if family.num_buckets != num_entries:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_entries {num_entries}"
            )

        self.window_size = window_size
        self.num_entries = num_entries
        self.cleanup_slack = cleanup_slack
        self.family = family

        #: Timestamp modulus ``W = N + C + 1`` (see wraparound refinement).
        self.timestamp_period = window_size + cleanup_slack + 1
        self.entry_bits = entry_bits_required(window_size, cleanup_slack)
        #: All-ones sentinel marking an empty entry (never a valid timestamp).
        self.empty_value = (1 << self.entry_bits) - 1
        if self.empty_value < self.timestamp_period:
            raise AssertionError("sentinel collides with timestamp range")

        self._entries = np.full(
            num_entries, self.empty_value, dtype=_dtype_for_bits(self.entry_bits)
        )
        self._scan_per_element = -(-num_entries // (cleanup_slack + 1))
        self._clean_cursor = 0
        self._position = -1

        self.counter = OperationCounter()
        #: Duplicate verdicts issued so far (telemetry; kept off the
        #: :class:`OperationCounter` to preserve its equality semantics).
        self.duplicates = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _age(self, timestamp: int, now: int) -> int:
        return (now - timestamp) % self.timestamp_period

    def _clean_step(self, now: int) -> None:
        """Step 1: erase expired timestamps in the next cursor segment."""
        entries = self._entries
        m = self.num_entries
        period = self.timestamp_period
        window = self.window_size
        empty = self.empty_value
        cursor = self._clean_cursor
        reads = 0
        writes = 0
        for _ in range(self._scan_per_element):
            value = int(entries[cursor])
            reads += 1
            if value != empty and (now - value) % period >= window:
                entries[cursor] = empty
                writes += 1
            cursor += 1
            if cursor == m:
                cursor = 0
        self._clean_cursor = cursor
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate (not recorded)."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices(self.family.indices(identifier))

    def process_indices(self, indices: Sequence[int]) -> bool:
        """Observe the next click given pre-computed hash indices."""
        self._position += 1
        now = self._position % self.timestamp_period
        self._clean_step(now)

        entries = self._entries
        period = self.timestamp_period
        window = self.window_size
        empty = self.empty_value

        # Step 2: present-and-active check (footnotes 1-2 of §4.1).
        duplicate = True
        reads = 0
        for index in indices:
            value = int(entries[index])
            reads += 1
            if value == empty or (now - value) % period >= window:
                duplicate = False
                break
        self.counter.word_reads += reads
        self.counter.elements += 1
        if duplicate:
            self.duplicates += 1
            return True
        stamp = entries.dtype.type(now)
        for index in indices:
            entries[index] = stamp
        self.counter.word_writes += len(indices)
        return False

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    #: Upper bound on one vectorized chunk (bounds temp-array memory).
    _MAX_CHUNK = 1 << 16

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Observe a batch of clicks; returns the per-click verdicts.

        Bit-identical to calling :meth:`process` in a loop — verdicts,
        entry array, cursor, and operation counts all match exactly —
        with hashing, the activity check, timestamp stores, and the
        cleaning sweep vectorized.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        self.counter.hash_evaluations += self.family.num_hashes * int(
            identifiers.shape[0]
        )
        return self.process_indices_batch(self.family.indices_batch(identifiers))

    def process_indices_batch(self, indices: "np.ndarray") -> "np.ndarray":
        """Batch variant of :meth:`process_indices` (``(n, k)`` index array)."""
        idx = np.asarray(indices)
        if idx.ndim != 2:
            raise ValueError(f"indices must be (n, k), got {idx.ndim}-D")
        n = idx.shape[0]
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        idx = idx.astype(np.int64, copy=False)
        # Chunk bounds that keep the vectorized step exact: within one
        # chunk every in-chunk insert must stay active (<= window
        # arrivals old) and the cleaning cursor must not lap any entry
        # (<= m swept slots), so pre-chunk values plus first-writer
        # resolution decide everything.
        limit = max(
            1,
            min(
                self.window_size,
                self.num_entries // self._scan_per_element,
                self._MAX_CHUNK,
            ),
        )
        for start in range(0, n, limit):
            stop = min(start + limit, n)
            self._process_chunk(idx[start:stop], out[start:stop])
        return out

    def _process_chunk(self, idx: "np.ndarray", out: "np.ndarray") -> None:
        n, k = idx.shape
        entries = self._entries
        m = self.num_entries
        period = self.timestamp_period
        window = self.window_size
        empty = self.empty_value
        scan = self._scan_per_element
        first_position = self._position + 1
        now0 = first_position % period
        rows = np.arange(n, dtype=np.int64)

        # Activity against the pre-chunk state, evaluated per element
        # via the *unwrapped* age: base_age + i.  The cursor invariant
        # (an expired entry is erased within C+1 arrivals, i.e. at age
        # <= N + C = period - 1) guarantees the true age of any entry
        # still holding a value is < period, so the unwrapped form
        # equals the scalar modular compare at every element — without
        # it, an age wrapping past the period mid-chunk would misread
        # as fresh.
        values = entries[idx].astype(np.int64)
        # (now0 - value) % period via conditional add (empty-sentinel
        # rows come out garbage, masked by the != empty term below).
        base_age = kernels.wrapped_ages(now0, values, period)
        active0 = (values != empty) & (base_age + rows[:, None] < window)
        dup0 = kernels.row_all(active0)
        # In-chunk inserts are < window arrivals old, so a covered slot
        # is active at probe time: the resolver's covered matrix is the
        # probe-read truth directly.
        duplicate, inserters, first_writer, covered = resolve_inserts(
            dup0, active0, idx, m
        )
        reads = check_reads(covered)
        ins = np.nonzero(inserters)[0]

        # Cleaning sweep: n * scan cursor slots, each visited at most
        # once (chunk limit), judged against pre-chunk values at the
        # sweeping element's clock — except entries an earlier element
        # re-inserted, which are fresh and must survive.  The cursor
        # window is at most two contiguous slices, so values, writer
        # table, and the erase store are all sliced views — no index
        # arrays, no modulo (erasures first, inserts after: an entry
        # erased by one element and re-written by a later one ends up
        # written, and slices are disjoint so the interleave is exact).
        total = n * scan
        sweep_element = kernels.repeat_arange(n, scan)
        cursor = self._clean_cursor
        offset = 0
        clean_writes = 0
        empty_stamp = entries.dtype.type(empty)
        while offset < total:
            length = min(total - offset, m - cursor)
            seg = entries[cursor : cursor + length]
            seg_values = seg.astype(np.int64)
            elems = sweep_element[offset : offset + length]
            seg_age = kernels.wrapped_ages(now0, seg_values, period) + elems
            erase = (seg_values != empty) & (seg_age >= window)
            if ins.size:
                erase &= ~(first_writer[cursor : cursor + length] < elems)
            count = int(np.count_nonzero(erase))
            if count:
                seg[erase] = empty_stamp
                clean_writes += count
            cursor = (cursor + length) % m
            offset += length
        if ins.size:
            # The final stamp per entry is its *last* writer's position
            # (fancy assignment has no duplicate-order guarantee, so the
            # last writer is made explicit with a maximum scatter).
            last_writer = np.full(m, -1, dtype=np.int64)
            if ins.size == n:
                np.maximum.at(
                    last_writer, idx.ravel(), kernels.repeat_arange(n, k)
                )
            else:
                np.maximum.at(last_writer, idx[ins].ravel(), np.repeat(ins, k))
            upd = np.nonzero(last_writer >= 0)[0]
            entries[upd] = (
                (first_position + last_writer[upd]) % period
            ).astype(entries.dtype)

        self._clean_cursor = int((self._clean_cursor + n * scan) % m)
        self._position += n
        self.counter.add(n * scan + reads, clean_writes + k * int(ins.size))
        self.counter.elements += n
        self.duplicates += int(np.count_nonzero(duplicate))
        out[:] = duplicate

    def query(self, identifier: int) -> bool:
        """Side-effect-free duplicate check against the current window."""
        return self.query_indices(self.family.indices(identifier))

    def query_indices(self, indices: Sequence[int]) -> bool:
        if self._position < 0:
            return False
        entries = self._entries
        now = self._position % self.timestamp_period
        period = self.timestamp_period
        window = self.window_size
        empty = self.empty_value
        for index in indices:
            value = int(entries[index])
            if value == empty or (now - value) % period >= window:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def position(self) -> int:
        return self._position

    @property
    def scan_per_element(self) -> int:
        """Entries swept by Step 1 on each arrival: ``ceil(m / (C+1))``."""
        return self._scan_per_element

    @property
    def memory_bits(self) -> int:
        """Modeled footprint ``m * entry_bits`` (Theorem 2's ``M``)."""
        return self.num_entries * self.entry_bits

    def active_entries(self) -> int:
        """Number of entries currently holding an active timestamp."""
        if self._position < 0:
            return 0
        now = self._position % self.timestamp_period
        values = self._entries.astype(np.int64)
        ages = (now - values) % self.timestamp_period
        return int(((values != self.empty_value) & (ages < self.window_size)).sum())

    def stale_entries(self) -> int:
        """Entries holding an expired timestamp not yet swept (diagnostic)."""
        if self._position < 0:
            return 0
        now = self._position % self.timestamp_period
        values = self._entries.astype(np.int64)
        ages = (now - values) % self.timestamp_period
        return int(((values != self.empty_value) & (ages >= self.window_size)).sum())

    @property
    def observed_duplicate_rate(self) -> float:
        """Fraction of processed clicks flagged duplicate so far."""
        return self.duplicates / self.counter.elements if self.counter.elements else 0.0

    def estimated_fp_rate(self) -> float:
        """Live FP estimate from the *measured* active fill (Theorem 2).

        A query is a false positive when all ``k`` probed entries hold
        active timestamps, so the rate is ``(active / m) ** k``.
        """
        return false_positive_rate_from_fill(
            self.active_entries() / self.num_entries, self.num_hashes
        )

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector.

        Exact round trip — ``create_detector(detector.spec())`` yields
        an identically configured detector.  Requires the default
        SplitMixFamily (a custom family cannot ride a spec).
        """
        from ..detection.detector import DetectorSpec, TBFParams, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; this detector "
                f"uses {type(self.family).__name__}"
            )
        return DetectorSpec(
            algorithm="tbf",
            window=WindowSpec("sliding", self.window_size),
            params=TBFParams(self.num_entries, self.num_hashes, self.cleanup_slack),
            seed=self.family.seed,
        )

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; delegates
        to the checkpoint registry (:func:`repro.core.save_detector`).
        """
        from .checkpoint import save_detector

        return save_detector(self)

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        counter = self.counter
        # One sweep of the entry array feeds active count, stale count,
        # fill, and the FP estimate (same floats as estimated_fp_rate()).
        if self._position < 0:
            active = stale = 0
        else:
            now = self._position % self.timestamp_period
            values = self._entries.astype(np.int64)
            occupied = values != self.empty_value
            in_window = (now - values) % self.timestamp_period < self.window_size
            active = int((occupied & in_window).sum())
            stale = int((occupied & ~in_window).sum())
        fill = active / self.num_entries
        return {
            "gauges": {
                "position": self._position,
                "estimated_fp_rate": false_positive_rate_from_fill(
                    fill, self.num_hashes
                ),
                "observed_duplicate_rate": self.observed_duplicate_rate,
                "clean_cursor": self._clean_cursor,
                "stale_entries": stale,
            },
            "counters": {
                "elements": counter.elements,
                "duplicates": self.duplicates,
                "hash_evaluations": counter.hash_evaluations,
                "word_reads": counter.word_reads,
                "word_writes": counter.word_writes,
            },
            "fills": {
                "entries": fill,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TBFDetector(N={self.window_size}, m={self.num_entries}, "
            f"k={self.num_hashes}, C={self.cleanup_slack}, "
            f"entry_bits={self.entry_bits})"
        )
