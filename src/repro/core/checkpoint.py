"""Detector checkpointing: serialize and restore in-flight sketch state.

A production click-stream processor restarts — deploys, crashes,
rebalances.  Losing a detector's state silently un-flags every click of
the last window (the attacker's dream), so the sketch must checkpoint.
This module snapshots GBF / TBF detectors — count-based and time-based
variants — to bytes and restores them to bit-identical state: the
restored detector makes exactly the decisions the original would have
(tested).

Format: an 8-byte magic, a length-prefixed JSON header carrying the
configuration and scalar state, then the raw little-endian array
payload, then a CRC32 of everything before it.  Corruption, truncation,
or a configuration mismatch raises :class:`CheckpointError` — a wrong
sketch must never load quietly.

Hash-family seeds are part of the configuration, so a checkpoint
restores with the identical family.  Checkpoints of detectors built on
externally supplied ``family`` objects record the family's class name
and parameters and rebuild it; exotic custom families are rejected at
save time rather than mis-restored at load time.

Dispatch is an open registry: :func:`register_checkpoint_kind` binds a
``kind`` tag to a (class, save, load) triple, so higher layers — the
sharded detectors in :mod:`repro.detection.sharded`, the supervised
pipeline in :mod:`repro.resilience` — add their own frame kinds without
this module importing them (no upward dependency).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..errors import CheckpointError
from ..hashing import (
    CarterWegmanFamily,
    DoubleHashingFamily,
    MultiplyShiftFamily,
    SplitMixFamily,
    TabulationFamily,
)
from .gbf import GBFDetector
from .gbf_timebased import TimeBasedGBFDetector
from .tbf import TBFDetector
from .tbf_jumping import TBFJumpingDetector
from .tbf_timebased import TimeBasedTBFDetector

__all__ = [
    "CheckpointError",
    "save_detector",
    "load_detector",
    "pack_frame",
    "unpack_frame",
    "register_checkpoint_kind",
]

_MAGIC = b"RPROCKP1"

_FAMILY_CLASSES = {
    cls.__name__: cls
    for cls in (
        SplitMixFamily,
        CarterWegmanFamily,
        TabulationFamily,
        MultiplyShiftFamily,
        DoubleHashingFamily,
    )
}


def _family_spec(family) -> Dict[str, Any]:
    name = type(family).__name__
    if name not in _FAMILY_CLASSES:
        raise CheckpointError(
            f"cannot checkpoint custom hash family {name!r}; use a built-in "
            "family or persist the detector yourself"
        )
    return {
        "class": name,
        "num_hashes": family.num_hashes,
        "num_buckets": family.num_buckets,
        "seed": family.seed,
    }


def _rebuild_family(spec: Dict[str, Any]):
    try:
        cls = _FAMILY_CLASSES[spec["class"]]
        return cls(spec["num_hashes"], spec["num_buckets"], spec["seed"])
    except (KeyError, TypeError) as error:
        raise CheckpointError(f"bad hash-family spec in checkpoint: {error}") from error


# ----------------------------------------------------------------------
# Frame format (shared by every checkpoint kind, including pipeline-level
# checkpoints in repro.resilience)
# ----------------------------------------------------------------------

def pack_frame(header: Dict[str, Any], payload: bytes) -> bytes:
    """Frame ``header`` (JSON) + ``payload`` with magic and CRC32."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    body = (
        _MAGIC
        + struct.pack("<I", len(header_bytes))
        + header_bytes
        + struct.pack("<Q", len(payload))
        + payload
    )
    return body + struct.pack("<I", zlib.crc32(body))


def unpack_frame(blob: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Inverse of :func:`pack_frame`; raises :class:`CheckpointError`."""
    if len(blob) < len(_MAGIC) + 4 + 8 + 4:
        raise CheckpointError("checkpoint truncated")
    if blob[: len(_MAGIC)] != _MAGIC:
        raise CheckpointError("bad checkpoint magic")
    body, (crc,) = blob[:-4], struct.unpack("<I", blob[-4:])
    if zlib.crc32(body) != crc:
        raise CheckpointError("checkpoint CRC mismatch (corrupt data)")
    offset = len(_MAGIC)
    (header_len,) = struct.unpack_from("<I", body, offset)
    offset += 4
    try:
        header = json.loads(body[offset : offset + header_len])
    except ValueError as error:
        raise CheckpointError(f"unreadable checkpoint header: {error}") from error
    offset += header_len
    (payload_len,) = struct.unpack_from("<Q", body, offset)
    offset += 8
    payload = body[offset : offset + payload_len]
    if len(payload) != payload_len:
        raise CheckpointError("checkpoint payload truncated")
    return header, payload


# Backwards-compatible private aliases.
_pack = pack_frame
_unpack = unpack_frame


# ----------------------------------------------------------------------
# Open kind registry
# ----------------------------------------------------------------------

_SAVERS: List[Tuple[type, str, Callable[[Any], bytes]]] = []
_LOADERS: Dict[str, Callable[[Dict[str, Any], bytes], Any]] = {}


def register_checkpoint_kind(
    kind: str,
    cls: type,
    save: Callable[[Any], bytes],
    load: Callable[[Dict[str, Any], bytes], Any],
) -> None:
    """Bind a checkpoint ``kind`` tag to a detector class.

    ``save(detector) -> bytes`` must produce a :func:`pack_frame` blob
    whose header carries ``{"kind": kind}``; ``load(header, payload)``
    must rebuild the detector.  Registering a kind again replaces the
    previous binding (latest wins) — instances are matched by exact
    type first, then by ``isinstance`` in registration order.
    """
    global _SAVERS
    _SAVERS = [entry for entry in _SAVERS if entry[1] != kind]
    _SAVERS.append((cls, kind, save))
    _LOADERS[kind] = load


def save_detector(detector) -> bytes:
    """Serialize any registered detector kind to bytes."""
    for cls, _, save in _SAVERS:
        if type(detector) is cls:
            return save(detector)
    for cls, _, save in _SAVERS:
        if isinstance(detector, cls):
            return save(detector)
    raise CheckpointError(
        f"unsupported detector type {type(detector).__name__}"
    )


#: Kinds registered by modules outside the core import graph, resolved
#: on first load.  Saving never needs this (a live detector's module is
#: necessarily imported), but a restorer — a spawn-mode parallel worker,
#: a serve node resuming from a store — may see the blob first.
_LAZY_KIND_MODULES = {
    "apbf": "repro.adaptive.filters",
    "time-limited-bf": "repro.adaptive.filters",
    "adaptive": "repro.adaptive.lifecycle",
    "adaptive-timed": "repro.adaptive.lifecycle",
}


def load_detector(blob: bytes):
    """Restore a detector from :func:`save_detector` output."""
    header, payload = unpack_frame(blob)
    kind = header.get("kind")
    loader = _LOADERS.get(kind)
    if loader is None and kind in _LAZY_KIND_MODULES:
        import importlib

        importlib.import_module(_LAZY_KIND_MODULES[kind])
        loader = _LOADERS.get(kind)
    if loader is None:
        raise CheckpointError(f"unknown detector kind {kind!r} in checkpoint")
    return loader(header, payload)


# ----------------------------------------------------------------------
# Per-detector handlers
# ----------------------------------------------------------------------

def _save_gbf(detector: GBFDetector) -> bytes:
    header = {
        "kind": "gbf",
        "window_size": detector.window_size,
        "num_subwindows": detector.num_subwindows,
        "bits_per_filter": detector.bits_per_filter,
        "word_bits": detector.word_bits,
        "family": _family_spec(detector.family),
        "position": detector._position,
        "current_lane": detector._current_lane,
        "cleaning_lane": detector._cleaning_lane,
        "clean_cursor": detector._clean_cursor,
        "active_masks": [str(mask) for mask in detector._active_masks],
        "duplicates": detector.duplicates,
    }
    payload = detector._matrix._words.tobytes()
    return pack_frame(header, payload)


def _load_gbf(header: Dict[str, Any], payload: bytes) -> GBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = GBFDetector(
            header["window_size"],
            header["num_subwindows"],
            header["bits_per_filter"],
            word_bits=header["word_bits"],
            family=family,
        )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        if words.shape != detector._matrix._words.shape:
            raise CheckpointError("GBF payload size does not match configuration")
        detector._matrix._words = words
        detector._position = header["position"]
        detector._current_lane = header["current_lane"]
        detector._cleaning_lane = header["cleaning_lane"]
        detector._clean_cursor = header["clean_cursor"]
        detector._active_masks = [int(mask) for mask in header["active_masks"]]
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(f"missing GBF checkpoint field: {error}") from error
    return detector


def _save_tbf(detector: TBFDetector) -> bytes:
    header = {
        "kind": "tbf",
        "window_size": detector.window_size,
        "num_entries": detector.num_entries,
        "cleanup_slack": detector.cleanup_slack,
        "family": _family_spec(detector.family),
        "position": detector._position,
        "clean_cursor": detector._clean_cursor,
        "dtype": detector._entries.dtype.name,
        "duplicates": detector.duplicates,
    }
    return pack_frame(header, detector._entries.tobytes())


def _load_tbf(header: Dict[str, Any], payload: bytes) -> TBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TBFDetector(
            header["window_size"],
            header["num_entries"],
            cleanup_slack=header["cleanup_slack"],
            family=family,
        )
        entries = np.frombuffer(payload, dtype=np.dtype(header["dtype"])).copy()
        if entries.shape != detector._entries.shape:
            raise CheckpointError("TBF payload size does not match configuration")
        if entries.dtype != detector._entries.dtype:
            raise CheckpointError("TBF payload dtype does not match configuration")
        detector._entries = entries
        detector._position = header["position"]
        detector._clean_cursor = header["clean_cursor"]
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(f"missing TBF checkpoint field: {error}") from error
    return detector


def _save_tbf_jumping(detector: TBFJumpingDetector) -> bytes:
    header = {
        "kind": "tbf-jumping",
        "window_size": detector.window_size,
        "num_subwindows": detector.num_subwindows,
        "num_entries": detector.num_entries,
        "cleanup_slack": detector.cleanup_slack,
        "family": _family_spec(detector.family),
        "position": detector._position,
        "clean_cursor": detector._clean_cursor,
        "dtype": detector._entries.dtype.name,
        "duplicates": detector.duplicates,
    }
    return pack_frame(header, detector._entries.tobytes())


def _load_tbf_jumping(header: Dict[str, Any], payload: bytes) -> TBFJumpingDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TBFJumpingDetector(
            header["window_size"],
            header["num_subwindows"],
            header["num_entries"],
            cleanup_slack=header["cleanup_slack"],
            family=family,
        )
        entries = np.frombuffer(payload, dtype=np.dtype(header["dtype"])).copy()
        if entries.shape != detector._entries.shape:
            raise CheckpointError(
                "TBF-jumping payload size does not match configuration"
            )
        detector._entries = entries
        detector._position = header["position"]
        detector._clean_cursor = header["clean_cursor"]
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(
            f"missing TBF-jumping checkpoint field: {error}"
        ) from error
    return detector


def _save_tbf_timebased(detector: TimeBasedTBFDetector) -> bytes:
    header = {
        "kind": "tbf-time",
        "duration": detector.duration,
        "resolution": detector.resolution,
        "num_entries": detector.num_entries,
        "cleanup_slack": detector.cleanup_slack,
        "family": _family_spec(detector.family),
        "clean_cursor": detector._clean_cursor,
        "last_unit": detector._last_unit,
        "last_time": detector._last_time,
        "dtype": detector._entries.dtype.name,
        "duplicates": detector.duplicates,
    }
    return pack_frame(header, detector._entries.tobytes())


def _load_tbf_timebased(header: Dict[str, Any], payload: bytes) -> TimeBasedTBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TimeBasedTBFDetector(
            header["duration"],
            header["resolution"],
            header["num_entries"],
            cleanup_slack=header["cleanup_slack"],
            family=family,
        )
        entries = np.frombuffer(payload, dtype=np.dtype(header["dtype"])).copy()
        if entries.shape != detector._entries.shape:
            raise CheckpointError(
                "time-based TBF payload size does not match configuration"
            )
        if entries.dtype != detector._entries.dtype:
            raise CheckpointError(
                "time-based TBF payload dtype does not match configuration"
            )
        detector._entries = entries
        detector._clean_cursor = header["clean_cursor"]
        detector._last_unit = header["last_unit"]
        detector._last_time = header["last_time"]
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(
            f"missing time-based TBF checkpoint field: {error}"
        ) from error
    return detector


def _save_gbf_timebased(detector: TimeBasedGBFDetector) -> bytes:
    header = {
        "kind": "gbf-time",
        "duration": detector.duration,
        "num_subwindows": detector.num_subwindows,
        "units_per_subwindow": detector.units_per_subwindow,
        "bits_per_filter": detector.bits_per_filter,
        "word_bits": detector.word_bits,
        "family": _family_spec(detector.family),
        "current_lane": detector._current_lane,
        "cleaning_lane": detector._cleaning_lane,
        "clean_cursor": detector._clean_cursor,
        "last_unit": detector._last_unit,
        "last_time": detector._last_time,
        "active_masks": [str(mask) for mask in detector._active_masks],
        "duplicates": detector.duplicates,
    }
    payload = detector._matrix._words.tobytes()
    return pack_frame(header, payload)


def _load_gbf_timebased(header: Dict[str, Any], payload: bytes) -> TimeBasedGBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TimeBasedGBFDetector(
            header["duration"],
            header["num_subwindows"],
            header["bits_per_filter"],
            units_per_subwindow=header["units_per_subwindow"],
            word_bits=header["word_bits"],
            family=family,
        )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        if words.shape != detector._matrix._words.shape:
            raise CheckpointError(
                "time-based GBF payload size does not match configuration"
            )
        detector._matrix._words = words
        detector._current_lane = header["current_lane"]
        detector._cleaning_lane = header["cleaning_lane"]
        detector._clean_cursor = header["clean_cursor"]
        detector._last_unit = header["last_unit"]
        detector._last_time = header["last_time"]
        detector._active_masks = [int(mask) for mask in header["active_masks"]]
        detector.duplicates = int(header.get("duplicates", 0))
    except KeyError as error:
        raise CheckpointError(
            f"missing time-based GBF checkpoint field: {error}"
        ) from error
    return detector


register_checkpoint_kind("gbf", GBFDetector, _save_gbf, _load_gbf)
register_checkpoint_kind("tbf", TBFDetector, _save_tbf, _load_tbf)
register_checkpoint_kind(
    "tbf-jumping", TBFJumpingDetector, _save_tbf_jumping, _load_tbf_jumping
)
register_checkpoint_kind(
    "tbf-time", TimeBasedTBFDetector, _save_tbf_timebased, _load_tbf_timebased
)
register_checkpoint_kind(
    "gbf-time", TimeBasedGBFDetector, _save_gbf_timebased, _load_gbf_timebased
)
