"""Detector checkpointing: serialize and restore in-flight sketch state.

A production click-stream processor restarts — deploys, crashes,
rebalances.  Losing a detector's state silently un-flags every click of
the last window (the attacker's dream), so the sketch must checkpoint.
This module snapshots GBF / TBF / TBF-jumping detectors to bytes and
restores them to bit-identical state: the restored detector makes
exactly the decisions the original would have (tested).

Format: an 8-byte magic, a length-prefixed JSON header carrying the
configuration and scalar state, then the raw little-endian array
payload, then a CRC32 of everything before it.  Corruption, truncation,
or a configuration mismatch raises :class:`CheckpointError` — a wrong
sketch must never load quietly.

Hash-family seeds are part of the configuration, so a checkpoint
restores with the identical family.  Checkpoints of detectors built on
externally supplied ``family`` objects record the family's class name
and parameters and rebuild it; exotic custom families are rejected at
save time rather than mis-restored at load time.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict

import numpy as np

from ..errors import ReproError
from ..hashing import (
    CarterWegmanFamily,
    DoubleHashingFamily,
    MultiplyShiftFamily,
    SplitMixFamily,
    TabulationFamily,
)
from .gbf import GBFDetector
from .tbf import TBFDetector
from .tbf_jumping import TBFJumpingDetector

_MAGIC = b"RPROCKP1"

_FAMILY_CLASSES = {
    cls.__name__: cls
    for cls in (
        SplitMixFamily,
        CarterWegmanFamily,
        TabulationFamily,
        MultiplyShiftFamily,
        DoubleHashingFamily,
    )
}


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint is corrupt, truncated, or does not match the config."""


def _family_spec(family) -> Dict[str, Any]:
    name = type(family).__name__
    if name not in _FAMILY_CLASSES:
        raise CheckpointError(
            f"cannot checkpoint custom hash family {name!r}; use a built-in "
            "family or persist the detector yourself"
        )
    return {
        "class": name,
        "num_hashes": family.num_hashes,
        "num_buckets": family.num_buckets,
        "seed": family.seed,
    }


def _rebuild_family(spec: Dict[str, Any]):
    try:
        cls = _FAMILY_CLASSES[spec["class"]]
        return cls(spec["num_hashes"], spec["num_buckets"], spec["seed"])
    except (KeyError, TypeError) as error:
        raise CheckpointError(f"bad hash-family spec in checkpoint: {error}") from error


def _pack(header: Dict[str, Any], payload: bytes) -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    body = (
        _MAGIC
        + struct.pack("<I", len(header_bytes))
        + header_bytes
        + struct.pack("<Q", len(payload))
        + payload
    )
    return body + struct.pack("<I", zlib.crc32(body))


def _unpack(blob: bytes) -> tuple:
    if len(blob) < len(_MAGIC) + 4 + 8 + 4:
        raise CheckpointError("checkpoint truncated")
    if blob[: len(_MAGIC)] != _MAGIC:
        raise CheckpointError("bad checkpoint magic")
    body, (crc,) = blob[:-4], struct.unpack("<I", blob[-4:])
    if zlib.crc32(body) != crc:
        raise CheckpointError("checkpoint CRC mismatch (corrupt data)")
    offset = len(_MAGIC)
    (header_len,) = struct.unpack_from("<I", body, offset)
    offset += 4
    try:
        header = json.loads(body[offset : offset + header_len])
    except ValueError as error:
        raise CheckpointError(f"unreadable checkpoint header: {error}") from error
    offset += header_len
    (payload_len,) = struct.unpack_from("<Q", body, offset)
    offset += 8
    payload = body[offset : offset + payload_len]
    if len(payload) != payload_len:
        raise CheckpointError("checkpoint payload truncated")
    return header, payload


# ----------------------------------------------------------------------
# Per-detector handlers
# ----------------------------------------------------------------------

def save_detector(detector) -> bytes:
    """Serialize a GBF / TBF / TBF-jumping detector to bytes."""
    if isinstance(detector, GBFDetector):
        return _save_gbf(detector)
    if isinstance(detector, TBFDetector):
        return _save_tbf(detector)
    if isinstance(detector, TBFJumpingDetector):
        return _save_tbf_jumping(detector)
    raise CheckpointError(
        f"unsupported detector type {type(detector).__name__}"
    )


def load_detector(blob: bytes):
    """Restore a detector from :func:`save_detector` output."""
    header, payload = _unpack(blob)
    kind = header.get("kind")
    if kind == "gbf":
        return _load_gbf(header, payload)
    if kind == "tbf":
        return _load_tbf(header, payload)
    if kind == "tbf-jumping":
        return _load_tbf_jumping(header, payload)
    raise CheckpointError(f"unknown detector kind {kind!r} in checkpoint")


def _save_gbf(detector: GBFDetector) -> bytes:
    header = {
        "kind": "gbf",
        "window_size": detector.window_size,
        "num_subwindows": detector.num_subwindows,
        "bits_per_filter": detector.bits_per_filter,
        "word_bits": detector.word_bits,
        "family": _family_spec(detector.family),
        "position": detector._position,
        "current_lane": detector._current_lane,
        "cleaning_lane": detector._cleaning_lane,
        "clean_cursor": detector._clean_cursor,
        "active_masks": [str(mask) for mask in detector._active_masks],
    }
    payload = detector._matrix._words.tobytes()
    return _pack(header, payload)


def _load_gbf(header: Dict[str, Any], payload: bytes) -> GBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = GBFDetector(
            header["window_size"],
            header["num_subwindows"],
            header["bits_per_filter"],
            word_bits=header["word_bits"],
            family=family,
        )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        if words.shape != detector._matrix._words.shape:
            raise CheckpointError("GBF payload size does not match configuration")
        detector._matrix._words = words
        detector._position = header["position"]
        detector._current_lane = header["current_lane"]
        detector._cleaning_lane = header["cleaning_lane"]
        detector._clean_cursor = header["clean_cursor"]
        detector._active_masks = [int(mask) for mask in header["active_masks"]]
    except KeyError as error:
        raise CheckpointError(f"missing GBF checkpoint field: {error}") from error
    return detector


def _save_tbf(detector: TBFDetector) -> bytes:
    header = {
        "kind": "tbf",
        "window_size": detector.window_size,
        "num_entries": detector.num_entries,
        "cleanup_slack": detector.cleanup_slack,
        "family": _family_spec(detector.family),
        "position": detector._position,
        "clean_cursor": detector._clean_cursor,
        "dtype": detector._entries.dtype.name,
    }
    return _pack(header, detector._entries.tobytes())


def _load_tbf(header: Dict[str, Any], payload: bytes) -> TBFDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TBFDetector(
            header["window_size"],
            header["num_entries"],
            cleanup_slack=header["cleanup_slack"],
            family=family,
        )
        entries = np.frombuffer(payload, dtype=np.dtype(header["dtype"])).copy()
        if entries.shape != detector._entries.shape:
            raise CheckpointError("TBF payload size does not match configuration")
        if entries.dtype != detector._entries.dtype:
            raise CheckpointError("TBF payload dtype does not match configuration")
        detector._entries = entries
        detector._position = header["position"]
        detector._clean_cursor = header["clean_cursor"]
    except KeyError as error:
        raise CheckpointError(f"missing TBF checkpoint field: {error}") from error
    return detector


def _save_tbf_jumping(detector: TBFJumpingDetector) -> bytes:
    header = {
        "kind": "tbf-jumping",
        "window_size": detector.window_size,
        "num_subwindows": detector.num_subwindows,
        "num_entries": detector.num_entries,
        "cleanup_slack": detector.cleanup_slack,
        "family": _family_spec(detector.family),
        "position": detector._position,
        "clean_cursor": detector._clean_cursor,
        "dtype": detector._entries.dtype.name,
    }
    return _pack(header, detector._entries.tobytes())


def _load_tbf_jumping(header: Dict[str, Any], payload: bytes) -> TBFJumpingDetector:
    family = _rebuild_family(header["family"])
    try:
        detector = TBFJumpingDetector(
            header["window_size"],
            header["num_subwindows"],
            header["num_entries"],
            cleanup_slack=header["cleanup_slack"],
            family=family,
        )
        entries = np.frombuffer(payload, dtype=np.dtype(header["dtype"])).copy()
        if entries.shape != detector._entries.shape:
            raise CheckpointError(
                "TBF-jumping payload size does not match configuration"
            )
        detector._entries = entries
        detector._position = header["position"]
        detector._clean_cursor = header["clean_cursor"]
    except KeyError as error:
        raise CheckpointError(
            f"missing TBF-jumping checkpoint field: {error}"
        ) from error
    return detector
