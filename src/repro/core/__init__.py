"""The paper's contribution: GBF and TBF duplicate-click detectors."""

from .checkpoint import (
    CheckpointError,
    load_detector,
    pack_frame,
    register_checkpoint_kind,
    save_detector,
    unpack_frame,
)
from .gbf import GBFDetector
from .gbf_timebased import TimeBasedGBFDetector
from .memory_model import (
    OpCost,
    exact_dict_cost,
    gbf_cost,
    gbf_tbf_crossover_subwindows,
    metwally_cbf_cost,
    naive_subwindow_bloom_cost,
    tbf_cost,
)
from .tbf import TBFDetector, entry_bits_required
from .tbf_jumping import TBFJumpingDetector
from .tbf_timebased import TimeBasedTBFDetector

__all__ = [
    "save_detector",
    "load_detector",
    "pack_frame",
    "unpack_frame",
    "register_checkpoint_kind",
    "CheckpointError",
    "GBFDetector",
    "TBFDetector",
    "TBFJumpingDetector",
    "TimeBasedGBFDetector",
    "TimeBasedTBFDetector",
    "entry_bits_required",
    "OpCost",
    "gbf_cost",
    "tbf_cost",
    "naive_subwindow_bloom_cost",
    "metwally_cbf_cost",
    "exact_dict_cost",
    "gbf_tbf_crossover_subwindows",
]
