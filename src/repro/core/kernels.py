"""Fused numpy kernels for the vectorized detection hot paths.

Every routine here is a drop-in replacement for a Python loop (or a
slow buffered ``ufunc.at`` scatter) somewhere in the batch pipeline,
with two hard requirements:

1. **Bit-identity.**  The mutated arrays end up byte-for-byte equal to
   what the scalar loop would have produced, for *any* input including
   duplicate indices.  Where numpy's fancy assignment has undefined
   duplicate semantics, the kernel either proves order cannot matter
   (constant values, idempotent OR of one bit) or partitions the work
   into classes within which it cannot.
2. **Exact op accounting.**  Each kernel returns (or lets the caller
   derive in closed form) the same ``word_reads``/``word_writes`` the
   scalar loop would have tallied — writes in particular are decided by
   *pre-sweep* values, which the kernels inspect before mutating.

The kernels are layout-aware but detector-agnostic: they know about
lane-packed words and timestamp entries, not about windows or verdicts.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

__all__ = [
    "repeat_arange",
    "wrapped_ages",
    "row_all",
    "row_and",
    "row_any",
    "or_constant_bit",
    "or_lane_slots",
    "clean_cursor_sweep",
    "lane_pattern",
    "partial_lane_masks",
    "clear_lane_span",
    "clear_lane_runs",
]


@lru_cache(maxsize=8)
def repeat_arange(n: int, reps: int) -> "np.ndarray":
    """``np.repeat(np.arange(n), reps)`` as a cached *read-only* array.

    The batch paths rebuild this exact pattern (element row of every
    hash slot / sweep slot) once per chunk with only a couple of
    distinct shapes per stream; the cache turns it into a dict hit.
    """
    pattern = np.repeat(np.arange(n, dtype=np.int64), reps)
    pattern.flags.writeable = False
    return pattern


def wrapped_ages(now: int, values: "np.ndarray", period: int) -> "np.ndarray":
    """``(now - values) % period`` for timestamps in ``[0, period)``.

    ``values`` may also hold the empty sentinel (``>= period``); those
    rows come out as arbitrary-but-deterministic negatives, which every
    caller masks behind a ``values != empty`` check anyway.  One
    conditional add replaces the (much slower) int64 modulo.
    """
    ages = np.int64(now) - values
    np.add(ages, np.int64(period), out=ages, where=ages < 0)
    return ages


def row_all(matrix: "np.ndarray") -> "np.ndarray":
    """``matrix.all(axis=1)`` unrolled over the (small) column axis.

    numpy's axis-1 reduction machinery costs ~2.5x a handful of
    column-wise ANDs when the row axis is long and the column axis is
    the hash count; every probe verdict funnels through this shape.
    """
    result = matrix[:, 0].copy()
    for column in range(1, matrix.shape[1]):
        result &= matrix[:, column]
    return result


def row_and(matrix: "np.ndarray") -> "np.ndarray":
    """``np.bitwise_and.reduce(matrix, axis=1)``, column-unrolled."""
    result = matrix[:, 0].copy()
    for column in range(1, matrix.shape[1]):
        result &= matrix[:, column]
    return result


def row_any(matrix: "np.ndarray") -> "np.ndarray":
    """``matrix.any(axis=1)`` unrolled over the (small) column axis."""
    result = matrix[:, 0].copy()
    for column in range(1, matrix.shape[1]):
        result |= matrix[:, column]
    return result


def or_constant_bit(words: "np.ndarray", idx: "np.ndarray", bit: "np.uint64") -> None:
    """``words[i] |= bit`` for every ``i`` in ``idx`` (duplicates fine).

    Safe without ``np.bitwise_or.at``: duplicate indices gather the same
    pre-value, OR in the same bit, and write back identical words — any
    assignment order produces the same array.
    """
    if idx.ndim != 1:
        idx = idx.ravel()
    words[idx] |= bit


def or_lane_slots(
    words: "np.ndarray",
    slot_idx: "np.ndarray",
    slots_per_word: int,
    num_lanes: int,
    lane: int,
    slot_word: "np.ndarray | None" = None,
    slot_shift: "np.ndarray | None" = None,
) -> None:
    """Set ``lane``'s bit at every *slot* index, dense multi-slot layout.

    Slots sharing a word need different bits, so a single fancy
    assignment could drop writes on duplicate words.  Two exact
    strategies, picked by batch density:

    * **dense accumulator** — OR the per-slot bits into a zeroed word
      image with ``np.bitwise_or.at`` (duplicate semantics defined),
      then fold it into ``words`` with one vector OR.  Two extra
      passes over the word array, so only worth it when the batch is
      a decent fraction of it.
    * **offset classes** — partition by ``slot % slots_per_word`` so
      the bit is constant within each class, where gather-OR-assign is
      exact; classes touch disjoint bits, so their order is irrelevant.

    ``slot_word``/``slot_shift`` are the matrix's precomputed gather
    tables (slot -> word index / bit shift); pass them to skip the
    divmod.
    """
    flat = slot_idx.ravel()
    if slot_word is not None:
        word_idx = slot_word[flat]
        shifts = slot_shift[flat]
    else:
        word_idx, slot_in_word = np.divmod(flat, slots_per_word)
        shifts = (slot_in_word * num_lanes).astype(np.uint64)
    if flat.size * 64 >= words.shape[0]:
        bits = np.uint64(1 << lane) << shifts
        image = np.zeros(words.shape[0], dtype=np.uint64)
        np.bitwise_or.at(image, word_idx, bits)
        words |= image
        return
    for offset in range(slots_per_word):
        sel = word_idx[shifts == np.uint64(offset * num_lanes)]
        if sel.size:
            words[sel] |= np.uint64(1 << (offset * num_lanes + lane))


def clean_cursor_sweep(
    entries: "np.ndarray",
    cursor: int,
    budget: int,
    now: int,
    period: int,
    active_span: int,
    empty: int,
) -> Tuple[int, int]:
    """One vectorized TBF cursor-cleaning sweep of ``budget`` entries.

    Visits ``entries[cursor], entries[cursor+1], ... (mod m)`` —
    ``budget <= m`` so no entry twice — erasing values whose age at
    ``now`` is ``>= active_span``.  Returns ``(new_cursor, writes)``;
    reads are exactly ``budget``.  The wraparound splits into at most
    two contiguous slices, so the erase is a view-masked store with no
    index arrays at all.
    """
    m = entries.shape[0]
    writes = 0
    remaining = budget
    while remaining > 0:
        length = min(remaining, m - cursor)
        seg = entries[cursor : cursor + length]
        ages = wrapped_ages(now, seg.astype(np.int64), period)
        stale = (seg != entries.dtype.type(empty)) & (ages >= active_span)
        count = int(np.count_nonzero(stale))
        if count:
            seg[stale] = entries.dtype.type(empty)
            writes += count
        cursor = (cursor + length) % m
        remaining -= length
    return cursor, writes


# ----------------------------------------------------------------------
# Lane-clearing kernels (dense lane-packed layout)
# ----------------------------------------------------------------------


def lane_pattern(slots_per_word: int, num_lanes: int, lane: int) -> "np.uint64":
    """``lane``'s bit replicated at every slot offset within a word."""
    pattern = 0
    for slot_in_word in range(slots_per_word):
        pattern |= 1 << (slot_in_word * num_lanes + lane)
    return np.uint64(pattern)


def partial_lane_masks(
    slots_per_word: int, num_lanes: int, lane: int
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Per-split-point masks of a word's lane bits.

    ``low[r]`` covers slots-in-word ``< r`` and ``high[r]`` slots
    ``>= r`` (``r`` in ``[0, slots_per_word]``), so a cleaning-call
    boundary landing ``r`` slots into a word splits the word's lane
    pattern into ``low[r] | high[r]``.
    """
    spw = slots_per_word
    low = np.zeros(spw + 1, dtype=np.uint64)
    for r in range(1, spw + 1):
        low[r] = low[r - 1] | np.uint64(1 << ((r - 1) * num_lanes + lane))
    high = low[spw] ^ low
    return low, high


def clear_lane_span(
    words: "np.ndarray",
    lane: int,
    start_slot: int,
    stop_slot: int,
    slots_per_word: int,
    num_lanes: int,
) -> Tuple[int, int]:
    """Zero ``lane`` over slots ``[start_slot, stop_slot)``; one call.

    Returns ``(reads, writes)`` exactly as the scalar word loop counts
    them: one read per word the span intersects, one write per word
    with a set lane bit among the span's slots.
    """
    if start_slot >= stop_slot:
        return 0, 0
    spw = slots_per_word
    pattern = lane_pattern(spw, num_lanes, lane)
    w0 = start_slot // spw
    w1 = (stop_slot - 1) // spw
    reads = w1 - w0 + 1
    if w0 == w1:
        mask = 0
        for slot in range(start_slot, stop_slot):
            mask |= 1 << ((slot % spw) * num_lanes + lane)
        mask = np.uint64(mask)
        writes = 1 if int(words[w0] & mask) else 0
        words[w0] &= ~mask
        return reads, writes
    low, high = partial_lane_masks(spw, num_lanes, lane)
    first_mask = high[start_slot % spw] if start_slot % spw else pattern
    last_mask = low[stop_slot % spw] if stop_slot % spw else pattern
    writes = int(bool(words[w0] & first_mask)) + int(bool(words[w1] & last_mask))
    if w1 - w0 > 1:
        interior = words[w0 + 1 : w1]
        writes += int(np.count_nonzero(interior & pattern))
        interior &= ~pattern
    words[w0] &= ~first_mask
    words[w1] &= ~last_mask
    return reads, writes


def clear_lane_runs(
    words: "np.ndarray",
    lane: int,
    boundaries: "np.ndarray",
    slots_per_word: int,
    num_lanes: int,
) -> Tuple[int, int]:
    """Replay consecutive variable-length ``clear_lane_range`` calls.

    ``boundaries`` is a strictly increasing int64 array ``[b_0, ...,
    b_J]``; call ``j`` covers slots ``[b_j, b_{j+1})``.  Bit mutations
    and tallies match the scalar calls exactly: each (call, word)
    intersection is one read, and one write wherever the lane holds a
    set bit among the intersection's slots — decided on pre-sweep
    values, which is sound because the calls are disjoint in slot
    space and only this lane's bits change.

    Returns ``(reads, writes)``.
    """
    if boundaries.shape[0] < 2:
        return 0, 0
    spw = slots_per_word
    starts = boundaries[:-1]
    ends = boundaries[1:]
    reads = int(((ends - 1) // spw - starts // spw + 1).sum())

    pattern = lane_pattern(spw, num_lanes, lane)
    low, high = partial_lane_masks(spw, num_lanes, lane)
    lo = int(boundaries[0])
    hi = int(boundaries[-1])
    w0 = lo // spw
    w1 = (hi - 1) // spw
    hits = words[w0 : w1 + 1] & pattern
    # Restrict the edge words to the span: slots outside [lo, hi)
    # belong to no call, so their bits must not count as writes.
    first_mask = high[lo % spw] if lo % spw else pattern
    last_mask = low[hi % spw] if hi % spw else pattern
    if w0 == w1:
        hits[0] &= np.uint64(first_mask & last_mask)
    else:
        hits[0] &= first_mask
        hits[-1] &= last_mask

    # A word crossed by no mid-word call boundary lies entirely within
    # one call and contributes one write iff it holds any lane bit; a
    # mid-word boundary at offset r splits its word's contribution into
    # the below-r and at-least-r halves.  Runs of >= spw slots admit at
    # most one boundary per word, so those corrections vectorize; only
    # sub-word runs need slot-level expansion.
    inner = boundaries[1:-1]
    split = inner[inner % spw != 0]
    if split.size and int(np.min(ends - starts)) < spw:
        writes = _count_split_writes(hits, boundaries, w0, spw, num_lanes, lane)
    else:
        writes = int(np.count_nonzero(hits))
        if split.size:
            rel = (split // spw - w0).astype(np.int64)
            r = (split % spw).astype(np.int64)
            word_vals = hits[rel]
            writes += int(
                ((word_vals & low[r]) != 0).sum()
                + ((word_vals & high[r]) != 0).sum()
                - np.count_nonzero(word_vals)
            )

    # Mutate: the union of all calls is one contiguous span.
    if w0 == w1:
        words[w0] &= ~np.uint64(first_mask & last_mask)
    else:
        if w1 - w0 > 1:
            words[w0 + 1 : w1] &= ~pattern
        words[w0] &= ~first_mask
        words[w1] &= ~last_mask
    return reads, writes


def _count_split_writes(
    hits: "np.ndarray",
    boundaries: "np.ndarray",
    w0: int,
    spw: int,
    num_lanes: int,
    lane: int,
) -> int:
    """Slot-exact write count for runs shorter than a word.

    Expands only the words holding set lane bits into slot positions
    (``hits`` is already masked to the span), assigns each slot to its
    covering call, and counts distinct (call, word) pairs — the
    expansion order keeps the pair key monotone, so a boundary count
    suffices.
    """
    nz = np.nonzero(hits)[0]
    if nz.size == 0:
        return 0
    shifts = (np.arange(spw, dtype=np.uint64) * np.uint64(num_lanes)) + np.uint64(lane)
    bitmat = (hits[nz, None] >> shifts) & np.uint64(1)
    rel_word, slot_in_word = np.nonzero(bitmat)
    slots = (w0 + nz[rel_word]) * spw + slot_in_word
    call = np.searchsorted(boundaries, slots, side="right") - 1
    key = call * (hits.shape[0] + 1) + (slots // spw - w0)
    return int(np.count_nonzero(np.diff(key))) + 1
