"""Analytical per-element operation costs (Theorems 1.3 and 2.3).

The paper measures running time in D-bit-word memory operations per
processed element.  This module provides closed-form predictions for
every algorithm in the library so the op-count benchmarks can compare
measured against predicted, and so ablation A2 can locate the Q value
where TBF overtakes GBF.

All counts are *worst case* per element (every check reads all ``k``
positions, every insert writes all ``k``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpCost:
    """Predicted word operations per element, split by purpose."""

    check_reads: float
    insert_writes: float
    cleaning_ops: float

    @property
    def total(self) -> float:
        return self.check_reads + self.insert_writes + self.cleaning_ops


def gbf_cost(
    window_size: int,
    num_subwindows: int,
    bits_per_filter: int,
    num_hashes: int,
    word_bits: int = 64,
) -> OpCost:
    """GBF: ``k * ceil((Q+1)/D)`` reads, ``k`` writes, plus lane cleaning.

    Cleaning zeroes ``ceil(m / (N/Q))`` slots per element; dense lane
    packing clears ``D // (Q+1)`` slots per word RMW, giving Theorem
    1.3's ``O(Q/D * M/N)`` word operations.
    """
    num_lanes = num_subwindows + 1
    if num_lanes <= word_bits:
        words_per_slot = 1
        slots_per_word = word_bits // num_lanes
    else:
        words_per_slot = -(-num_lanes // word_bits)
        slots_per_word = 1
    subwindow_size = window_size // num_subwindows
    clean_slots = -(-bits_per_filter // subwindow_size)
    clean_words = -(-clean_slots // slots_per_word)
    return OpCost(
        check_reads=num_hashes * words_per_slot,
        insert_writes=num_hashes,
        cleaning_ops=2.0 * clean_words,
    )


def tbf_cost(
    window_size: int,
    num_entries: int,
    num_hashes: int,
    cleanup_slack: int | None = None,
) -> OpCost:
    """TBF: ``k`` reads, ``k`` writes, ``ceil(m/(C+1))`` cleaning scans.

    Theorem 2.3's ``O(M / (N log N))`` is the cleaning term at the
    default ``C = N - 1``: the cursor scans ``~m/N`` entries per element
    and ``m = M / O(log N)``.
    """
    if cleanup_slack is None:
        cleanup_slack = window_size - 1
    scans = -(-num_entries // (cleanup_slack + 1))
    return OpCost(
        check_reads=num_hashes,
        insert_writes=num_hashes,
        cleaning_ops=2.0 * scans,
    )


def naive_subwindow_bloom_cost(
    window_size: int,
    num_subwindows: int,
    bits_per_filter: int,
    num_hashes: int,
    word_bits: int = 64,
) -> OpCost:
    """Naive per-sub-window Bloom filters (§3.1's strawman).

    Checking touches one bit — one word — per hash per *active filter*
    (``Q * k`` reads, the cost GBF's interleaving removes); cleaning the
    expired filter is amortized over the sub-window exactly as in GBF.
    """
    subwindow_size = window_size // num_subwindows
    clean_bits = -(-bits_per_filter // subwindow_size)
    clean_words = min(clean_bits, -(-bits_per_filter // word_bits))
    return OpCost(
        check_reads=float(num_subwindows * num_hashes),
        insert_writes=num_hashes,
        cleaning_ops=2.0 * clean_words,
    )


def metwally_cbf_cost(
    window_size: int,
    num_subwindows: int,
    num_counters: int,
    num_hashes: int,
) -> OpCost:
    """Metwally et al. jumping-window counting filters (§3.3).

    Per element: check ``k`` counters of the main filter, increment
    ``k`` counters in both the sub-window filter and the main filter.
    Expiring a sub-window subtracts an entire ``m``-counter filter from
    the main one — ``O(m)`` operations amortized over ``N/Q`` arrivals.
    """
    subwindow_size = window_size // num_subwindows
    subtract_ops = 2.0 * num_counters / subwindow_size
    return OpCost(
        check_reads=num_hashes,
        insert_writes=2.0 * num_hashes,
        cleaning_ops=subtract_ops,
    )


def exact_dict_cost(num_hashes: int = 1) -> OpCost:
    """Exact dict+queue baseline: O(1) dictionary ops, O(N log N)-bits state.

    Listed for completeness in throughput tables; its memory is the
    thing the paper's sketches exist to avoid.
    """
    return OpCost(check_reads=1.0, insert_writes=2.0, cleaning_ops=2.0)


def gbf_tbf_crossover_subwindows(
    window_size: int,
    total_memory_bits: int,
    num_hashes: int,
    word_bits: int = 64,
) -> int:
    """Smallest Q at which TBF costs fewer word ops than GBF (ablation A2).

    Both algorithms are given the same memory budget ``M``; GBF splits it
    into ``Q + 1`` lanes, TBF into ``M / ceil(log2(2N+1))`` entries.
    Returns ``window_size`` when GBF wins everywhere (no crossover).
    """
    import math

    entry_bits = max(1, math.ceil(math.log2(2 * window_size + 2)))
    tbf_entries = max(1, total_memory_bits // entry_bits)
    tbf_total = tbf_cost(window_size, tbf_entries, num_hashes).total
    for num_subwindows in range(1, window_size + 1):
        if window_size % num_subwindows != 0:
            continue
        bits_per_filter = max(1, total_memory_bits // (num_subwindows + 1))
        gbf_total = gbf_cost(
            window_size, num_subwindows, bits_per_filter, num_hashes, word_bits
        ).total
        if tbf_total < gbf_total:
            return num_subwindows
    return window_size
