"""GBF over time-based jumping windows (§3.1 extension).

"Instead of dividing the entire jumping window equally by counting
elements, the time-based jumping window is divided into Q sub-windows
with the same time expansion.  Then each sub-window is equally divided
into R time units.  In Step 1, the cleaning procedure executes once in
each time unit, and scans M/((Q+1)R) entries."

The lane rotation is driven by the clock: sub-window boundaries fall
every ``duration / Q`` time units regardless of arrival counts, and the
expired lane is zeroed across the ``R`` time units of the following
sub-window (``ceil(m / R)`` slots per unit).  Because a sub-window may
contain arbitrarily many — or zero — arrivals, cleaning is funded by
elapsed time units, not by arrivals, and idle gaps longer than a full
lane cycle are fast-forwarded with a bulk wipe.

Storage and op accounting are shared with the count-based GBF via
:class:`~repro.core.lanes.LanePackedBitMatrix`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..bloom.params import false_positive_rate_from_fill
from ..errors import ConfigurationError, StreamError
from ..hashing import HashFamily, SplitMixFamily
from . import kernels
from .batch import resolve_inserts
from .lanes import LanePackedBitMatrix


class TimeBasedGBFDetector:
    """Duplicate detector over a time-based jumping window.

    Parameters
    ----------
    duration:
        Window length ``T`` in stream time units.
    num_subwindows:
        ``Q`` equal-duration sub-windows.
    units_per_subwindow:
        ``R``: cleaning granularity within a sub-window.
    bits_per_filter, num_hashes, word_bits, seed, family:
        As in :class:`~repro.core.gbf.GBFDetector`.
    """

    def __init__(
        self,
        duration: float,
        num_subwindows: int,
        bits_per_filter: int,
        num_hashes: int = 4,
        units_per_subwindow: int = 16,
        word_bits: int = 64,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        if units_per_subwindow < 1:
            raise ConfigurationError(
                f"units_per_subwindow must be >= 1, got {units_per_subwindow}"
            )
        if bits_per_filter < 1:
            raise ConfigurationError(
                f"bits_per_filter must be >= 1, got {bits_per_filter}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, bits_per_filter, seed)
        if family.num_buckets != bits_per_filter:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != bits_per_filter "
                f"{bits_per_filter}"
            )

        self.duration = float(duration)
        self.num_subwindows = num_subwindows
        self.units_per_subwindow = units_per_subwindow
        self.unit_duration = self.duration / (num_subwindows * units_per_subwindow)
        self.bits_per_filter = bits_per_filter
        self.word_bits = word_bits
        self.family = family
        self.num_lanes = num_subwindows + 1

        self.counter = OperationCounter()
        #: Duplicate verdicts issued so far (telemetry; kept off the
        #: :class:`OperationCounter` to preserve its equality semantics).
        self.duplicates = 0
        self._matrix = LanePackedBitMatrix(
            bits_per_filter, self.num_lanes, word_bits, self.counter
        )
        self._clean_per_unit = -(-bits_per_filter // units_per_subwindow)

        self._last_unit: Optional[int] = None
        self._last_time: Optional[float] = None
        self._current_lane = 0
        self._cleaning_lane: Optional[int] = None
        self._clean_cursor = bits_per_filter  # nothing to clean yet
        self._active_masks = [0] * self._matrix.words_per_slot
        self._lane_bit(0, set_active=True)

    # ------------------------------------------------------------------
    # Lane and clock bookkeeping
    # ------------------------------------------------------------------

    def _lane_bit(self, lane: int, set_active: bool) -> None:
        if self._matrix.words_per_slot == 1:
            offset, bit = 0, lane
        else:
            offset, bit = divmod(lane, self.word_bits)
        if set_active:
            self._active_masks[offset] |= 1 << bit
        else:
            self._active_masks[offset] &= ~(1 << bit)

    def _rotate_to_subwindow(self, subwindow: int) -> None:
        new_lane = subwindow % self.num_lanes
        self._current_lane = new_lane
        self._lane_bit(new_lane, set_active=True)
        if subwindow >= self.num_subwindows:
            expired_lane = (subwindow + 1) % self.num_lanes
            self._lane_bit(expired_lane, set_active=False)
            self._cleaning_lane = expired_lane
            self._clean_cursor = 0

    def _clean_units(self, units: int) -> None:
        """Run ``units`` time units' worth of lane cleaning."""
        lane = self._cleaning_lane
        if lane is None or self._clean_cursor >= self.bits_per_filter or units <= 0:
            return
        budget = units * self._clean_per_unit
        self._matrix.clear_lane_range(lane, self._clean_cursor, budget)
        self._clean_cursor = min(self._clean_cursor + budget, self.bits_per_filter)

    def _finish_cleaning_if_due(self) -> None:
        """Force-complete lane cleaning at a rotation boundary.

        ``ceil(m / R)`` per unit guarantees ``R`` units suffice; this
        only mops up when a rotation lands mid-unit.
        """
        if (
            self._cleaning_lane is not None
            and self._clean_cursor < self.bits_per_filter
        ):
            remaining = self.bits_per_filter - self._clean_cursor
            units = -(-remaining // self._clean_per_unit)
            self._clean_units(units)

    def _advance_clock(self, timestamp: float) -> None:
        if self._last_time is not None and timestamp < self._last_time:
            raise StreamError(
                f"timestamp regressed: {timestamp} after {self._last_time}"
            )
        self._last_time = timestamp
        unit = int(timestamp // self.unit_duration)
        if self._last_unit is None:
            self._last_unit = unit
            self._rotate_to_subwindow(unit // self.units_per_subwindow)
            return
        if unit == self._last_unit:
            return
        units_per_sub = self.units_per_subwindow
        old_sub = self._last_unit // units_per_sub
        new_sub = unit // units_per_sub
        if new_sub - old_sub > self.num_lanes:
            # Idle gap longer than the whole lane cycle: every lane has
            # expired.  Wipe and restart the rotation at the new epoch.
            self._matrix.clear_all()
            self._active_masks = [0] * self._matrix.words_per_slot
            self._cleaning_lane = None
            self._clean_cursor = self.bits_per_filter
            self._rotate_to_subwindow(new_sub)
            self._last_unit = unit
            return
        # Walk sub-window boundaries in order, funding cleaning with the
        # units elapsed inside each sub-window.
        current_unit = self._last_unit
        for sub in range(old_sub, new_sub + 1):
            sub_end_unit = (sub + 1) * units_per_sub
            target = min(unit, sub_end_unit - 1)
            if target > current_unit:
                self._clean_units(target - current_unit)
                current_unit = target
            if sub < new_sub:
                # Crossing into sub-window sub + 1: spend the final
                # unit's budget, then rotate.
                self._clean_units(1)
                self._finish_cleaning_if_due()
                self._rotate_to_subwindow(sub + 1)
                current_unit = sub_end_unit
        self._last_unit = unit

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def process_at(self, identifier: int, timestamp: float) -> bool:
        """Observe a click at ``timestamp``; True means duplicate."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices_at(self.family.indices(identifier), timestamp)

    def process_indices_at(self, indices: Sequence[int], timestamp: float) -> bool:
        self._advance_clock(timestamp)
        combined = self._matrix.probe_and(indices)
        self.counter.elements += 1
        masks = self._active_masks
        for offset, field in enumerate(combined):
            if field & masks[offset]:
                self.duplicates += 1
                return True
        self._matrix.set_lane(indices, self._current_lane)
        return False

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        """Observe a batch of clicks with timestamps; bit-identical to a
        scalar :meth:`process_at` loop.

        Elements are fused into maximal *sub-window* segments: within
        one sub-window no rotation or idle wipe can occur, and the only
        clock activity is lane cleaning — which touches the cleaning
        lane alone (never in the active mask, never the current lane),
        so sweeps commute with probes and inserts bit-for-bit.  The
        per-unit cleaning calls of a whole segment run as one fused
        variable-run kernel sweep
        (:meth:`~repro.core.lanes.LanePackedBitMatrix.clear_lane_run_lengths`);
        boundary crossings (rotations, idle wipes, mop-up cleaning)
        advance the clock scalar-style between segments — see
        ``docs/performance.md``.  Regressing timestamps raise
        :class:`~repro.errors.StreamError` after the valid prefix is
        processed, matching the scalar loop.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        if timestamps.shape != identifiers.shape:
            raise ValueError(
                f"timestamps shape {timestamps.shape} != identifiers "
                f"shape {identifiers.shape}"
            )
        n = identifiers.shape[0]
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        if self._matrix.words_per_slot != 1:
            # Wide layout: keep the scalar path (see GBFDetector).
            for row in range(n):
                out[row] = self.process_at(
                    int(identifiers[row]), float(timestamps[row])
                )
            return out
        previous = np.empty(n, dtype=np.float64)
        previous[0] = self._last_time if self._last_time is not None else -np.inf
        previous[1:] = timestamps[:-1]
        regressions = np.nonzero(timestamps < previous)[0]
        limit = int(regressions[0]) if regressions.size else n
        k = self.family.num_hashes
        self.counter.hash_evaluations += k * min(limit + 1, n)
        if limit:
            idx = self.family.indices_batch(identifiers[:limit]).astype(
                np.int64, copy=False
            )
            units = np.floor_divide(timestamps[:limit], self.unit_duration).astype(
                np.int64
            )
            units_per_sub = self.units_per_subwindow
            start = 0
            while start < limit:
                self._advance_clock(float(timestamps[start]))
                # Segment: the rest of this sub-window.  Re-entering a
                # sub-window is a rotation no-op, so oversized segments
                # split exactly at the cap.
                sub_end = (units[start] // units_per_sub + 1) * units_per_sub
                end = int(np.searchsorted(units, sub_end, side="left"))
                end = min(end, start + 65536)
                self._segment_group(
                    idx[start:end], units[start:end], out[start:end]
                )
                self._last_time = float(timestamps[end - 1])
                self._last_unit = int(units[end - 1])
                start = end
        if limit < n:
            raise StreamError(
                f"timestamp regressed: {float(timestamps[limit])} "
                f"after {float(previous[limit])}"
            )
        return out

    def _segment_group(
        self, idx: "np.ndarray", units: "np.ndarray", out: "np.ndarray"
    ) -> None:
        """Fused probe/insert/clean for one sub-window's arrivals.

        Intra-segment cleaning clears only the cleaning lane, which is
        neither active nor current, so running all of the segment's
        per-unit sweeps up front (one fused variable-run kernel call)
        leaves every probe verdict, insert decision, bit mutation, and
        op tally identical to the scalar interleaving.
        """
        n, _ = idx.shape
        matrix = self._matrix
        lane = self._cleaning_lane
        if (
            n > 1
            and lane is not None
            and self._clean_cursor < self.bits_per_filter
        ):
            lengths = np.diff(units) * self._clean_per_unit
            total = int(lengths.sum())
            if total:
                matrix.clear_lane_run_lengths(lane, self._clean_cursor, lengths)
                # min() is absorbing, so the scalar per-call clamps
                # collapse to one.
                self._clean_cursor = min(
                    self._clean_cursor + total, self.bits_per_filter
                )
        fields = matrix.probe_fields_batch(idx)
        self.counter.elements += n
        mask = np.uint64(self._active_masks[0])
        dup0 = (kernels.row_and(fields) & mask) != 0
        cov0 = ((fields >> np.uint64(self._current_lane)) & np.uint64(1)).astype(bool)
        duplicate, inserters, _, _ = resolve_inserts(
            dup0, cov0, idx, matrix.num_slots, need_covered=False
        )
        ins = np.nonzero(inserters)[0]
        if ins.size:
            slots = idx if ins.size == n else idx[ins]
            matrix.or_lane_batch(slots, self._current_lane)
        self.duplicates += int(np.count_nonzero(duplicate))
        out[:] = duplicate

    def query_at(self, identifier: int, timestamp: float) -> bool:
        """Duplicate check at ``timestamp`` without recording the element."""
        indices = self.family.indices(identifier)
        self._advance_clock(timestamp)
        combined = self._matrix.probe_and(indices)
        masks = self._active_masks
        return any(field & masks[offset] for offset, field in enumerate(combined))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def memory_bits(self) -> int:
        return self._matrix.memory_bits

    def active_lanes(self) -> List[int]:
        lanes = []
        for lane in range(self.num_lanes):
            if self._matrix.words_per_slot == 1:
                offset, bit = 0, lane
            else:
                offset, bit = divmod(lane, self.word_bits)
            if self._active_masks[offset] >> bit & 1:
                lanes.append(lane)
        return lanes

    def lane_bits_set(self, lane: int) -> int:
        """Population count of one lane (testing/diagnostics)."""
        return self._matrix.lane_population(lane)

    @property
    def observed_duplicate_rate(self) -> float:
        """Fraction of processed clicks flagged duplicate so far."""
        return self.duplicates / self.counter.elements if self.counter.elements else 0.0

    def estimated_fp_rate(self) -> float:
        """Live FP estimate ``1 - prod_i (1 - f_i^k)`` over active lanes."""
        product = 1.0
        m = self.bits_per_filter
        k = self.num_hashes
        for lane in self.active_lanes():
            fill = self._matrix.lane_population(lane) / m
            product *= 1.0 - false_positive_rate_from_fill(fill, k)
        return 1.0 - product

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector.

        Exact round trip — ``create_detector(detector.spec())`` yields
        an identically configured detector.  The window spec is
        descriptive only (time-based detectors are sized by their
        params); requires the default hash family and word size.
        """
        from ..detection.detector import DetectorSpec, GBFParams, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; this detector "
                f"uses {type(self.family).__name__}"
            )
        if self.word_bits != 64:
            raise ConfigurationError(
                f"spec() cannot express word_bits={self.word_bits}"
            )
        return DetectorSpec(
            algorithm="gbf-time",
            window=WindowSpec("jumping", self.num_subwindows, self.num_subwindows),
            params=GBFParams(self.bits_per_filter, self.family.num_hashes),
            duration=self.duration,
            resolution=self.units_per_subwindow,
            seed=self.family.seed,
        )

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; delegates
        to the checkpoint registry (:func:`repro.core.save_detector`).
        """
        from .checkpoint import save_detector

        return save_detector(self)

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        counter = self.counter
        cleaning = (
            self._cleaning_lane is not None
            and self._clean_cursor < self.bits_per_filter
        )
        subwindow = (
            self._last_unit // self.units_per_subwindow
            if self._last_unit is not None
            else 0
        )
        # One population count per lane, shared by the fill gauges and
        # the FP estimate (same floats as estimated_fp_rate()).
        m = self.bits_per_filter
        k = self.num_hashes
        pops = [self._matrix.lane_population(lane) for lane in range(self.num_lanes)]
        active = self.active_lanes()
        product = 1.0
        for lane in active:
            product *= 1.0 - false_positive_rate_from_fill(pops[lane] / m, k)
        return {
            "gauges": {
                "time_unit": self._last_unit if self._last_unit is not None else -1,
                "estimated_fp_rate": 1.0 - product,
                "observed_duplicate_rate": self.observed_duplicate_rate,
                "clean_cursor": self._clean_cursor if cleaning else 0,
                "active_lanes": len(active),
            },
            "counters": {
                "elements": counter.elements,
                "duplicates": self.duplicates,
                "hash_evaluations": counter.hash_evaluations,
                "word_reads": counter.word_reads,
                "word_writes": counter.word_writes,
                "rotations": subwindow,
            },
            "fills": {
                f"lane{lane}": pops[lane] / m
                for lane in range(self.num_lanes)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeBasedGBFDetector(T={self.duration}, Q={self.num_subwindows}, "
            f"m={self.bits_per_filter}, k={self.num_hashes})"
        )
