"""Shared machinery for the vectorized batch detection paths.

Every detector's ``process_batch`` follows the same plan: probe the
whole chunk against the *pre-chunk* state with array ops, then resolve
the interactions *between* elements of the chunk — an element that
inserts makes its slots look occupied to every later element — without
falling back to full scalar processing.

The resolution problem is ordered: element ``i``'s verdict depends on
which earlier elements inserted, and whether they insert depends on
*their* earlier elements.  :func:`resolve_inserts` handles it exactly:

* An element already duplicate against the pre-chunk state stays a
  duplicate no matter what the chunk does (inserts only add coverage),
  and it never inserts.
* Optimistic pre-pass: assume every non-duplicate inserts and build a
  dense first-writer table with one ``np.minimum.at`` scatter (its
  duplicate-index semantics are defined, unlike fancy assignment).
  Real writers are a subset of the assumed ones, so any element some
  uncovered slot of which is *not* optimistically covered can never
  flip — it is a definite inserter, decided without any per-element
  work.
* Only the (typically few) remaining elements are walked in arrival
  order over plain Python ints, checking each still-uncertain slot
  against the definite writers' table and a byte-per-entry written
  flag.  Even a fully-colliding chunk costs a handful of list/bytearray
  operations per element — far below the scalar path's hashing +
  probing + cleaning.

The returned first-writer table answers "which element first wrote
entry ``e``" by direct indexing (``fw[entries]``), which the detectors
use for read-count and cleaning-sweep accounting.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import kernels

#: First-writer value for entries nobody writes; larger than any row.
NO_WRITER = np.iinfo(np.int64).max


def resolve_inserts(
    dup0: "np.ndarray",
    cov0: "np.ndarray",
    idx: "np.ndarray",
    num_entries: int,
    need_covered: bool = True,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
    """Resolve intra-chunk insert dependencies exactly.

    Parameters
    ----------
    dup0:
        ``(n,)`` bool — element is a duplicate against the pre-chunk
        state alone.
    cov0:
        ``(n, k)`` bool — slot already covered pre-chunk *in the
        dimension inserts write to* (current lane for GBF, active
        timestamp for TBF).  ``dup0`` may be wider than
        ``cov0.all(axis=1)`` (GBF: any active lane suffices), but
        ``cov0.all(axis=1)`` must imply ``dup0``.
    idx:
        ``(n, k)`` int64 hash indices into ``[0, num_entries)``.
    num_entries:
        Size of the hashed table (slots for GBF, entries for TBF).

    Returns ``(duplicate, inserters, first_writer, covered)`` where
    ``first_writer`` is a dense ``(num_entries,)`` int64 table holding
    the earliest *actually inserting* element per entry
    (:data:`NO_WRITER` where none), and ``covered`` is the ``(n, k)``
    bool matrix ``cov0 | (first_writer[idx] < row)`` — slot covered *at
    probe time*, which the TBF-family detectors feed straight to
    :func:`check_reads`.  On the no-flip hot path it is the same array
    the resolution already materialized, so callers get it for free;
    callers that never read it (GBF counts ``k`` reads per probe
    unconditionally) pass ``need_covered=False`` to skip the rebuild
    on the duplicate-heavy paths, and get ``None``.
    """
    n, k = idx.shape
    duplicate = dup0.copy()
    inserters = ~dup0
    first_writer = np.full(num_entries, NO_WRITER, dtype=np.int64)
    num_dup0 = int(np.count_nonzero(dup0))
    if num_dup0 == n:
        return duplicate, inserters, first_writer, cov0

    rows = np.arange(n, dtype=np.int64)
    if num_dup0 == 0:
        # Nothing was duplicate pre-chunk (the common case on distinct
        # traffic): the scatter values are the cached identity pattern.
        vals = kernels.repeat_arange(n, k)
    else:
        # Pre-chunk duplicates scatter NO_WRITER, which never wins a
        # minimum — the table matches a candidates-only scatter without
        # gathering candidate rows out of ``idx``.
        vals = np.where(inserters, rows, NO_WRITER).repeat(k)
    np.minimum.at(first_writer, idx.ravel(), vals)
    rows_col = rows[:, None]
    # A verdict can flip only if every uncovered slot is covered even
    # under the *optimistic* writer set (all candidates).
    potential = cov0 | (first_writer[idx] < rows_col)
    maybe = kernels.row_all(potential)
    maybe &= inserters
    if not maybe.any():
        # Nobody flips: every candidate inserts, the optimistic table
        # is the real one — and ``potential`` is precisely the covered
        # matrix against it, for every row.
        return duplicate, inserters, first_writer, (
            potential if need_covered else None
        )

    # Definite inserters' writes are real under every resolution; bake
    # them into a certain-writer table the walk can consult (same
    # masked-scatter trick as above).
    certain = np.full(num_entries, NO_WRITER, dtype=np.int64)
    definite = inserters & ~maybe
    if definite.any():
        np.minimum.at(
            certain, idx.ravel(), np.where(definite, rows, NO_WRITER).repeat(k)
        )
    walk_rows = np.nonzero(maybe)[0]
    walk_idx = idx[walk_rows]
    # Slots needing the in-order check: not covered pre-chunk and not
    # covered by an earlier definite inserter.
    need = ~(cov0[walk_rows] | (certain[walk_idx] < walk_rows[:, None]))

    # A row with no needed slot is covered by pre-chunk state plus
    # definite writers alone: it flips under every resolution, without
    # walking (and, flipping, writes nothing later rows could need).
    # Only rows leaning on an *uncertain* earlier writer walk.
    flipped = False
    uncertain = kernels.row_any(need)
    if not uncertain.all():
        sure_rows = walk_rows[~uncertain]
        duplicate[sure_rows] = True
        inserters[sure_rows] = False
        flipped = True
        walk_rows = walk_rows[uncertain]
        walk_idx = walk_idx[uncertain]
        need = need[uncertain]

    written = bytearray(num_entries)
    slots_list = walk_idx.tolist()
    need_list = need.tolist()
    for i, row in enumerate(walk_rows.tolist()):
        slots = slots_list[i]
        needs = need_list[i]
        flips = True
        for j in range(k):
            if needs[j] and not written[slots[j]]:
                flips = False
                break
        if flips:
            duplicate[row] = True
            inserters[row] = False
            flipped = True
        else:
            for j in range(k):
                written[slots[j]] = 1

    if flipped:
        # Rebuild over the actual inserters only.
        first_writer.fill(NO_WRITER)
        if inserters.any():
            np.minimum.at(
                first_writer,
                idx.ravel(),
                np.where(inserters, rows, NO_WRITER).repeat(k),
            )
    if need_covered:
        covered = cov0 | (first_writer[idx] < rows_col)
    else:
        covered = None
    return duplicate, inserters, first_writer, covered


def check_reads(active: "np.ndarray") -> int:
    """Total probe reads for a chunk, matching the scalar early-break.

    The scalar check reads slots in hash order until the first inactive
    one: ``k`` reads for a duplicate, ``first_inactive + 1`` otherwise.
    Equivalently, one read per element plus one per all-active row
    prefix shorter than ``k`` — a running column AND, cheaper than the
    axis-1 argmax reduction.  (Duplicate rows are exactly the
    all-active ones, so they fall out of the same sum.)
    """
    n, k = active.shape
    reads = n
    if k > 1:
        prefix = active[:, 0].copy()
        reads += int(np.count_nonzero(prefix))
        for column in range(1, k - 1):
            prefix &= active[:, column]
            reads += int(np.count_nonzero(prefix))
    return reads
