"""Shared machinery for the vectorized batch detection paths.

Every detector's ``process_batch`` follows the same plan: probe the
whole chunk against the *pre-chunk* state with array ops, then resolve
the interactions *between* elements of the chunk — an element that
inserts makes its slots look occupied to every later element — without
falling back to full scalar processing.

The resolution problem is ordered: element ``i``'s verdict depends on
which earlier elements inserted, and whether they insert depends on
*their* earlier elements.  :func:`resolve_inserts` handles it exactly:

* An element already duplicate against the pre-chunk state stays a
  duplicate no matter what the chunk does (inserts only add coverage),
  and it never inserts.
* Optimistic pre-pass: assume every non-duplicate inserts and build a
  dense first-writer table with one ``np.minimum.at`` scatter (its
  duplicate-index semantics are defined, unlike fancy assignment).
  Real writers are a subset of the assumed ones, so any element some
  uncovered slot of which is *not* optimistically covered can never
  flip — it is a definite inserter, decided without any per-element
  work.
* Only the (typically few) remaining elements are walked in arrival
  order over plain Python ints, checking each still-uncertain slot
  against the definite writers' table and a byte-per-entry written
  flag.  Even a fully-colliding chunk costs a handful of list/bytearray
  operations per element — far below the scalar path's hashing +
  probing + cleaning.

The returned first-writer table answers "which element first wrote
entry ``e``" by direct indexing (``fw[entries]``), which the detectors
use for read-count and cleaning-sweep accounting.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: First-writer value for entries nobody writes; larger than any row.
NO_WRITER = np.iinfo(np.int64).max


def resolve_inserts(
    dup0: "np.ndarray", cov0: "np.ndarray", idx: "np.ndarray", num_entries: int
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Resolve intra-chunk insert dependencies exactly.

    Parameters
    ----------
    dup0:
        ``(n,)`` bool — element is a duplicate against the pre-chunk
        state alone.
    cov0:
        ``(n, k)`` bool — slot already covered pre-chunk *in the
        dimension inserts write to* (current lane for GBF, active
        timestamp for TBF).  ``dup0`` may be wider than
        ``cov0.all(axis=1)`` (GBF: any active lane suffices), but
        ``cov0.all(axis=1)`` must imply ``dup0``.
    idx:
        ``(n, k)`` int64 hash indices into ``[0, num_entries)``.
    num_entries:
        Size of the hashed table (slots for GBF, entries for TBF).

    Returns ``(duplicate, inserters, first_writer)`` where
    ``first_writer`` is a dense ``(num_entries,)`` int64 table holding
    the earliest *actually inserting* element per entry
    (:data:`NO_WRITER` where none).
    """
    n, k = idx.shape
    duplicate = dup0.copy()
    inserters = ~dup0
    first_writer = np.full(num_entries, NO_WRITER, dtype=np.int64)
    cand_rows = np.nonzero(inserters)[0]
    if cand_rows.size == 0:
        return duplicate, inserters, first_writer

    cand_idx = idx[cand_rows]
    np.minimum.at(first_writer, cand_idx.ravel(), np.repeat(cand_rows, k))
    cand_cov = cov0[cand_rows]
    rows_col = cand_rows[:, None]
    # A verdict can flip only if every uncovered slot is covered even
    # under the *optimistic* writer set (all candidates).
    maybe = (cand_cov | (first_writer[cand_idx] < rows_col)).all(axis=1)
    if not maybe.any():
        # Nobody flips: every candidate inserts, the optimistic table
        # is the real one.
        return duplicate, inserters, first_writer

    # Definite inserters' writes are real under every resolution; bake
    # them into a certain-writer table the walk can consult.
    definite_rows = cand_rows[~maybe]
    certain = np.full(num_entries, NO_WRITER, dtype=np.int64)
    if definite_rows.size:
        np.minimum.at(
            certain, idx[definite_rows].ravel(), np.repeat(definite_rows, k)
        )
    walk_rows = cand_rows[maybe]
    walk_idx = cand_idx[maybe]
    # Slots needing the in-order check: not covered pre-chunk and not
    # covered by an earlier definite inserter.
    need = ~(cand_cov[maybe] | (certain[walk_idx] < walk_rows[:, None]))

    written = bytearray(num_entries)
    slots_list = walk_idx.tolist()
    need_list = need.tolist()
    flipped = False
    for i, row in enumerate(walk_rows.tolist()):
        slots = slots_list[i]
        needs = need_list[i]
        flips = True
        for j in range(k):
            if needs[j] and not written[slots[j]]:
                flips = False
                break
        if flips:
            duplicate[row] = True
            inserters[row] = False
            flipped = True
        else:
            for j in range(k):
                written[slots[j]] = 1

    if flipped:
        # Rebuild over the actual inserters only.
        first_writer.fill(NO_WRITER)
        ins_rows = np.nonzero(inserters)[0]
        if ins_rows.size:
            np.minimum.at(
                first_writer, idx[ins_rows].ravel(), np.repeat(ins_rows, k)
            )
    return duplicate, inserters, first_writer


def check_reads(duplicate: "np.ndarray", active: "np.ndarray") -> int:
    """Total probe reads for a chunk, matching the scalar early-break.

    The scalar check reads slots in hash order until the first inactive
    one: ``k`` reads for a duplicate, ``first_inactive + 1`` otherwise.
    """
    k = active.shape[1]
    first_inactive = np.argmax(~active, axis=1)
    return int(np.where(duplicate, k, first_inactive + 1).sum())
