"""GBF algorithm — duplicate detection over jumping windows (§3 of the paper).

The construction
----------------
A jumping window of ``N`` arrivals is split into ``Q`` sub-windows of
``N/Q`` arrivals.  A naive design keeps one ``m``-bit Bloom filter per
sub-window, but then every duplicate check touches ``Q * k`` memory
words and every expiry needs an ``O(m)`` cleaning burst.

The *Group Bloom Filter* fixes both problems:

1. **Lane interleaving.**  ``Q + 1`` logical Bloom filters (the
   "lanes") share one hash family, and bit ``i`` of every lane is
   packed into the same machine word — with ``Q + 1 <= D`` several
   whole slots per word (see
   :class:`~repro.core.lanes.LanePackedBitMatrix`).  A duplicate check
   reads the ``k`` hashed words, ANDs them, and masks to the active
   lanes — any surviving 1 bit means some active sub-window saw all
   ``k`` positions: ``k`` reads instead of ``Q * k``.

2. **Spare lane + incremental cleaning.**  The extra ``(Q+1)``-th lane
   lets the filter that expired at the last jump be zeroed *gradually*
   — ``ceil(m / (N/Q))`` slots per arrival, which dense packing turns
   into ``~(Q+1)/D`` of that many word operations — while a fresh,
   already-clean lane receives the new sub-window's insertions.  Lanes
   rotate round-robin: sub-window ``s`` writes lane ``s mod (Q+1)``,
   and the lane that expires when sub-window ``s`` begins is exactly
   the lane sub-window ``s + 1`` will need, so each lane has one full
   sub-window of arrivals to get clean.

Properties (Theorem 1): zero false negatives; false positive rate
``O(Q)`` times a single sub-filter's; worst-case ``O(Q/D * M/N)`` word
operations per element.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..bloom.params import false_positive_rate_from_fill
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily
from . import kernels
from .batch import resolve_inserts
from .lanes import LanePackedBitMatrix


class GBFDetector:
    """One-pass duplicate-click detector over a count-based jumping window.

    Parameters
    ----------
    window_size:
        Jumping-window size ``N`` in arrivals; must be divisible by
        ``num_subwindows``.
    num_subwindows:
        ``Q``, the number of sub-windows the window jumps by.
    bits_per_filter:
        ``m``, the size of each of the ``Q + 1`` lane filters.  The
        paper's total budget is ``M = m * (Q + 1)`` bits
        (:attr:`logical_memory_bits`); the physical footprint after
        word packing is :attr:`memory_bits`.
    num_hashes:
        ``k`` hash functions, shared by all lanes (§3.1: "all Bloom
        filters should use the same set of hash functions").
    word_bits:
        Modeled machine-word width ``D``.
    seed / family:
        Hash-family configuration (a pre-built family overrides
        ``num_hashes``/``seed``).
    """

    def __init__(
        self,
        window_size: int,
        num_subwindows: int,
        bits_per_filter: int,
        num_hashes: int = 4,
        word_bits: int = 64,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        if window_size % num_subwindows != 0:
            raise ConfigurationError(
                f"window_size {window_size} not divisible by Q={num_subwindows}"
            )
        if bits_per_filter < 1:
            raise ConfigurationError(
                f"bits_per_filter must be >= 1, got {bits_per_filter}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, bits_per_filter, seed)
        if family.num_buckets != bits_per_filter:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != bits_per_filter "
                f"{bits_per_filter}"
            )

        self.window_size = window_size
        self.num_subwindows = num_subwindows
        self.subwindow_size = window_size // num_subwindows
        self.bits_per_filter = bits_per_filter
        self.word_bits = word_bits
        self.family = family
        self.num_lanes = num_subwindows + 1

        self.counter = OperationCounter()
        #: Duplicate verdicts issued so far (telemetry; not part of
        #: :class:`OperationCounter` so its equality semantics stay put).
        self.duplicates = 0
        self._matrix = LanePackedBitMatrix(
            bits_per_filter, self.num_lanes, word_bits, self.counter
        )
        # Cleaning quota: finish m slots within one sub-window of arrivals.
        self._clean_per_element = -(-bits_per_filter // self.subwindow_size)

        self._position = -1  # position of the most recent arrival
        self._current_lane = 0
        self._cleaning_lane: Optional[int] = None
        self._clean_cursor = bits_per_filter  # nothing to clean yet
        # Active-lane mask, shaped like the matrix's probe result: one
        # field when lanes fit a word, else one int per word offset.
        self._active_masks = [0] * self._matrix.words_per_slot
        self._lane_bit(0, set_active=True)

    # ------------------------------------------------------------------
    # Lane bookkeeping
    # ------------------------------------------------------------------

    @property
    def words_per_slot(self) -> int:
        """Words per probed slot group (1 when ``Q + 1 <= D``)."""
        return self._matrix.words_per_slot

    @property
    def slots_per_word(self) -> int:
        """Fields densely packed per word (``D // (Q+1)`` when it fits)."""
        return self._matrix.slots_per_word

    def _lane_bit(self, lane: int, set_active: bool) -> None:
        """Add or remove ``lane`` from the active-lane masks."""
        if self._matrix.words_per_slot == 1:
            offset, bit = 0, lane
        else:
            offset, bit = divmod(lane, self.word_bits)
        if set_active:
            self._active_masks[offset] |= 1 << bit
        else:
            self._active_masks[offset] &= ~(1 << bit)

    def _rotate(self) -> None:
        """Advance to a new sub-window (called at each jump boundary).

        The invariant asserted here is the crux of the spare-lane
        design: the lane about to become current must be fully zeroed,
        which the per-element cleaning quota guarantees.
        """
        if self._cleaning_lane is not None and self._clean_cursor < self.bits_per_filter:
            raise AssertionError(
                "GBF invariant violated: lane rotation before cleaning finished "
                f"(cursor {self._clean_cursor} / {self.bits_per_filter})"
            )
        subwindow = self._position // self.subwindow_size
        new_lane = subwindow % self.num_lanes
        self._current_lane = new_lane
        self._lane_bit(new_lane, set_active=True)
        if subwindow >= self.num_subwindows:
            # Sub-window (subwindow - Q) just expired; its lane is
            # (subwindow - Q) mod (Q+1) == (subwindow + 1) mod (Q+1) —
            # exactly the lane the *next* sub-window will claim.
            expired_lane = (subwindow + 1) % self.num_lanes
            self._lane_bit(expired_lane, set_active=False)
            self._cleaning_lane = expired_lane
            self._clean_cursor = 0

    def _clean_step(self) -> None:
        """Zero the cleaning lane's bit in the next quota of slots."""
        lane = self._cleaning_lane
        if lane is None or self._clean_cursor >= self.bits_per_filter:
            return
        self._matrix.clear_lane_range(lane, self._clean_cursor, self._clean_per_element)
        self._clean_cursor = min(
            self._clean_cursor + self._clean_per_element, self.bits_per_filter
        )

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate (not recorded)."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices(self.family.indices(identifier))

    def process_indices(self, indices: Sequence[int]) -> bool:
        """Observe the next click given pre-computed hash indices.

        This is the replay path the experiment harness uses after batch
        hashing; the behaviour is identical to :meth:`process`.
        """
        self._position += 1
        if self._position > 0 and self._position % self.subwindow_size == 0:
            self._rotate()
        self._clean_step()

        combined = self._matrix.probe_and(indices)
        self.counter.elements += 1
        masks = self._active_masks
        for offset, field in enumerate(combined):
            if field & masks[offset]:
                self.duplicates += 1
                return True
        self._matrix.set_lane(indices, self._current_lane)
        return False

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    #: Upper bound on one vectorized segment (bounds temp-array memory).
    _MAX_SEGMENT = 1 << 16

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Observe a batch of clicks; returns the per-click verdicts.

        Bit-identical to calling :meth:`process` in a loop — verdicts,
        filter state, and operation counts all match exactly (see
        tests/test_batch_equivalence.py) — but hashing, probing,
        insertion, and lane cleaning run as numpy array ops.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        self.counter.hash_evaluations += self.family.num_hashes * int(
            identifiers.shape[0]
        )
        return self.process_indices_batch(self.family.indices_batch(identifiers))

    def process_indices_batch(self, indices: "np.ndarray") -> "np.ndarray":
        """Batch variant of :meth:`process_indices` (``(n, k)`` index array).

        The batch is split into segments at sub-window boundaries so
        lane rotation stays a scalar event; within a segment probes,
        inserts, and the cleaning sweep are single array operations,
        with intra-segment duplicate interactions resolved exactly by
        :func:`repro.core.batch.resolve_inserts`.
        """
        idx = np.asarray(indices)
        if idx.ndim != 2:
            raise ValueError(f"indices must be (n, k), got {idx.ndim}-D")
        n = idx.shape[0]
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        if self._matrix.words_per_slot != 1:
            # Wide layout (Q + 1 > D): the regime the paper hands to the
            # TBF; keep the scalar path rather than vectorizing it.
            for row in range(n):
                out[row] = self.process_indices([int(v) for v in idx[row]])
            return out
        idx = idx.astype(np.int64, copy=False)
        sub = self.subwindow_size
        start = 0
        while start < n:
            first_pos = self._position + 1
            if first_pos > 0 and first_pos % sub == 0:
                # _rotate() reads _position; give it the boundary value.
                self._position = first_pos
                self._rotate()
                self._position = first_pos - 1
            into_sub = first_pos % sub
            seg = min(n - start, sub - into_sub if into_sub else sub, self._MAX_SEGMENT)
            self._process_segment(idx[start : start + seg], out[start : start + seg])
            start += seg
        return out

    def _process_segment(self, idx: "np.ndarray", out: "np.ndarray") -> None:
        """Vectorized processing of one rotation-free run of arrivals."""
        n, k = idx.shape
        matrix = self._matrix
        if self._cleaning_lane is not None and self._clean_cursor < self.bits_per_filter:
            quota = self._clean_per_element
            matrix.clear_lane_segments(
                self._cleaning_lane, self._clean_cursor, quota, n
            )
            self._clean_cursor = min(
                self._clean_cursor + n * quota, self.bits_per_filter
            )
        fields = matrix.probe_fields_batch(idx)
        self.counter.elements += n
        mask = np.uint64(self._active_masks[0])
        dup0 = (kernels.row_and(fields) & mask) != 0
        cov0 = ((fields >> np.uint64(self._current_lane)) & np.uint64(1)).astype(bool)
        duplicate, inserters, _, _ = resolve_inserts(
            dup0, cov0, idx, matrix.num_slots, need_covered=False
        )
        ins = np.nonzero(inserters)[0]
        if ins.size:
            slots = idx if ins.size == n else idx[ins]
            matrix.or_lane_batch(slots, self._current_lane)
        self._position += n
        self.duplicates += int(np.count_nonzero(duplicate))
        out[:] = duplicate

    def query(self, identifier: int) -> bool:
        """Side-effect-free duplicate check against the active window."""
        return self.query_indices(self.family.indices(identifier))

    def query_indices(self, indices: Sequence[int]) -> bool:
        combined = self._matrix.probe_and(indices)
        masks = self._active_masks
        return any(field & masks[offset] for offset, field in enumerate(combined))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def position(self) -> int:
        """Position of the most recent arrival (-1 before any)."""
        return self._position

    @property
    def current_subwindow(self) -> int:
        return max(self._position, 0) // self.subwindow_size

    @property
    def memory_bits(self) -> int:
        """Physical modeled footprint after word packing."""
        return self._matrix.memory_bits

    @property
    def logical_memory_bits(self) -> int:
        """The paper's ``M = m * (Q + 1)`` (no word padding)."""
        return self.bits_per_filter * self.num_lanes

    def active_lanes(self) -> List[int]:
        """Indices of lanes currently counted in duplicate checks."""
        lanes = []
        for lane in range(self.num_lanes):
            if self._matrix.words_per_slot == 1:
                offset, bit = 0, lane
            else:
                offset, bit = divmod(lane, self.word_bits)
            if self._active_masks[offset] >> bit & 1:
                lanes.append(lane)
        return lanes

    def lane_bits_set(self, lane: int) -> int:
        """Population count of one lane (testing/diagnostics)."""
        return self._matrix.lane_population(lane)

    @property
    def observed_duplicate_rate(self) -> float:
        """Fraction of processed clicks flagged duplicate so far."""
        return self.duplicates / self.counter.elements if self.counter.elements else 0.0

    def estimated_fp_rate(self) -> float:
        """Live FP estimate from the lanes' *measured* fill.

        A query is a false positive when at least one active lane has
        all ``k`` probed bits set, so with per-lane fills ``f_i`` the
        rate is ``1 - prod_i (1 - f_i^k)`` — the union bound of §3 made
        exact for the current fill state.
        """
        product = 1.0
        m = self.bits_per_filter
        k = self.num_hashes
        for lane in self.active_lanes():
            fill = self._matrix.lane_population(lane) / m
            product *= 1.0 - false_positive_rate_from_fill(fill, k)
        return 1.0 - product

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector.

        Exact round trip — ``create_detector(detector.spec())`` yields
        an identically configured detector — which is the resize
        primitive the adaptive controller scales.  Requires the default
        hash family and word size (custom ones cannot ride a spec).
        """
        from ..detection.detector import DetectorSpec, GBFParams, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; this detector "
                f"uses {type(self.family).__name__}"
            )
        if self.word_bits != 64:
            raise ConfigurationError(
                f"spec() cannot express word_bits={self.word_bits}"
            )
        return DetectorSpec(
            algorithm="gbf",
            window=WindowSpec("jumping", self.window_size, self.num_subwindows),
            params=GBFParams(self.bits_per_filter, self.family.num_hashes),
            seed=self.family.seed,
        )

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; delegates
        to the checkpoint registry (:func:`repro.core.save_detector`).
        """
        from .checkpoint import save_detector

        return save_detector(self)

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        counter = self.counter
        cleaning = (
            self._cleaning_lane is not None
            and self._clean_cursor < self.bits_per_filter
        )
        # One population count per lane, shared by the fill gauges and
        # the FP estimate (same floats as estimated_fp_rate()).
        m = self.bits_per_filter
        k = self.num_hashes
        pops = [self._matrix.lane_population(lane) for lane in range(self.num_lanes)]
        active = self.active_lanes()
        product = 1.0
        for lane in active:
            product *= 1.0 - false_positive_rate_from_fill(pops[lane] / m, k)
        return {
            "gauges": {
                "position": self._position,
                "estimated_fp_rate": 1.0 - product,
                "observed_duplicate_rate": self.observed_duplicate_rate,
                "clean_cursor": self._clean_cursor if cleaning else 0,
                "active_lanes": len(active),
            },
            "counters": {
                "elements": counter.elements,
                "duplicates": self.duplicates,
                "hash_evaluations": counter.hash_evaluations,
                "word_reads": counter.word_reads,
                "word_writes": counter.word_writes,
                "rotations": self.current_subwindow,
            },
            "fills": {
                f"lane{lane}": pops[lane] / m
                for lane in range(self.num_lanes)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GBFDetector(N={self.window_size}, Q={self.num_subwindows}, "
            f"m={self.bits_per_filter}, k={self.num_hashes}, D={self.word_bits})"
        )
