"""TBF over time-based sliding windows (§4.1 extension).

"Suppose the entire sliding window is equally divided into R time
units.  In Step 1, the cleaning procedure executes once in each time
unit ... instead of inserting the counting-based position, the time
unit information is inserted into the entries of TBF."

Timestamps are *time-unit indices* rather than arrival positions, so
the window "contains the last ``R`` units" — a granularity-``T/R``
approximation of the ideal time-based sliding window (elements expire
at unit boundaries, at most one unit late).  Cleaning advances with the
clock, not with arrivals: each elapsed unit funds one cursor quota of
``ceil(m / (C + 1))`` entries.  Long idle gaps are fast-forwarded — once
every timestamp in the filter has expired, a single full wipe replaces
the tick-by-tick replay.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..bloom.params import false_positive_rate_from_fill
from ..errors import ConfigurationError, StreamError
from ..hashing import HashFamily, SplitMixFamily
from . import kernels
from .batch import check_reads, resolve_inserts
from .tbf import _dtype_for_bits


class TimeBasedTBFDetector:
    """Duplicate detector over a time-based sliding window of ``duration``.

    Parameters
    ----------
    duration:
        Window length ``T`` in stream time units (e.g. seconds).
    resolution:
        ``R``, the number of time units the window is divided into; the
        effective expiry granularity is ``duration / resolution``.
    num_entries, num_hashes, seed, family:
        As in :class:`~repro.core.tbf.TBFDetector`.
    cleanup_slack:
        ``C`` in time units; defaults to ``R - 1``.
    """

    def __init__(
        self,
        duration: float,
        resolution: int,
        num_entries: int,
        num_hashes: int = 4,
        cleanup_slack: Optional[int] = None,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        if resolution < 1:
            raise ConfigurationError(f"resolution must be >= 1, got {resolution}")
        if num_entries < 1:
            raise ConfigurationError(f"num_entries must be >= 1, got {num_entries}")
        if cleanup_slack is None:
            cleanup_slack = resolution - 1
        if cleanup_slack < 0:
            raise ConfigurationError(f"cleanup_slack must be >= 0, got {cleanup_slack}")
        if family is None:
            family = SplitMixFamily(num_hashes, num_entries, seed)
        if family.num_buckets != num_entries:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_entries {num_entries}"
            )

        self.duration = float(duration)
        self.resolution = resolution
        self.unit_duration = self.duration / resolution
        self.num_entries = num_entries
        self.cleanup_slack = cleanup_slack
        self.family = family

        # Wraparound period: count-based TBFs use N + C + 1 because the
        # cleaning cursor provably re-visits every entry within C + 1
        # *arrivals* of it expiring.  With a wall clock, cleaning only
        # runs at arrival instants, so a re-visit can be late by one
        # inter-arrival gap — bounded by R units (longer gaps trigger
        # the full wipe).  An entry kept at age <= R-1 is therefore
        # re-visited at age < (R-1) + (C+1) + R, so the period must
        # exceed 2R + C for expired ages to stay distinguishable.
        self.timestamp_period = 2 * resolution + cleanup_slack + 1
        self.entry_bits = max(1, math.ceil(math.log2(self.timestamp_period + 1)))
        self.empty_value = (1 << self.entry_bits) - 1
        self._entries = np.full(
            num_entries, self.empty_value, dtype=_dtype_for_bits(self.entry_bits)
        )
        self._scan_per_unit = -(-num_entries // (cleanup_slack + 1))
        self._clean_cursor = 0
        self._last_unit: Optional[int] = None
        self._last_time: Optional[float] = None

        self.counter = OperationCounter()
        #: Duplicate verdicts issued so far (telemetry; kept off the
        #: :class:`OperationCounter` to preserve its equality semantics).
        self.duplicates = 0

    # ------------------------------------------------------------------
    # Clock handling
    # ------------------------------------------------------------------

    def _unit_of(self, timestamp: float) -> int:
        return int(timestamp // self.unit_duration)

    def _advance_clock(self, timestamp: float) -> int:
        """Run the per-unit cleaning for every unit elapsed; return ``now``."""
        if self._last_time is not None and timestamp < self._last_time:
            raise StreamError(
                f"timestamp regressed: {timestamp} after {self._last_time}"
            )
        self._last_time = timestamp
        unit = self._unit_of(timestamp)
        if self._last_unit is None:
            self._last_unit = unit
            return unit % self.timestamp_period
        elapsed = unit - self._last_unit
        self._last_unit = unit
        now = unit % self.timestamp_period
        if elapsed <= 0:
            return now
        if elapsed >= self.resolution:
            # Everything in the filter predates the window: wipe it.
            stale = int((self._entries != self.empty_value).sum())
            self._entries.fill(self.empty_value)
            self.counter.word_reads += self.num_entries
            self.counter.word_writes += stale
            self._clean_cursor = 0
            return now
        budget = min(elapsed * self._scan_per_unit, self.num_entries)
        self._clean_segment(now, budget)
        return now

    def _clean_segment(self, now: int, budget: int) -> None:
        """One cursor sweep of ``budget <= m`` entries at clock ``now``.

        Tiny sweeps (a couple of entries between nearby arrivals) stay
        a scalar loop; anything larger runs the vectorized slice kernel
        — bit mutations, cursor, and tallies are identical either way.
        """
        entries = self._entries
        m = self.num_entries
        period = self.timestamp_period
        active_span = self.resolution
        empty = self.empty_value
        if budget >= 32:
            cursor, writes = kernels.clean_cursor_sweep(
                entries, self._clean_cursor, budget, now, period,
                active_span, empty,
            )
            self._clean_cursor = cursor
            self.counter.word_reads += budget
            self.counter.word_writes += writes
            return
        cursor = self._clean_cursor
        reads = 0
        writes = 0
        for _ in range(budget):
            value = int(entries[cursor])
            reads += 1
            if value != empty and (now - value) % period >= active_span:
                entries[cursor] = empty
                writes += 1
            cursor += 1
            if cursor == m:
                cursor = 0
        self._clean_cursor = cursor
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def process_at(self, identifier: int, timestamp: float) -> bool:
        """Observe a click at ``timestamp``; True means duplicate."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices_at(self.family.indices(identifier), timestamp)

    def process_indices_at(self, indices: Sequence[int], timestamp: float) -> bool:
        now = self._advance_clock(timestamp)
        entries = self._entries
        period = self.timestamp_period
        active_span = self.resolution
        empty = self.empty_value

        duplicate = True
        reads = 0
        for index in indices:
            value = int(entries[index])
            reads += 1
            if value == empty or (now - value) % period >= active_span:
                duplicate = False
                break
        self.counter.word_reads += reads
        self.counter.elements += 1
        if duplicate:
            self.duplicates += 1
            return True
        stamp = entries.dtype.type(now)
        for index in indices:
            entries[index] = stamp
        self.counter.word_writes += len(indices)
        return False

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        """Observe a batch of clicks with timestamps; bit-identical to a
        scalar :meth:`process_at` loop.

        Elements are fused into maximal *multi-unit* segments rather
        than one group per time unit: a segment may span every arrival
        within one window-resolution of its first element, provided the
        interleaved cleaning sweeps total at most ``m`` entries (each
        entry judged at most once, on pre-segment values).  Within a
        segment the per-element clock is carried as an *unwrapped* age
        offset (``base_age + elapsed_units``), which the cursor
        invariant proves equal to the scalar modular compare — see
        ``docs/performance.md``.  Boundary crossings (idle wipes, new
        segments) advance the clock scalar-style.  A regressing
        timestamp raises :class:`~repro.errors.StreamError` exactly as
        the scalar loop would: the elements before it are fully
        processed, the regressing element is not.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        if timestamps.shape != identifiers.shape:
            raise ValueError(
                f"timestamps shape {timestamps.shape} != identifiers "
                f"shape {identifiers.shape}"
            )
        n = identifiers.shape[0]
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        # Find the first regression (against the pre-batch clock and
        # between consecutive batch elements); everything before it is
        # processed, then the scalar path's error is raised.
        previous = np.empty(n, dtype=np.float64)
        previous[0] = self._last_time if self._last_time is not None else -np.inf
        previous[1:] = timestamps[:-1]
        regressions = np.nonzero(timestamps < previous)[0]
        limit = int(regressions[0]) if regressions.size else n
        k = self.family.num_hashes
        # The scalar loop hashes the regressing element before its
        # _advance_clock raises, so it is included in the tally.
        self.counter.hash_evaluations += k * min(limit + 1, n)
        if limit:
            idx = self.family.indices_batch(identifiers[:limit]).astype(
                np.int64, copy=False
            )
            units = np.floor_divide(timestamps[:limit], self.unit_duration).astype(
                np.int64
            )
            scan = self._scan_per_unit
            m = self.num_entries
            span = self.resolution
            start = 0
            while start < limit:
                now0 = self._advance_clock(float(timestamps[start]))
                # Segment: every later arrival less than one resolution
                # of units after the first (no idle wipe, in-segment
                # stamps stay active throughout), as long as the fused
                # cleaning sweeps stay within one cursor lap.
                end = int(np.searchsorted(units, units[start] + span, side="left"))
                end = min(end, start + 65536)
                if end - start > 1:
                    budgets = np.minimum(
                        np.diff(units[start:end]) * scan, m
                    )
                    lap = int(np.searchsorted(np.cumsum(budgets), m, side="right"))
                    end = min(end, start + 1 + lap)
                    budgets = budgets[: end - start - 1]
                else:
                    budgets = None
                self._segment_group(
                    idx[start:end], units[start:end], now0, budgets, out[start:end]
                )
                self._last_time = float(timestamps[end - 1])
                self._last_unit = int(units[end - 1])
                start = end
        if limit < n:
            raise StreamError(
                f"timestamp regressed: {float(timestamps[limit])} "
                f"after {float(previous[limit])}"
            )
        return out

    def _segment_group(
        self,
        idx: "np.ndarray",
        units: "np.ndarray",
        now0: int,
        budgets: "np.ndarray | None",
        out: "np.ndarray",
    ) -> None:
        """Fused probe/insert/clean for one multi-unit segment.

        ``now0`` is the first element's clock; element ``i`` runs at
        unwrapped offset ``E_i = units[i] - units[0] < resolution``.
        ``budgets`` holds the per-element cleaning quotas of elements
        ``1..n-1`` (``None`` when the segment is a single element),
        summing to at most ``m`` so the cursor never laps.
        """
        n, k = idx.shape
        entries = self._entries
        m = self.num_entries
        period = self.timestamp_period
        active_span = self.resolution
        empty = self.empty_value
        rows = np.arange(n, dtype=np.int64)
        elapsed = units - units[0]

        values = entries[idx].astype(np.int64)
        base_age = kernels.wrapped_ages(now0, values, period)
        active0 = (values != empty) & (base_age + elapsed[:, None] < active_span)
        dup0 = kernels.row_all(active0)
        # In-segment stamps stay active (elapsed spread < resolution),
        # so the resolver's covered matrix is active at probe time.
        duplicate, inserters, first_writer, covered = resolve_inserts(
            dup0, active0, idx, m
        )
        reads = check_reads(covered)
        ins = np.nonzero(inserters)[0]

        # Interleaved cleaning: element i's sweep judges pre-segment
        # values at element i's clock (unwrapped), except entries an
        # earlier element re-stamped, which are fresh and survive.  At
        # most two contiguous slices (total budget <= m).
        clean_writes = 0
        total = 0
        if budgets is not None and budgets.size:
            total = int(budgets.sum())
        if total:
            sweep_offset = np.repeat(elapsed[1:], budgets)
            sweep_element = np.repeat(rows[1:], budgets)
            cursor = self._clean_cursor
            offset = 0
            empty_stamp = entries.dtype.type(empty)
            while offset < total:
                length = min(total - offset, m - cursor)
                seg = entries[cursor : cursor + length]
                seg_values = seg.astype(np.int64)
                seg_age = (
                    kernels.wrapped_ages(now0, seg_values, period)
                    + sweep_offset[offset : offset + length]
                )
                erase = (seg_values != empty) & (seg_age >= active_span)
                if ins.size:
                    erase &= ~(
                        first_writer[cursor : cursor + length]
                        < sweep_element[offset : offset + length]
                    )
                count = int(np.count_nonzero(erase))
                if count:
                    seg[erase] = empty_stamp
                    clean_writes += count
                cursor = (cursor + length) % m
                offset += length
            self._clean_cursor = cursor

        if ins.size:
            # Per-element stamps: the last writer's clock wins, exactly
            # as in the scalar overwrite order.
            last_writer = np.full(m, -1, dtype=np.int64)
            if ins.size == n:
                np.maximum.at(
                    last_writer, idx.ravel(), kernels.repeat_arange(n, k)
                )
            else:
                np.maximum.at(last_writer, idx[ins].ravel(), np.repeat(ins, k))
            upd = np.nonzero(last_writer >= 0)[0]
            entries[upd] = (
                (np.int64(now0) + elapsed[last_writer[upd]]) % period
            ).astype(entries.dtype)
        self.counter.add(total + reads, clean_writes + k * int(ins.size))
        self.counter.elements += n
        self.duplicates += int(np.count_nonzero(duplicate))
        out[:] = duplicate

    def query_at(self, identifier: int, timestamp: float) -> bool:
        """Duplicate check at ``timestamp`` without recording the element.

        Advances the cleaning clock (time passes regardless) but does not
        insert.
        """
        indices = self.family.indices(identifier)
        now = self._advance_clock(timestamp)
        entries = self._entries
        for index in indices:
            value = int(entries[index])
            if value == self.empty_value:
                return False
            if (now - value) % self.timestamp_period >= self.resolution:
                return False
        return True

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def memory_bits(self) -> int:
        return self.num_entries * self.entry_bits

    def active_entries(self) -> int:
        """Number of entries currently holding an active timestamp."""
        if self._last_unit is None:
            return 0
        now = self._last_unit % self.timestamp_period
        values = self._entries.astype(np.int64)
        ages = (now - values) % self.timestamp_period
        return int(((values != self.empty_value) & (ages < self.resolution)).sum())

    def stale_entries(self) -> int:
        """Entries holding an expired timestamp not yet swept (diagnostic)."""
        if self._last_unit is None:
            return 0
        now = self._last_unit % self.timestamp_period
        values = self._entries.astype(np.int64)
        ages = (now - values) % self.timestamp_period
        return int(((values != self.empty_value) & (ages >= self.resolution)).sum())

    @property
    def observed_duplicate_rate(self) -> float:
        """Fraction of processed clicks flagged duplicate so far."""
        return self.duplicates / self.counter.elements if self.counter.elements else 0.0

    def estimated_fp_rate(self) -> float:
        """Live FP estimate ``(active / m) ** k`` from the measured fill."""
        return false_positive_rate_from_fill(
            self.active_entries() / self.num_entries, self.num_hashes
        )

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector.

        Exact round trip — ``create_detector(detector.spec())`` yields
        an identically configured detector.  The window spec is
        descriptive only (time-based detectors are sized by their
        params); requires the default SplitMixFamily.
        """
        from ..detection.detector import DetectorSpec, TBFParams, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; this detector "
                f"uses {type(self.family).__name__}"
            )
        return DetectorSpec(
            algorithm="tbf-time",
            window=WindowSpec("sliding", self.num_entries),
            params=TBFParams(
                self.num_entries, self.family.num_hashes, self.cleanup_slack
            ),
            duration=self.duration,
            resolution=self.resolution,
            seed=self.family.seed,
        )

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; delegates
        to the checkpoint registry (:func:`repro.core.save_detector`).
        """
        from .checkpoint import save_detector

        return save_detector(self)

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        counter = self.counter
        # One sweep of the entry array feeds active count, stale count,
        # fill, and the FP estimate (same floats as estimated_fp_rate()).
        if self._last_unit is None:
            active = stale = 0
        else:
            now = self._last_unit % self.timestamp_period
            values = self._entries.astype(np.int64)
            occupied = values != self.empty_value
            in_window = (now - values) % self.timestamp_period < self.resolution
            active = int((occupied & in_window).sum())
            stale = int((occupied & ~in_window).sum())
        fill = active / self.num_entries
        return {
            "gauges": {
                "time_unit": self._last_unit if self._last_unit is not None else -1,
                "estimated_fp_rate": false_positive_rate_from_fill(
                    fill, self.num_hashes
                ),
                "observed_duplicate_rate": self.observed_duplicate_rate,
                "clean_cursor": self._clean_cursor,
                "stale_entries": stale,
            },
            "counters": {
                "elements": counter.elements,
                "duplicates": self.duplicates,
                "hash_evaluations": counter.hash_evaluations,
                "word_reads": counter.word_reads,
                "word_writes": counter.word_writes,
            },
            "fills": {
                "entries": fill,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeBasedTBFDetector(T={self.duration}, R={self.resolution}, "
            f"m={self.num_entries}, k={self.num_hashes})"
        )
