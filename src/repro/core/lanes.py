"""Lane-packed bit storage — the memory layout at the heart of the GBF.

§3.1: "instead of dividing the entire memory into separate pieces for
separate Bloom filters, the bits with the same index in each Bloom
filter are grouped together ... the CPU can visit the required bits in
a bunch."

A :class:`LanePackedBitMatrix` stores ``num_slots`` *fields* of
``num_lanes`` bits each (one bit per logical Bloom filter) inside
``word_bits``-wide machine words, in whichever of two layouts applies:

* **dense** (``num_lanes <= word_bits``): ``word_bits // num_lanes``
  whole fields share one word.  A membership probe reads one word per
  hash index; cleaning one lane across a word's worth of slots is a
  single read-modify-write — this is what makes the GBF's per-element
  cleaning cost ``O(Q/D * M/N)`` (Theorem 1.3) rather than ``O(Q*M/N)``.
* **wide** (``num_lanes > word_bits``): each field spans
  ``ceil(num_lanes / word_bits)`` words; probes cost that many reads per
  hash index, which is exactly the regime where §4 hands over to TBF.

All accesses are tallied into an
:class:`~repro.bitset.words.OperationCounter` supplied by the owner.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..errors import ConfigurationError


class LanePackedBitMatrix:
    """``num_slots`` fields of ``num_lanes`` bits packed into words."""

    def __init__(
        self,
        num_slots: int,
        num_lanes: int,
        word_bits: int = 64,
        counter: OperationCounter | None = None,
    ) -> None:
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
        if num_lanes < 1:
            raise ConfigurationError(f"num_lanes must be >= 1, got {num_lanes}")
        if word_bits not in (8, 16, 32, 64):
            raise ConfigurationError(f"word_bits must be 8/16/32/64, got {word_bits}")
        self.num_slots = num_slots
        self.num_lanes = num_lanes
        self.word_bits = word_bits
        self.counter = counter if counter is not None else OperationCounter()
        self.field_mask = (1 << num_lanes) - 1

        if num_lanes <= word_bits:
            #: Whole fields per word (dense layout); 1 in the wide layout.
            self.slots_per_word = word_bits // num_lanes
            self.words_per_slot = 1
            num_words = -(-num_slots // self.slots_per_word)
        else:
            self.slots_per_word = 1
            self.words_per_slot = -(-num_lanes // word_bits)
            num_words = num_slots * self.words_per_slot
        self._words = np.zeros(num_words, dtype=np.uint64)

    # ------------------------------------------------------------------
    # Dense-layout helpers
    # ------------------------------------------------------------------

    def _field_position(self, slot: int) -> tuple:
        word_index, slot_in_word = divmod(slot, self.slots_per_word)
        return word_index, slot_in_word * self.num_lanes

    # ------------------------------------------------------------------
    # Probing and insertion
    # ------------------------------------------------------------------

    def probe_and(self, indices: Sequence[int]) -> List[int]:
        """AND the fields at ``indices``; returns the lane-bit survivors.

        The result is a little-endian list of words (one when
        ``num_lanes <= word_bits``): bit ``j`` set means every probed
        slot has lane ``j``'s bit set — i.e. filter ``j`` claims
        membership.  Counts one word read per index (dense) or
        ``words_per_slot`` reads per index (wide).
        """
        words = self._words
        if self.words_per_slot == 1:
            combined = self.field_mask
            if self.slots_per_word == 1:
                for index in indices:
                    combined &= int(words[index])
            else:
                lanes = self.num_lanes
                spw = self.slots_per_word
                for index in indices:
                    word_index, slot_in_word = divmod(index, spw)
                    combined &= int(words[word_index]) >> (slot_in_word * lanes)
                combined &= self.field_mask
            self.counter.word_reads += len(indices)
            return [combined]

        stride = self.words_per_slot
        mask = (1 << self.word_bits) - 1
        combined = [mask] * stride
        for index in indices:
            base = index * stride
            for offset in range(stride):
                combined[offset] &= int(words[base + offset])
        self.counter.word_reads += len(indices) * stride
        return combined

    def set_lane(self, indices: Sequence[int], lane: int) -> None:
        """Set ``lane``'s bit in every field at ``indices``.

        Counted as one write per index: the paper's flow ANDs the k
        words it already fetched and "write[s] them back", so the reads
        were already paid for by :meth:`probe_and`.
        """
        words = self._words
        if self.words_per_slot == 1:
            lanes = self.num_lanes
            spw = self.slots_per_word
            for index in indices:
                word_index, slot_in_word = divmod(index, spw)
                bit = np.uint64(1 << (slot_in_word * lanes + lane))
                words[word_index] |= bit
        else:
            stride = self.words_per_slot
            offset, bit_position = divmod(lane, self.word_bits)
            bit = np.uint64(1 << bit_position)
            for index in indices:
                words[index * stride + offset] |= bit
        self.counter.word_writes += len(indices)

    # ------------------------------------------------------------------
    # Batch probing and insertion (dense layout)
    # ------------------------------------------------------------------

    def probe_fields_batch(self, idx: "np.ndarray") -> "np.ndarray":
        """Gather the ``num_lanes``-bit field at every slot of ``idx``.

        ``idx`` is ``(n, k)``; the result is ``(n, k)`` uint64 fields.
        Counts one read per probed slot, exactly like ``n`` scalar
        :meth:`probe_and` calls.  Dense layout only — the wide layout
        keeps the scalar path (it is the regime §4 hands over to TBF).
        """
        if self.words_per_slot != 1:
            raise ConfigurationError("probe_fields_batch requires the dense layout")
        words = self._words
        self.counter.word_reads += idx.size
        if self.slots_per_word == 1:
            return words[idx] & np.uint64(self.field_mask)
        word_idx, slot_in_word = np.divmod(idx, self.slots_per_word)
        shifts = (slot_in_word * self.num_lanes).astype(np.uint64)
        return (words[word_idx] >> shifts) & np.uint64(self.field_mask)

    def or_lane_batch(self, idx: "np.ndarray", lane: int) -> None:
        """Set ``lane``'s bit at every slot of ``idx`` (any shape).

        Counts one write per slot, like scalar :meth:`set_lane` over
        each row.  ``np.bitwise_or.at`` handles duplicate indices.
        """
        if self.words_per_slot != 1:
            raise ConfigurationError("or_lane_batch requires the dense layout")
        words = self._words
        if self.slots_per_word == 1:
            np.bitwise_or.at(words, idx, np.uint64(1 << lane))
        else:
            word_idx, slot_in_word = np.divmod(idx, self.slots_per_word)
            bits = np.uint64(1) << (
                slot_in_word * self.num_lanes + lane
            ).astype(np.uint64)
            np.bitwise_or.at(words, word_idx, bits)
        self.counter.word_writes += idx.size

    # ------------------------------------------------------------------
    # Lane cleaning
    # ------------------------------------------------------------------

    def clear_lane_range(self, lane: int, start_slot: int, num_cleared: int) -> None:
        """Zero ``lane``'s bit in slots [start_slot, start_slot + num_cleared).

        In the dense layout a single read-modify-write clears the lane
        across every field sharing the word — the "bunch" access §3.1
        promises.  Words whose lane bits are already zero cost only the
        read.
        """
        if num_cleared <= 0:
            return
        stop_slot = min(start_slot + num_cleared, self.num_slots)
        words = self._words
        reads = 0
        writes = 0
        if self.words_per_slot == 1:
            lanes = self.num_lanes
            spw = self.slots_per_word
            first_word = start_slot // spw
            last_word = (stop_slot - 1) // spw
            # Lane bit replicated at every field offset within a word.
            full_mask = 0
            for slot_in_word in range(spw):
                full_mask |= 1 << (slot_in_word * lanes + lane)
            for word_index in range(first_word, last_word + 1):
                mask = full_mask
                if word_index == first_word or word_index == last_word:
                    # Partial coverage at the range edges.
                    mask = 0
                    for slot_in_word in range(spw):
                        slot = word_index * spw + slot_in_word
                        if start_slot <= slot < stop_slot:
                            mask |= 1 << (slot_in_word * lanes + lane)
                word = int(words[word_index])
                reads += 1
                if word & mask:
                    words[word_index] = np.uint64(word & ~mask)
                    writes += 1
        else:
            stride = self.words_per_slot
            offset, bit_position = divmod(lane, self.word_bits)
            keep = np.uint64(~np.uint64(1 << bit_position))
            for slot in range(start_slot, stop_slot):
                index = slot * stride + offset
                word = words[index]
                reads += 1
                if word & ~keep:
                    words[index] = word & keep
                    writes += 1
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    def clear_lane_segments(
        self, lane: int, start_slot: int, per_element: int, num_elements: int
    ) -> None:
        """Replay ``num_elements`` consecutive :meth:`clear_lane_range` calls.

        Call ``i`` covers ``[start_slot + i * per_element,
        start_slot + (i + 1) * per_element)`` clamped to the slot count —
        the cursor-advancing sweep the GBF runs once per arrival.  Bit
        mutations *and* read/write tallies are identical to the scalar
        calls: each (call, word) intersection is one read, and a write
        whenever the lane has a set bit among the intersection's slots.
        Intersections are disjoint in (slot, lane) space, so pre-sweep
        bit values decide every write even though earlier calls may
        touch the same word.
        """
        if num_elements <= 0 or per_element <= 0:
            return
        stop_slot = min(start_slot + per_element * num_elements, self.num_slots)
        if start_slot >= stop_slot:
            return
        words = self._words
        if self.words_per_slot == 1:
            lanes = self.num_lanes
            spw = self.slots_per_word
            # Reads: one per (call, word) intersection, by arithmetic.
            call_starts = np.arange(start_slot, stop_slot, per_element, dtype=np.int64)
            call_ends = np.minimum(call_starts + per_element, stop_slot)
            reads = int(((call_ends - 1) // spw - call_starts // spw + 1).sum())
            # Writes: intersections holding >= 1 set lane bit.  Expand
            # only the words with set lane bits into slot positions and
            # count distinct (call, word) keys — slots come out sorted,
            # so counting boundaries suffices.
            pattern = 0
            for slot_in_word in range(spw):
                pattern |= 1 << (slot_in_word * lanes + lane)
            pattern = np.uint64(pattern)
            w0 = start_slot // spw
            w1 = (stop_slot - 1) // spw + 1
            hits = words[w0:w1] & pattern
            nz = np.nonzero(hits)[0]
            writes = 0
            if nz.size:
                shifts = np.arange(spw, dtype=np.uint64) * np.uint64(lanes)
                bitmat = (hits[nz, None] >> (shifts + np.uint64(lane))) & np.uint64(1)
                rel_word, slot_in_word = np.nonzero(bitmat)
                slots = (w0 + nz[rel_word]) * spw + slot_in_word
                slots = slots[(slots >= start_slot) & (slots < stop_slot)]
                if slots.size:
                    key = ((slots - start_slot) // per_element) * (w1 - w0 + 1) + (
                        slots // spw - w0
                    )
                    writes = int(np.count_nonzero(np.diff(key))) + 1
            # Mutate: the full-word middle is one in-place slice op; the
            # (at most two) partially-covered edge words get exact masks.
            full0 = -(-start_slot // spw)
            full1 = stop_slot // spw
            if full0 < full1:
                words[full0:full1] &= ~pattern
            for edge_word in {w0, w1 - 1}:
                if full0 <= edge_word < full1:
                    continue
                lo = max(start_slot, edge_word * spw)
                hi = min(stop_slot, (edge_word + 1) * spw)
                mask = 0
                for slot in range(lo, hi):
                    mask |= 1 << ((slot % spw) * lanes + lane)
                words[edge_word] &= ~np.uint64(mask)
        else:
            stride = self.words_per_slot
            offset, bit_position = divmod(lane, self.word_bits)
            indices = np.arange(start_slot, stop_slot, dtype=np.int64) * stride + offset
            values = words[indices]
            bit = np.uint64(1 << bit_position)
            reads = int(indices.size)
            writes = int(np.count_nonzero(values & bit))
            words[indices] = values & ~bit
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    def words_for_slot_range(self, num_slots: int) -> int:
        """How many word RMWs cleaning ``num_slots`` consecutive slots takes."""
        return -(-num_slots // self.slots_per_word)

    def clear_all(self) -> None:
        """Bulk zero (used by idle-gap fast-forward); counts a full sweep."""
        nonzero = int((self._words != 0).sum())
        self.counter.word_reads += len(self._words)
        self.counter.word_writes += nonzero
        self._words.fill(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_words(self) -> int:
        return len(self._words)

    @property
    def memory_bits(self) -> int:
        return len(self._words) * self.word_bits

    def lane_population(self, lane: int) -> int:
        """Set-bit count of one lane (diagnostics and tests)."""
        words = self._words
        if self.words_per_slot == 1:
            # Lane-packed layout: the lane's bit recurs every num_lanes
            # bits within each word.  One vectorized mask-and-sum per
            # slot position beats a per-slot Python loop by orders of
            # magnitude; padding bits past num_slots are never set, so
            # counting whole words is exact.
            lanes = self.num_lanes
            one = np.uint64(1)
            count = 0
            for slot_in_word in range(self.slots_per_word):
                shift = np.uint64(slot_in_word * lanes + lane)
                count += int(((words >> shift) & one).sum())
            return count
        stride = self.words_per_slot
        offset, bit_position = divmod(lane, self.word_bits)
        lane_words = words[offset::stride]
        return int(((lane_words >> np.uint64(bit_position)) & np.uint64(1)).sum())

    def get_bit(self, slot: int, lane: int) -> bool:
        """Uncounted single-bit read (tests only)."""
        if self.words_per_slot == 1:
            word_index, base = self._field_position(slot)
            return bool(int(self._words[word_index]) >> (base + lane) & 1)
        offset, bit_position = divmod(lane, self.word_bits)
        return bool(
            int(self._words[slot * self.words_per_slot + offset]) >> bit_position & 1
        )
