"""Lane-packed bit storage — the memory layout at the heart of the GBF.

§3.1: "instead of dividing the entire memory into separate pieces for
separate Bloom filters, the bits with the same index in each Bloom
filter are grouped together ... the CPU can visit the required bits in
a bunch."

A :class:`LanePackedBitMatrix` stores ``num_slots`` *fields* of
``num_lanes`` bits each (one bit per logical Bloom filter) inside
``word_bits``-wide machine words, in whichever of two layouts applies:

* **dense** (``num_lanes <= word_bits``): ``word_bits // num_lanes``
  whole fields share one word.  A membership probe reads one word per
  hash index; cleaning one lane across a word's worth of slots is a
  single read-modify-write — this is what makes the GBF's per-element
  cleaning cost ``O(Q/D * M/N)`` (Theorem 1.3) rather than ``O(Q*M/N)``.
* **wide** (``num_lanes > word_bits``): each field spans
  ``ceil(num_lanes / word_bits)`` words; probes cost that many reads per
  hash index, which is exactly the regime where §4 hands over to TBF.

All accesses are tallied into an
:class:`~repro.bitset.words.OperationCounter` supplied by the owner.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..errors import ConfigurationError
from . import kernels


class LanePackedBitMatrix:
    """``num_slots`` fields of ``num_lanes`` bits packed into words."""

    def __init__(
        self,
        num_slots: int,
        num_lanes: int,
        word_bits: int = 64,
        counter: OperationCounter | None = None,
    ) -> None:
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
        if num_lanes < 1:
            raise ConfigurationError(f"num_lanes must be >= 1, got {num_lanes}")
        if word_bits not in (8, 16, 32, 64):
            raise ConfigurationError(f"word_bits must be 8/16/32/64, got {word_bits}")
        self.num_slots = num_slots
        self.num_lanes = num_lanes
        self.word_bits = word_bits
        self.counter = counter if counter is not None else OperationCounter()
        self.field_mask = (1 << num_lanes) - 1

        if num_lanes <= word_bits:
            #: Whole fields per word (dense layout); 1 in the wide layout.
            self.slots_per_word = word_bits // num_lanes
            self.words_per_slot = 1
            num_words = -(-num_slots // self.slots_per_word)
        else:
            self.slots_per_word = 1
            self.words_per_slot = -(-num_lanes // word_bits)
            num_words = num_slots * self.words_per_slot
        self._words = np.zeros(num_words, dtype=np.uint64)
        # Lazily-built per-slot gather tables for the batch probe path
        # (dense multi-slot layout only): word index and bit shift of
        # every slot, so a probe is two gathers instead of a divmod.
        self._slot_word: "np.ndarray | None" = None
        self._slot_shift: "np.ndarray | None" = None

    def _probe_tables(self) -> tuple:
        if self._slot_word is None:
            slots = np.arange(self.num_slots, dtype=np.int64)
            self._slot_word = slots // self.slots_per_word
            self._slot_shift = (
                (slots % self.slots_per_word) * self.num_lanes
            ).astype(np.uint64)
        return self._slot_word, self._slot_shift

    # ------------------------------------------------------------------
    # Dense-layout helpers
    # ------------------------------------------------------------------

    def _field_position(self, slot: int) -> tuple:
        word_index, slot_in_word = divmod(slot, self.slots_per_word)
        return word_index, slot_in_word * self.num_lanes

    # ------------------------------------------------------------------
    # Probing and insertion
    # ------------------------------------------------------------------

    def probe_and(self, indices: Sequence[int]) -> List[int]:
        """AND the fields at ``indices``; returns the lane-bit survivors.

        The result is a little-endian list of words (one when
        ``num_lanes <= word_bits``): bit ``j`` set means every probed
        slot has lane ``j``'s bit set — i.e. filter ``j`` claims
        membership.  Counts one word read per index (dense) or
        ``words_per_slot`` reads per index (wide).
        """
        words = self._words
        if self.words_per_slot == 1:
            combined = self.field_mask
            if self.slots_per_word == 1:
                for index in indices:
                    combined &= int(words[index])
            else:
                lanes = self.num_lanes
                spw = self.slots_per_word
                for index in indices:
                    word_index, slot_in_word = divmod(index, spw)
                    combined &= int(words[word_index]) >> (slot_in_word * lanes)
                combined &= self.field_mask
            self.counter.word_reads += len(indices)
            return [combined]

        stride = self.words_per_slot
        mask = (1 << self.word_bits) - 1
        combined = [mask] * stride
        for index in indices:
            base = index * stride
            for offset in range(stride):
                combined[offset] &= int(words[base + offset])
        self.counter.word_reads += len(indices) * stride
        return combined

    def set_lane(self, indices: Sequence[int], lane: int) -> None:
        """Set ``lane``'s bit in every field at ``indices``.

        Counted as one write per index: the paper's flow ANDs the k
        words it already fetched and "write[s] them back", so the reads
        were already paid for by :meth:`probe_and`.
        """
        words = self._words
        if self.words_per_slot == 1:
            lanes = self.num_lanes
            spw = self.slots_per_word
            for index in indices:
                word_index, slot_in_word = divmod(index, spw)
                bit = np.uint64(1 << (slot_in_word * lanes + lane))
                words[word_index] |= bit
        else:
            stride = self.words_per_slot
            offset, bit_position = divmod(lane, self.word_bits)
            bit = np.uint64(1 << bit_position)
            for index in indices:
                words[index * stride + offset] |= bit
        self.counter.word_writes += len(indices)

    # ------------------------------------------------------------------
    # Batch probing and insertion (dense layout)
    # ------------------------------------------------------------------

    def probe_fields_batch(self, idx: "np.ndarray") -> "np.ndarray":
        """Gather the ``num_lanes``-bit field at every slot of ``idx``.

        ``idx`` is ``(n, k)``; the result is ``(n, k)`` uint64 fields.
        Counts one read per probed slot, exactly like ``n`` scalar
        :meth:`probe_and` calls.  Dense layout only — the wide layout
        keeps the scalar path (it is the regime §4 hands over to TBF).
        """
        if self.words_per_slot != 1:
            raise ConfigurationError("probe_fields_batch requires the dense layout")
        words = self._words
        self.counter.word_reads += idx.size
        if self.slots_per_word == 1:
            return words[idx] & np.uint64(self.field_mask)
        wtab, stab = self._probe_tables()
        return (words[wtab[idx]] >> stab[idx]) & np.uint64(self.field_mask)

    def or_lane_batch(self, idx: "np.ndarray", lane: int) -> None:
        """Set ``lane``'s bit at every slot of ``idx`` (any shape).

        Counts one write per slot, like scalar :meth:`set_lane` over
        each row.  Duplicate slots are exact: the single-slot layout
        ORs one constant bit (idempotent, order-free), the multi-slot
        layout partitions by in-word offset so each scatter's bit is
        constant (:func:`repro.core.kernels.or_lane_slots`).
        """
        if self.words_per_slot != 1:
            raise ConfigurationError("or_lane_batch requires the dense layout")
        words = self._words
        if self.slots_per_word == 1:
            kernels.or_constant_bit(words, idx, np.uint64(1 << lane))
        else:
            slot_word, slot_shift = self._probe_tables()
            kernels.or_lane_slots(
                words, idx, self.slots_per_word, self.num_lanes, lane,
                slot_word, slot_shift,
            )
        self.counter.word_writes += idx.size

    # ------------------------------------------------------------------
    # Lane cleaning
    # ------------------------------------------------------------------

    def clear_lane_range(self, lane: int, start_slot: int, num_cleared: int) -> None:
        """Zero ``lane``'s bit in slots [start_slot, start_slot + num_cleared).

        In the dense layout a single read-modify-write clears the lane
        across every field sharing the word — the "bunch" access §3.1
        promises.  Words whose lane bits are already zero cost only the
        read.
        """
        if num_cleared <= 0:
            return
        stop_slot = min(start_slot + num_cleared, self.num_slots)
        if start_slot >= stop_slot:
            return
        words = self._words
        if self.words_per_slot == 1:
            reads, writes = kernels.clear_lane_span(
                words, lane, start_slot, stop_slot, self.slots_per_word,
                self.num_lanes,
            )
        else:
            stride = self.words_per_slot
            offset, bit_position = divmod(lane, self.word_bits)
            keep = np.uint64(~np.uint64(1 << bit_position))
            reads = 0
            writes = 0
            for slot in range(start_slot, stop_slot):
                index = slot * stride + offset
                word = words[index]
                reads += 1
                if word & ~keep:
                    words[index] = word & keep
                    writes += 1
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    def clear_lane_segments(
        self, lane: int, start_slot: int, per_element: int, num_elements: int
    ) -> None:
        """Replay ``num_elements`` consecutive :meth:`clear_lane_range` calls.

        Call ``i`` covers ``[start_slot + i * per_element,
        start_slot + (i + 1) * per_element)`` clamped to the slot count —
        the cursor-advancing sweep the GBF runs once per arrival.  Bit
        mutations *and* read/write tallies are identical to the scalar
        calls: each (call, word) intersection is one read, and a write
        whenever the lane has a set bit among the intersection's slots.
        Intersections are disjoint in (slot, lane) space, so pre-sweep
        bit values decide every write even though earlier calls may
        touch the same word.
        """
        if num_elements <= 0 or per_element <= 0:
            return
        stop_slot = min(start_slot + per_element * num_elements, self.num_slots)
        if start_slot >= stop_slot:
            return
        words = self._words
        if self.words_per_slot == 1:
            boundaries = np.arange(
                start_slot, stop_slot, per_element, dtype=np.int64
            )
            boundaries = np.append(boundaries, stop_slot)
            reads, writes = kernels.clear_lane_runs(
                words, lane, boundaries, self.slots_per_word, self.num_lanes
            )
        else:
            stride = self.words_per_slot
            offset, bit_position = divmod(lane, self.word_bits)
            indices = np.arange(start_slot, stop_slot, dtype=np.int64) * stride + offset
            values = words[indices]
            bit = np.uint64(1 << bit_position)
            reads = int(indices.size)
            writes = int(np.count_nonzero(values & bit))
            words[indices] = values & ~bit
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    def clear_lane_run_lengths(
        self, lane: int, start_slot: int, lengths: "np.ndarray"
    ) -> None:
        """Replay consecutive :meth:`clear_lane_range` calls of *variable* size.

        Call ``i`` starts where call ``i - 1``'s clamped cursor stopped
        and covers ``lengths[i]`` slots (clamped to the slot count);
        zero-length entries are skipped, exactly like a caller that
        guards each scalar call.  This is the time-based GBF's cleaning
        pattern — one call per elapsed time unit with the unit's quota —
        fused into a single kernel sweep with scalar-identical bit
        mutations and read/write tallies.  Dense layout only.
        """
        if self.words_per_slot != 1:
            raise ConfigurationError(
                "clear_lane_run_lengths requires the dense layout"
            )
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0 or start_slot >= self.num_slots:
            return
        bounds = np.empty(lengths.size + 1, dtype=np.int64)
        bounds[0] = start_slot
        np.cumsum(lengths, out=bounds[1:])
        bounds[1:] += start_slot
        np.minimum(bounds, self.num_slots, out=bounds)
        # Strictly increasing boundaries = non-empty calls only.
        keep = np.empty(bounds.size, dtype=bool)
        keep[0] = True
        np.greater(bounds[1:], bounds[:-1], out=keep[1:])
        bounds = bounds[keep]
        reads, writes = kernels.clear_lane_runs(
            self._words, lane, bounds, self.slots_per_word, self.num_lanes
        )
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    def words_for_slot_range(self, num_slots: int) -> int:
        """How many word RMWs cleaning ``num_slots`` consecutive slots takes."""
        return -(-num_slots // self.slots_per_word)

    def clear_all(self) -> None:
        """Bulk zero (used by idle-gap fast-forward); counts a full sweep."""
        nonzero = int((self._words != 0).sum())
        self.counter.word_reads += len(self._words)
        self.counter.word_writes += nonzero
        self._words.fill(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_words(self) -> int:
        return len(self._words)

    @property
    def memory_bits(self) -> int:
        return len(self._words) * self.word_bits

    def lane_population(self, lane: int) -> int:
        """Set-bit count of one lane (diagnostics and tests)."""
        words = self._words
        if self.words_per_slot == 1:
            # Lane-packed layout: the lane's bit recurs every num_lanes
            # bits within each word.  One vectorized mask-and-sum per
            # slot position beats a per-slot Python loop by orders of
            # magnitude; padding bits past num_slots are never set, so
            # counting whole words is exact.
            lanes = self.num_lanes
            one = np.uint64(1)
            count = 0
            for slot_in_word in range(self.slots_per_word):
                shift = np.uint64(slot_in_word * lanes + lane)
                count += int(((words >> shift) & one).sum())
            return count
        stride = self.words_per_slot
        offset, bit_position = divmod(lane, self.word_bits)
        lane_words = words[offset::stride]
        return int(((lane_words >> np.uint64(bit_position)) & np.uint64(1)).sum())

    def get_bit(self, slot: int, lane: int) -> bool:
        """Uncounted single-bit read (tests only)."""
        if self.words_per_slot == 1:
            word_index, base = self._field_position(slot)
            return bool(int(self._words[word_index]) >> (base + lane) & 1)
        offset, bit_position = divmod(lane, self.word_bits)
        return bool(
            int(self._words[slot * self.words_per_slot + offset]) >> bit_position & 1
        )
